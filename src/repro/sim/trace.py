"""Structured event tracing.

A :class:`Tracer` collects ``(time, category, name, payload)`` records.
Subsystems emit into it when attached (it is optional everywhere), and
tests/benchmarks query it to assert on *behaviour* — e.g. "the runtime
opened at most MAX_ACTIVE_STREAMS streams" or "the second asymmetric
get performed one network operation, not two (pointer cache hit)".
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace event on the virtual timeline."""

    time: float
    category: str
    name: str
    payload: Dict[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[{self.time:.9f}] {self.category}.{self.name} {fields}"


class Tracer:
    """Append-only trace with simple query helpers."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.records: List[TraceRecord] = []
        #: categories to record; None means record everything
        self.enabled_categories: Optional[set] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done by the runtime at init)."""
        self._clock = clock

    def emit(self, category: str, name: str, **payload: Any) -> None:
        """Record one event at the current virtual time."""
        if (
            self.enabled_categories is not None
            and category not in self.enabled_categories
        ):
            return
        self.records.append(TraceRecord(self._clock(), category, name, payload))

    # -- queries -------------------------------------------------------------

    def select(self, category: Optional[str] = None, name: Optional[str] = None) -> List[TraceRecord]:
        """All records matching the given category/name filters."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (name is None or r.name == name)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(category, name))

    def last(self, category: str, name: Optional[str] = None) -> TraceRecord:
        matches = self.select(category, name)
        if not matches:
            raise LookupError(f"no trace records for {category}/{name}")
        return matches[-1]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
