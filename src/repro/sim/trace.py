"""Structured event tracing.

A :class:`Tracer` collects ``(time, category, name, payload)`` records.
Subsystems emit into it when attached (it is optional everywhere), and
tests/benchmarks query it to assert on *behaviour* — e.g. "the runtime
opened at most MAX_ACTIVE_STREAMS streams" or "the second asymmetric
get performed one network operation, not two (pointer cache hit)".
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, Iterator, List, Optional, Set


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace event on the virtual timeline."""

    time: float
    category: str
    name: str
    payload: Dict[str, Any]

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.payload.items())
        return f"[{self.time:.9f}] {self.category}.{self.name} {fields}"


class Tracer:
    """Append-only trace with simple query helpers."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self.records: List[TraceRecord] = []
        #: categories to record; None means record everything
        self.enabled_categories: Optional[Set[str]] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done by the runtime at init)."""
        self._clock = clock

    def enable(self, *categories: str) -> "Tracer":
        """Restrict recording to the given categories (additive across
        calls); returns ``self`` for chaining."""
        if self.enabled_categories is None:
            self.enabled_categories = set()
        self.enabled_categories.update(categories)
        return self

    def enable_all(self) -> "Tracer":
        """Record every category again (the default)."""
        self.enabled_categories = None
        return self

    def emit(self, category: str, name: str, **payload: Any) -> None:
        """Record one event at the current virtual time."""
        if (
            self.enabled_categories is not None
            and category not in self.enabled_categories
        ):
            return
        self.records.append(TraceRecord(self._clock(), category, name, payload))

    # -- queries -------------------------------------------------------------

    def select(self, category: Optional[str] = None, name: Optional[str] = None) -> List[TraceRecord]:
        """All records matching the given category/name filters."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (name is None or r.name == name)
        ]

    def count(self, category: Optional[str] = None, name: Optional[str] = None) -> int:
        return len(self.select(category, name))

    def last(self, category: str, name: Optional[str] = None) -> TraceRecord:
        matches = self.select(category, name)
        if not matches:
            raise LookupError(f"no trace records for {category}/{name}")
        return matches[-1]

    def to_jsonl(self) -> str:
        """Every record as one JSON object per line (payload values are
        stringified; they may hold arbitrary objects)."""
        return "\n".join(
            json.dumps(
                {
                    "time": r.time,
                    "category": r.category,
                    "name": r.name,
                    "payload": {k: str(v) for k, v in r.payload.items()},
                }
            )
            for r in self.records
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
