"""Deterministic discrete-event simulation kernel.

This package is the execution substrate for the whole reproduction.  A
:class:`~repro.sim.core.Simulator` owns a virtual clock and an event
queue; *tasks* (one per simulated MPI rank, plus any number of helper
daemons) run as real threads under a cooperative scheduler that lets
exactly one thread execute at a time.  Wake-ups are ordered by
``(time, sequence)`` so runs are fully deterministic.

Data movement in the simulated cluster is *real* — numpy copies are
performed at the simulated completion time — so correctness tests can
assert on bytes while benchmarks read the virtual clock.

Public surface:

* :class:`Simulator`, :class:`Task` — kernel and task handles
* :class:`Future` — one-shot completion signal (the building block for
  network events, device events and stream completions)
* :class:`Channel`, :class:`Semaphore`, :class:`Lock`,
  :class:`Barrier` — blocking coordination primitives in virtual time
* :class:`Tracer` — structured event trace used by tests and the bench
  harness
"""

from repro.sim.core import Simulator, Task, TaskState
from repro.sim.sync import Future, Channel, Semaphore, Lock, Barrier
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "Simulator",
    "Task",
    "TaskState",
    "Future",
    "Channel",
    "Semaphore",
    "Lock",
    "Barrier",
    "Tracer",
    "TraceRecord",
]
