"""The discrete-event simulator core.

Design
------
The simulator is a classic event-queue kernel with one twist: simulated
*tasks* are real Python threads.  This lets user programs (MPI ranks,
DiOMP ranks, runtime daemons) be written as ordinary blocking Python
functions — nested calls, loops, exceptions — without generator/yield
plumbing.  Determinism is preserved because the scheduler hands control
to exactly one thread at a time and wake order is the strict total
order ``(time, sequence_number)``.

Control handoff protocol::

    scheduler                         task thread
    ---------                         -----------
    pop event (t, seq, resume T)
    now = t
    T._resume_evt.set()  ──────────►  returns from _block()/starts fn
    wait _sched_evt                   ... runs simulated code ...
                                      blocks: state=BLOCKED
    ◄──────────  _sched_evt.set()     waits on _resume_evt
    continue loop

Only the scheduler **or** the single running task ever touches
simulator state, so no further locking is needed.

Error handling: an exception escaping a task aborts the simulation —
:meth:`Simulator.run` re-raises it after killing the remaining tasks so
no threads leak (important when pytest runs thousands of simulations).
"""

from __future__ import annotations

import enum
import heapq
import itertools
import threading
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.util.errors import DeadlockError, SimulationError


class _Kill(BaseException):
    """Injected into blocked task threads during teardown.

    Derives from ``BaseException`` so user ``except Exception`` blocks
    cannot swallow it.
    """


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    NEW = "new"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


class Task:
    """A simulated thread of control.

    Created via :meth:`Simulator.spawn`.  The wrapped function runs on a
    daemon thread; its return value is available as :attr:`result` once
    :attr:`state` is :attr:`TaskState.DONE`, and other tasks can block
    on completion with :meth:`join`.
    """

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ) -> None:
        self.sim = sim
        self.name = name
        self.state = TaskState.NEW
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: human-readable description of what the task is blocked on
        self.wait_reason: str = ""
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._wake_value: Any = None
        self._kill = False
        self._resume_evt = threading.Event()
        self._join_waiters: List[Any] = []  # Futures fired on completion
        self._thread = threading.Thread(
            target=self._thread_body, name=f"sim:{name}", daemon=True
        )
        self._thread.start()

    # -- scheduler side ----------------------------------------------------

    def _thread_body(self) -> None:
        # Park until the scheduler gives us control for the first time.
        self._resume_evt.wait()
        self._resume_evt.clear()
        sim = self.sim
        try:
            if self._kill:
                raise _Kill()
            self.state = TaskState.RUNNING
            self.result = self._fn(*self._args, **self._kwargs)
            self.state = TaskState.DONE
        except _Kill:
            self.state = TaskState.KILLED
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised by run()
            self.error = exc
            self.state = TaskState.FAILED
        finally:
            if self.state in (TaskState.DONE, TaskState.FAILED):
                for fut in self._join_waiters:
                    fut.fire(self.result)
                self._join_waiters.clear()
            sim._current = None
            sim._sched_evt.set()

    # -- task side -----------------------------------------------------------

    def join(self) -> Any:
        """Block the *calling* task until this task completes.

        Returns the task's result.  May only be called from inside a
        simulated task.
        """
        from repro.sim.sync import Future

        if self.state is TaskState.DONE:
            return self.result
        if self.state in (TaskState.FAILED, TaskState.KILLED):
            raise SimulationError(f"cannot join {self.name}: task {self.state.value}")
        fut = Future(self.sim, description=f"join({self.name})")
        self._join_waiters.append(fut)
        return fut.wait()

    @property
    def finished(self) -> bool:
        """True once the task can never run again."""
        return self.state in (TaskState.DONE, TaskState.FAILED, TaskState.KILLED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.state.value}>"


class Simulator:
    """Event-queue kernel with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.spawn(rank_program, ctx0, name="rank0")
        sim.spawn(rank_program, ctx1, name="rank1")
        sim.run()
        print(sim.now)   # virtual seconds elapsed

    The simulator is single-use: after :meth:`run` returns (or raises)
    it is closed and cannot be restarted, except when ``until=`` was
    given, in which case :meth:`run` may be called again to continue.
    """

    def __init__(self, profiler: Optional[Any] = None) -> None:
        #: current virtual time in seconds
        self.now: float = 0.0
        #: optional engine self-profiler (duck-typed:
        #: :class:`repro.obs.selfprof.EngineProfiler`); accounts host
        #: wall-clock per scheduler event when enabled
        self.profiler = profiler if profiler is not None and getattr(
            profiler, "enabled", True
        ) else None
        self._seq = itertools.count()
        self._queue: list = []  # heap of (time, seq, kind, payload)
        self._tasks: List[Task] = []
        self._current: Optional[Task] = None
        self._sched_evt = threading.Event()
        self._in_run = False
        self._closed = False

    # -- event queue ---------------------------------------------------------

    def _push(self, when: float, kind: str, payload: Any) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        heapq.heappush(self._queue, (when, next(self._seq), kind, payload))

    def call_later(self, delay: float, fn: Callable[[], Any]) -> None:
        """Run ``fn()`` on the scheduler at ``now + delay``.

        The callback runs in scheduler context and must not block; use it
        to fire :class:`~repro.sim.sync.Future` objects or schedule more
        work.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._push(self.now + delay, "call", fn)

    # -- task management -------------------------------------------------------

    def spawn(self, fn: Callable[..., Any], *args: Any, name: str = "", **kwargs: Any) -> Task:
        """Create a task that starts at the current virtual time."""
        if self._closed:
            raise SimulationError("simulator is closed")
        task = Task(self, fn, args, kwargs, name or f"task{len(self._tasks)}")
        self._tasks.append(task)
        self._push(self.now, "resume", task)
        return task

    @property
    def current_task(self) -> Task:
        """The task currently executing (raises outside task context)."""
        if self._current is None:
            raise SimulationError("no task is currently running")
        return self._current

    # -- blocking primitives (called from task threads) -----------------------

    def _block(self, reason: str) -> Any:
        """Suspend the calling task until something wakes it.

        Returns the value passed to :meth:`_wake`.  This is the single
        point through which every blocking primitive is built.
        """
        task = self._current
        if task is None or threading.current_thread() is not task._thread:
            raise SimulationError(
                "blocking simulation primitive called outside a simulated task"
            )
        task.state = TaskState.BLOCKED
        task.wait_reason = reason
        self._current = None
        self._sched_evt.set()
        task._resume_evt.wait()
        task._resume_evt.clear()
        if task._kill:
            raise _Kill()
        task.state = TaskState.RUNNING
        task.wait_reason = ""
        return task._wake_value

    def _wake(self, task: Task, value: Any = None, delay: float = 0.0) -> None:
        """Schedule ``task`` to resume with ``value`` after ``delay``."""
        if task.finished:
            raise SimulationError(f"cannot wake finished task {task.name}")
        task._wake_value = value
        self._push(self.now + delay, "resume", task)

    def sleep(self, duration: float) -> None:
        """Advance the calling task's local time by ``duration``."""
        if duration < 0:
            raise SimulationError(f"negative sleep duration: {duration}")
        task = self.current_task
        task._wake_value = None
        self._push(self.now + duration, "resume", task)
        self._block(f"sleep({duration:g})")

    # -- scheduler loop -----------------------------------------------------

    def _give_control(self, task: Task) -> None:
        self._current = task
        self._sched_evt.clear()
        task._resume_evt.set()
        self._sched_evt.wait()
        if task.state is TaskState.FAILED:
            err = task.error
            self.close()
            raise err

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation.

        With ``until=None`` runs until the event queue drains, then
        verifies no task is still blocked (raising
        :class:`~repro.util.errors.DeadlockError` if any is) and closes
        the simulator.  With a deadline, stops once the next event lies
        beyond it (tasks stay suspended; call :meth:`run` again or
        :meth:`close`).

        Returns the virtual time at exit.
        """
        if self._closed:
            raise SimulationError("simulator is closed")
        if self._in_run:
            raise SimulationError("run() is not reentrant")
        self._in_run = True
        prof = self.profiler
        run_t0 = perf_counter() if prof is not None else 0.0
        try:
            while self._queue:
                when, _seq, kind, payload = self._queue[0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                heapq.heappop(self._queue)
                self.now = when
                if kind == "resume":
                    if payload.finished:
                        continue  # task was killed/finished after scheduling
                    if prof is None:
                        self._give_control(payload)
                    else:
                        t0 = perf_counter()
                        self._give_control(payload)
                        prof.account_task(perf_counter() - t0)
                elif kind == "call":
                    if prof is None:
                        payload()
                    else:
                        t0 = perf_counter()
                        payload()
                        prof.account_callback(perf_counter() - t0)
                else:  # pragma: no cover - internal invariant
                    raise SimulationError(f"unknown event kind {kind!r}")
            blocked = [t for t in self._tasks if t.state is TaskState.BLOCKED]
            if blocked:
                detail = "; ".join(f"{t.name}: {t.wait_reason}" for t in blocked)
                self.close()
                raise DeadlockError(
                    f"event queue drained with {len(blocked)} blocked task(s): {detail}"
                )
            if until is None:
                self.close()
            return self.now
        finally:
            self._in_run = False
            if prof is not None:
                prof.finish_run(perf_counter() - run_t0, self.now)

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Kill every unfinished task and release their threads.

        Idempotent.  Called automatically when :meth:`run` completes or
        a task fails; call it manually after a bounded ``run(until=...)``.
        """
        if self._closed:
            return
        self._closed = True
        for task in self._tasks:
            if task.finished:
                continue
            task._kill = True
            task._resume_evt.set()
        for task in self._tasks:
            task._thread.join(timeout=5.0)

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
