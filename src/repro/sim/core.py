"""The discrete-event simulator core.

Design
------
The simulator is a classic event-queue kernel with one twist: simulated
*tasks* are real Python threads.  This lets user programs (MPI ranks,
DiOMP ranks, runtime daemons) be written as ordinary blocking Python
functions — nested calls, loops, exceptions — without generator/yield
plumbing.  Determinism is preserved because the scheduler hands control
to exactly one thread at a time and wake order is the strict total
order ``(time, sequence_number)``.

Control handoff protocol::

    scheduler                         task thread
    ---------                         -----------
    pop event (t, seq, resume T)
    now = t
    T._resume_evt.set()  ──────────►  returns from _block()/starts fn
    wait _sched_evt                   ... runs simulated code ...
                                      blocks: state=BLOCKED
    ◄──────────  _sched_evt.set()     waits on _resume_evt
    continue loop

Only the scheduler **or** the single running task ever touches
simulator state, so no further locking is needed.

Scalability (1024+ ranks): SPMD programs generate large bursts of
events at identical timestamps — every barrier release, collective
completion, and launch wave resumes the whole world at one instant.
The event queue is therefore a *calendar* of per-timestamp FIFO
buckets ordered by a heap of distinct times: a same-time burst costs
one heap operation total instead of one ``heappush``/``heappop`` pair
per member, and the scheduler drains a whole bucket back-to-back
without re-consulting the heap.  Task threads start lazily on first
resume, so building a world never pays OS-thread cost for ranks that
a bounded run or an early abort never reaches.

Error handling: an exception escaping a task is delivered to the
tasks joining it at that moment (their ``join()`` raises it); if no
live task is joining, it aborts the simulation — :meth:`Simulator.run`
re-raises it after killing the remaining tasks so no threads leak
(important when pytest runs thousands of simulations).
"""

from __future__ import annotations

import collections
import enum
import heapq
import itertools
import threading
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.util.errors import DeadlockError, SimulationError


class _Kill(BaseException):
    """Injected into blocked task threads during teardown.

    Derives from ``BaseException`` so user ``except Exception`` blocks
    cannot swallow it.
    """


class TaskState(enum.Enum):
    """Lifecycle of a simulated task."""

    NEW = "new"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


class Task:
    """A simulated thread of control.

    Created via :meth:`Simulator.spawn`.  The wrapped function runs on a
    daemon thread; its return value is available as :attr:`result` once
    :attr:`state` is :attr:`TaskState.DONE`, and other tasks can block
    on completion with :meth:`join`.
    """

    def __init__(
        self,
        sim: "Simulator",
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        name: str,
    ) -> None:
        self.sim = sim
        self.name = name
        self.state = TaskState.NEW
        self.result: Any = None
        self.error: Optional[BaseException] = None
        #: human-readable description of what the task is blocked on
        self.wait_reason: str = ""
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._wake_value: Any = None
        self._kill = False
        self._resume_evt = threading.Event()
        self._join_waiters: List[Any] = []  # Futures fired on completion
        #: True once the task's error was raised in at least one live
        #: joiner — a delivered error is handled there, not by run()
        self._error_delivered = False
        #: created lazily on first resume (see Simulator._give_control)
        self._thread: Optional[threading.Thread] = None

    # -- scheduler side ----------------------------------------------------

    def _start_thread(self) -> None:
        self._thread = threading.Thread(
            target=self._thread_body, name=f"sim:{self.name}", daemon=True
        )
        self._thread.start()

    def _thread_body(self) -> None:
        # Park until the scheduler gives us control for the first time.
        self._resume_evt.wait()
        self._resume_evt.clear()
        sim = self.sim
        try:
            if self._kill:
                raise _Kill()
            self.state = TaskState.RUNNING
            self.result = self._fn(*self._args, **self._kwargs)
            self.state = TaskState.DONE
        except _Kill:
            self.state = TaskState.KILLED
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised by run()
            self.error = exc
            self.state = TaskState.FAILED
        finally:
            self._finish_waiters()
            sim._current = None
            sim._sched_evt.set()

    def _finish_waiters(self) -> None:
        """Complete the join futures according to the final state."""
        waiters, self._join_waiters = self._join_waiters, []
        if self.state is TaskState.DONE:
            for fut in waiters:
                fut.fire(self.result)
        elif self.state is TaskState.FAILED:
            for fut in waiters:
                if any(not t.finished for t in fut._waiters):
                    self._error_delivered = True
                fut.fail(self.error)
        elif self.state is TaskState.KILLED and not self.sim._closed:
            # A killed task can never produce a result; joiners in a
            # bounded run(until=...) session would otherwise hang
            # forever.  (During close() every task dies anyway, so no
            # wake-up is needed — or safe — there.)
            err = SimulationError(f"cannot join {self.name}: task killed")
            for fut in waiters:
                if not fut.fired:
                    fut.fail(err)

    # -- task side -----------------------------------------------------------

    def join(self) -> Any:
        """Block the *calling* task until this task completes.

        Returns the task's result.  If the task failed, its error is
        raised in the joining task; if it was killed, a
        :class:`SimulationError` is raised.  May only be called from
        inside a simulated task.
        """
        from repro.sim.sync import Future

        if self.state is TaskState.DONE:
            return self.result
        if self.state is TaskState.FAILED:
            self._error_delivered = True
            raise self.error
        if self.state is TaskState.KILLED:
            raise SimulationError(f"cannot join {self.name}: task {self.state.value}")
        fut = Future(self.sim, description=f"join({self.name})")
        self._join_waiters.append(fut)
        return fut.wait()

    def kill(self) -> None:
        """Terminate this task at the current virtual time.

        A running or blocked task is torn down at its next scheduling
        point (deterministically ordered like any other resume); a task
        that never started is finalized immediately.  Joiners see a
        :class:`SimulationError`.  A task may not kill itself — raise
        instead.
        """
        if self.finished:
            return
        if self is self.sim._current:
            raise SimulationError(f"task {self.name} cannot kill itself")
        self._kill = True
        if self._thread is None:
            # Never ran: no thread to unwind, finalize in place.
            self.state = TaskState.KILLED
            self._finish_waiters()
            return
        self.sim._push(self.sim.now, "resume", self)

    @property
    def finished(self) -> bool:
        """True once the task can never run again."""
        return self.state in (TaskState.DONE, TaskState.FAILED, TaskState.KILLED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Task {self.name} {self.state.value}>"


class Simulator:
    """Event-queue kernel with a virtual clock.

    Typical use::

        sim = Simulator()
        sim.spawn(rank_program, ctx0, name="rank0")
        sim.spawn(rank_program, ctx1, name="rank1")
        sim.run()
        print(sim.now)   # virtual seconds elapsed

    The simulator is single-use: after :meth:`run` returns (or raises)
    it is closed and cannot be restarted, except when ``until=`` was
    given, in which case :meth:`run` may be called again to continue.
    """

    def __init__(self, profiler: Optional[Any] = None) -> None:
        #: current virtual time in seconds
        self.now: float = 0.0
        #: optional engine self-profiler (duck-typed:
        #: :class:`repro.obs.selfprof.EngineProfiler`); accounts host
        #: wall-clock per scheduler event when enabled
        self.profiler = profiler if profiler is not None and getattr(
            profiler, "enabled", True
        ) else None
        self._seq = itertools.count()
        #: calendar queue: a heap of distinct timestamps plus one FIFO
        #: bucket per timestamp.  Events within a bucket are already in
        #: (time, seq) total order because sequence numbers increase
        #: monotonically, so a same-time burst costs one heap operation
        #: instead of one per event.
        self._times: list = []  # heap of distinct pending timestamps
        self._buckets: dict = {}  # time -> deque of (seq, kind, payload)
        self._tasks: List[Task] = []
        self._current: Optional[Task] = None
        self._sched_evt = threading.Event()
        self._in_run = False
        self._closed = False
        #: double-completions suppressed by deferred Future fire/fail
        #: (see :meth:`repro.sim.sync.Future.fire`)
        self.suppressed_completions = 0

    # -- event queue ---------------------------------------------------------

    def _push(self, when: float, kind: str, payload: Any) -> None:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < now={self.now}"
            )
        bucket = self._buckets.get(when)
        if bucket is None:
            bucket = self._buckets[when] = collections.deque()
            heapq.heappush(self._times, when)
        bucket.append((next(self._seq), kind, payload))

    def call_later(self, delay: float, fn: Callable[[], Any]) -> None:
        """Run ``fn()`` on the scheduler at ``now + delay``.

        The callback runs in scheduler context and must not block; use it
        to fire :class:`~repro.sim.sync.Future` objects or schedule more
        work.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._push(self.now + delay, "call", fn)

    # -- task management -------------------------------------------------------

    def spawn(self, fn: Callable[..., Any], *args: Any, name: str = "", **kwargs: Any) -> Task:
        """Create a task that starts at the current virtual time."""
        if self._closed:
            raise SimulationError("simulator is closed")
        task = Task(self, fn, args, kwargs, name or f"task{len(self._tasks)}")
        self._tasks.append(task)
        self._push(self.now, "resume", task)
        return task

    @property
    def closed(self) -> bool:
        """True once the simulator can never run again (see :meth:`close`)."""
        return self._closed

    @property
    def current_task(self) -> Task:
        """The task currently executing (raises outside task context)."""
        if self._current is None:
            raise SimulationError("no task is currently running")
        return self._current

    # -- blocking primitives (called from task threads) -----------------------

    def _block(self, reason: str) -> Any:
        """Suspend the calling task until something wakes it.

        Returns the value passed to :meth:`_wake`.  This is the single
        point through which every blocking primitive is built.
        """
        task = self._current
        if task is None or threading.current_thread() is not task._thread:
            raise SimulationError(
                "blocking simulation primitive called outside a simulated task"
            )
        task.state = TaskState.BLOCKED
        task.wait_reason = reason
        self._current = None
        self._sched_evt.set()
        task._resume_evt.wait()
        task._resume_evt.clear()
        if task._kill:
            raise _Kill()
        task.state = TaskState.RUNNING
        task.wait_reason = ""
        return task._wake_value

    def _wake(self, task: Task, value: Any = None, delay: float = 0.0) -> None:
        """Schedule ``task`` to resume with ``value`` after ``delay``."""
        if task.finished:
            raise SimulationError(f"cannot wake finished task {task.name}")
        task._wake_value = value
        self._push(self.now + delay, "resume", task)

    def sleep(self, duration: float) -> None:
        """Advance the calling task's local time by ``duration``."""
        if duration < 0:
            raise SimulationError(f"negative sleep duration: {duration}")
        task = self.current_task
        task._wake_value = None
        self._push(self.now + duration, "resume", task)
        self._block(f"sleep({duration:g})")

    # -- scheduler loop -----------------------------------------------------

    def _give_control(self, task: Task) -> None:
        self._current = task
        self._sched_evt.clear()
        if task._thread is None:
            task._start_thread()
        task._resume_evt.set()
        self._sched_evt.wait()
        if task.state is TaskState.FAILED and not task._error_delivered:
            err = task.error
            self.close()
            raise err

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation.

        With ``until=None`` runs until the event queue drains, then
        verifies no task is still blocked (raising
        :class:`~repro.util.errors.DeadlockError` if any is) and closes
        the simulator.  With a deadline, stops once the next event lies
        beyond it (tasks stay suspended; call :meth:`run` again or
        :meth:`close`).

        Returns the virtual time at exit.
        """
        if self._closed:
            raise SimulationError("simulator is closed")
        if self._in_run:
            raise SimulationError("run() is not reentrant")
        self._in_run = True
        prof = self.profiler
        run_t0 = perf_counter() if prof is not None else 0.0
        try:
            while self._times:
                when = self._times[0]
                if until is not None and when > until:
                    self.now = until
                    return self.now
                self.now = when
                # Drain the whole same-time bucket back-to-back: one
                # heap consultation per distinct timestamp, not per
                # event.  Same-time events pushed during the drain
                # append to this bucket and run in this pass (matching
                # the old (time, seq) heap order exactly).
                bucket = self._buckets[when]
                while bucket:
                    _seq, kind, payload = bucket.popleft()
                    if kind == "resume":
                        if payload.finished:
                            continue  # task was killed/finished after scheduling
                        if prof is None:
                            self._give_control(payload)
                        else:
                            t0 = perf_counter()
                            self._give_control(payload)
                            prof.account_task(perf_counter() - t0)
                    elif kind == "call":
                        if prof is None:
                            payload()
                        else:
                            t0 = perf_counter()
                            payload()
                            prof.account_callback(perf_counter() - t0)
                    else:  # pragma: no cover - internal invariant
                        raise SimulationError(f"unknown event kind {kind!r}")
                heapq.heappop(self._times)
                del self._buckets[when]
            blocked = [t for t in self._tasks if t.state is TaskState.BLOCKED]
            if blocked:
                detail = "; ".join(f"{t.name}: {t.wait_reason}" for t in blocked)
                self.close()
                raise DeadlockError(
                    f"event queue drained with {len(blocked)} blocked task(s): {detail}"
                )
            if until is None:
                self.close()
            return self.now
        finally:
            self._in_run = False
            if prof is not None:
                prof.finish_run(perf_counter() - run_t0, self.now)

    # -- teardown ---------------------------------------------------------

    def close(self) -> None:
        """Kill every unfinished task and release their threads.

        Idempotent.  Called automatically when :meth:`run` completes or
        a task fails; call it manually after a bounded ``run(until=...)``.
        """
        if self._closed:
            return
        self._closed = True
        for task in self._tasks:
            if task.finished:
                continue
            task._kill = True
            if task._thread is None:
                # Lazily-started task that never got its first resume:
                # there is no thread to unwind.
                task.state = TaskState.KILLED
                continue
            task._resume_evt.set()
        for task in self._tasks:
            if task._thread is not None:
                task._thread.join(timeout=5.0)

    def __enter__(self) -> "Simulator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
