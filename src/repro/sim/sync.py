"""Coordination primitives in virtual time.

Everything here is built on :meth:`Simulator._block` / ``_wake`` and is
therefore safe under the one-runnable-task discipline: no real locking
is needed, only bookkeeping lists.

:class:`Future` is the workhorse — network completions, device events,
stream completions and ``join()`` are all Futures underneath.  The
remaining classes mirror the usual concurrency toolbox but advance the
*virtual* clock instead of wall time.
"""

from __future__ import annotations

import collections
from typing import Any, Deque, List, Optional

from repro.sim.core import Simulator, Task
from repro.util.errors import SimulationError


class Future:
    """One-shot completion signal carrying an optional value.

    ``fire()`` may be called from a task or from a scheduler callback;
    ``wait()`` may only be called from a task.  Multiple tasks may wait
    on the same future (all are woken); waiting on an already-fired
    future returns immediately.  Firing twice is an error — completions
    in this library are unique events.

    A future may instead complete *exceptionally* via :meth:`fail`:
    every ``wait()`` then raises the supplied error in the waiting
    task's context (the mechanism by which injected transfer failures
    reach the conduit retry layer and, ultimately, ``ompx_fence``).
    """

    def __init__(self, sim: Simulator, description: str = "future") -> None:
        self.sim = sim
        self.description = description
        self.fired = False
        self.value: Any = None
        #: the error this future completed with (None on success)
        self.error: Optional[BaseException] = None
        self._waiters: List[Task] = []
        self._callbacks: List[Any] = []

    def fire(self, value: Any = None, delay: float = 0.0) -> None:
        """Complete the future, waking all waiters after ``delay``.

        A *delayed* completion that loses the race to another path
        (e.g. a retry-timeout ``fail`` landing before a delayed success
        ``fire``) is silently dropped and counted in
        ``sim.suppressed_completions`` — only the first completion
        wins.  An *immediate* double completion is still an error.
        """
        if self.fired:
            raise SimulationError(f"{self.description}: fired twice")
        if delay > 0.0:
            self.sim.call_later(delay, lambda: self._deferred(self.fire, value))
            return
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            if not task.finished:
                self.sim._wake(task, value)
        self._run_callbacks()

    def fail(self, error: BaseException, delay: float = 0.0) -> None:
        """Complete the future exceptionally after ``delay``.

        Waiters (current and future) raise ``error`` from ``wait()``;
        ``poll()`` reports completion so hybrid polling loops still
        converge — callers distinguish the outcome via :attr:`error`.
        Delayed completions follow the same first-one-wins rule as
        :meth:`fire`.
        """
        if self.fired:
            raise SimulationError(f"{self.description}: fired twice")
        if delay > 0.0:
            self.sim.call_later(delay, lambda: self._deferred(self.fail, error))
            return
        self.fired = True
        self.error = error
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            if not task.finished:
                self.sim._wake(task, None)
        self._run_callbacks()

    def _deferred(self, complete, payload) -> None:
        """Scheduler callback for a delayed completion: re-check the
        race before committing — the future may have completed through
        another path while the delay elapsed."""
        if self.fired:
            self.sim.suppressed_completions += 1
            return
        complete(payload)

    def add_done_callback(self, fn) -> None:
        """Run ``fn(self)`` once the future completes (success or
        failure); immediately if it already has.  Callbacks run in
        whatever context completes the future and must not block."""
        if self.fired:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def wait(self) -> Any:
        """Block the calling task until fired; returns the fired value.

        Raises the failure error if the future completed via
        :meth:`fail`.
        """
        if not self.fired:
            self._waiters.append(self.sim.current_task)
            self.sim._block(f"wait({self.description})")
        if self.error is not None:
            raise self.error
        return self.value

    def poll(self) -> bool:
        """Non-blocking completion test (the building block for hybrid
        event polling in the DiOMP fence)."""
        return self.fired

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else "pending"
        return f"<Future {self.description} {state}>"


class Channel:
    """FIFO message channel with optional capacity.

    ``put`` blocks when the channel is full (bounded channels model
    back-pressure, e.g. NIC injection queues); ``get`` blocks when it is
    empty.  Ordering is strict FIFO for both items and blocked tasks.
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "chan") -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError(f"channel capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = collections.deque()
        self._getters: Deque[Task] = collections.deque()
        self._putters: Deque[tuple] = collections.deque()  # (task, item)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue ``item``; blocks while the channel is at capacity."""
        if self._getters:
            # Hand directly to the longest-waiting getter.
            task = self._getters.popleft()
            self.sim._wake(task, item)
            return
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append((self.sim.current_task, item))
            self.sim._block(f"{self.name}.put (full)")
            return
        self._items.append(item)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the channel is full."""
        if self._getters:
            self.sim._wake(self._getters.popleft(), item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        return True

    def get(self) -> Any:
        """Dequeue the oldest item; blocks while the channel is empty."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                task, pending = self._putters.popleft()
                self._items.append(pending)
                self.sim._wake(task)
            return item
        self._getters.append(self.sim.current_task)
        return self.sim._block(f"{self.name}.get (empty)")

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        return True, self.get()


class Semaphore:
    """Counting semaphore in virtual time (FIFO fairness)."""

    def __init__(self, sim: Simulator, value: int, name: str = "sem") -> None:
        if value < 0:
            raise SimulationError(f"semaphore value must be >= 0, got {value}")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Task] = collections.deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> None:
        if self._value > 0:
            self._value -= 1
            return
        self._waiters.append(self.sim.current_task)
        self.sim._block(f"{self.name}.acquire")

    def try_acquire(self) -> bool:
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        if self._waiters:
            self.sim._wake(self._waiters.popleft())
            return
        self._value += 1


class Lock:
    """Mutex built on :class:`Semaphore`, with context-manager support."""

    def __init__(self, sim: Simulator, name: str = "lock") -> None:
        self._sem = Semaphore(sim, 1, name=name)
        self._owner: Optional[Task] = None
        self.sim = sim
        self.name = name

    @property
    def locked(self) -> bool:
        return self._owner is not None

    def acquire(self) -> None:
        task = self.sim.current_task
        if self._owner is task:
            raise SimulationError(f"{self.name}: non-reentrant lock re-acquired")
        self._sem.acquire()
        self._owner = task

    def release(self) -> None:
        if self._owner is not self.sim.current_task:
            raise SimulationError(f"{self.name}: released by non-owner")
        self._owner = None
        self._sem.release()

    def __enter__(self) -> "Lock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


class Barrier:
    """Reusable rendezvous for a fixed number of parties.

    The last arriving task releases everyone; ``wait`` returns the
    arrival index (0 for the first arrival, ``parties - 1`` for the
    releasing task), mirroring :class:`threading.Barrier`.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier") -> None:
        if parties <= 0:
            raise SimulationError(f"barrier parties must be positive, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: List[Task] = []
        self._generation = 0

    def wait(self) -> int:
        index = len(self._waiting)
        if index == self.parties - 1:
            waiting, self._waiting = self._waiting, []
            self._generation += 1
            for i, task in enumerate(waiting):
                self.sim._wake(task, i)
            return index
        self._waiting.append(self.sim.current_task)
        return self.sim._block(f"{self.name}.wait ({index + 1}/{self.parties})")
