"""Global segments and symmetric global memory (§3.2, Fig. 2).

Every (rank, device) pair owns a :class:`GlobalSegment`: a reserved
device address range, registered **once** with the conduit, subdivided
by a heap allocator.  Symmetric allocation gives every rank the same
offset, so the remote address of a symmetric object is simply

    ``remote_segment_base + local_offset``

— the offset-translation property the paper's one-sided fast path
depends on.  :class:`GlobalBuffer` is the user-visible handle.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.memref import MemRef
from repro.core.allocator import make_allocator
from repro.device.driver import Device
from repro.device.memory import DeviceBuffer
from repro.util.errors import AllocationError


class GlobalSegment:
    """One device's slice of the PGAS global space.

    The segment is split into two regions:

    * **symmetric region** ``[0, size/2)`` — collective allocations.
      Every rank's symmetric allocator sees the identical call
      sequence, so offsets match across ranks (the translation
      invariant).
    * **local region** ``[size/2, size)`` — rank-local allocations:
      intercepted libomptarget mappings and the data blocks of
      asymmetric allocations ("at the end of the global segment", §3.2).
      These differ per rank without perturbing the symmetric allocator.

    Both regions live inside one reserved, once-registered address
    range, so everything is remotely addressable.
    """

    def __init__(
        self,
        device: Device,
        size: int,
        allocator_kind: str = "linear",
        owner_rank: int = 0,
        obs=None,
    ) -> None:
        self.device = device
        self.size = size
        self.owner_rank = owner_rank
        self.base = device.memory.reserve(size)
        self.symmetric_region = size // 2
        self.symmetric_allocator = make_allocator(allocator_kind, self.symmetric_region)
        self.local_allocator = make_allocator(allocator_kind, size - self.symmetric_region)
        #: installed by the runtime after conduit registration
        self.conduit_segment = None
        #: count of distinct registrations performed (1, vs one per
        #: allocation in the Fig. 1a baseline)
        self.registrations = 0
        #: occupancy gauge (repro.obs), labeled by rank and region
        self._g_occ = (
            obs.gauge("segment.occupancy_bytes", "allocated bytes by rank/region")
            if obs is not None
            else None
        )

    def _track_occupancy(self, region: str, allocator) -> None:
        if self._g_occ is not None:
            self._g_occ.set(
                allocator.allocated_bytes, rank=self.owner_rank, region=region
            )

    def address_of(self, offset: int) -> int:
        """Device virtual address of a segment offset."""
        if self.base is None:
            raise AllocationError("global segment has been released")
        if not 0 <= offset < self.size:
            raise AllocationError(
                f"offset {offset} outside global segment of {self.size} bytes"
            )
        return self.base + offset

    def offset_of(self, address: int) -> int:
        """Inverse of :meth:`address_of`."""
        offset = address - self.base
        if not 0 <= offset < self.size:
            raise AllocationError(f"address {address:#x} outside global segment")
        return offset

    def place(self, offset: int, size: int, virtual: bool, label: str) -> DeviceBuffer:
        """Materialize an allocation at a fixed segment offset."""
        return self.device.memory.allocate_at(
            self.address_of(offset), size, virtual=virtual, label=label
        )

    def sym_alloc(self, size: int) -> int:
        """Symmetric-region allocation; returns the segment offset.

        Collective coordination (same sequence on every rank) is the
        runtime's job; this is the per-rank allocator step.
        """
        offset = self.symmetric_allocator.alloc(size)
        self._track_occupancy("symmetric", self.symmetric_allocator)
        return offset

    def sym_free(self, offset: int) -> None:
        self.symmetric_allocator.free(offset)
        self._track_occupancy("symmetric", self.symmetric_allocator)

    def alloc_local(self, size: int, virtual: bool = False, label: str = "") -> DeviceBuffer:
        """Rank-local allocation inside the segment (used by the
        libomptarget plugin and by asymmetric data blocks).  The result
        is remotely addressable — the segment registration covers it —
        but its offset is not coordinated across ranks."""
        offset = self.symmetric_region + self.local_allocator.alloc(size)
        self._track_occupancy("local", self.local_allocator)
        return self.place(offset, size, virtual, label or "diomp-local")

    def free_local(self, buffer: DeviceBuffer) -> None:
        """Release a local-region allocation back to the heap."""
        offset = self.offset_of(buffer.address)
        if offset < self.symmetric_region:
            raise AllocationError(
                "free_local on a symmetric allocation; use the runtime's "
                "collective free"
            )
        self.local_allocator.free(offset - self.symmetric_region)
        self._track_occupancy("local", self.local_allocator)
        self.device.memory.free(buffer)

    def release(self) -> None:
        """Tear the whole segment down, returning its device memory.

        Idempotent.  Used by the cluster service when a job finishes:
        the reservation (and any allocations still placed inside it)
        is handed back to the device so the next job's segment fits.
        """
        if self.base is None:
            return
        self.device.memory.release(self.base)
        self.base = None
        self.conduit_segment = None

    @property
    def released(self) -> bool:
        return self.base is None

    @property
    def free_bytes(self) -> int:
        return self.symmetric_allocator.free_bytes + self.local_allocator.free_bytes


class HostSegment:
    """One rank's host-side slice of the PGAS space (§3.2: "on the CPU
    side, users can allocate memory in the global address space
    manually using ``omp_alloc``").

    A numpy arena registered once with the conduit; a heap allocator
    subdivides it with the same symmetric-offset discipline as the
    device segments.
    """

    def __init__(self, node: int, size: int, allocator_kind: str = "linear", owner_rank: int = 0) -> None:
        import numpy as np

        self.node = node
        self.size = size
        self.owner_rank = owner_rank
        self.arena = np.zeros(size, dtype=np.uint8)
        self.allocator = make_allocator(allocator_kind, size)
        #: synthetic base address assigned at conduit registration
        self.base: Optional[int] = None
        self.conduit_segment = None

    def address_of(self, offset: int) -> int:
        if self.base is None:
            raise AllocationError("host segment not yet registered")
        if not 0 <= offset < self.size:
            raise AllocationError(
                f"offset {offset} outside host segment of {self.size} bytes"
            )
        return self.base + offset

    def memref(self, offset: int, nbytes: int) -> MemRef:
        return MemRef.host(self.node, self.arena, offset=offset, nbytes=nbytes)


class HostGlobalBuffer:
    """A symmetric host-side global allocation (``omp_alloc``)."""

    def __init__(self, rank: int, segment: HostSegment, offset: int, size: int) -> None:
        self.rank = rank
        self.segment = segment
        self.offset = offset
        self.size = size
        self.freed = False

    def memref(self, offset: int = 0, nbytes: int = -1) -> MemRef:
        if self.freed:
            raise AllocationError("use of a freed HostGlobalBuffer")
        if nbytes < 0:
            nbytes = self.size - offset
        if offset < 0 or offset + nbytes > self.size:
            raise AllocationError(
                f"range [{offset}, +{nbytes}) exceeds host buffer of {self.size}"
            )
        return self.segment.memref(self.offset + offset, nbytes)

    def typed(self, dtype, count: int = -1, offset: int = 0):
        import numpy as np

        dtype = np.dtype(dtype)
        if count == -1:
            count = (self.size - offset) // dtype.itemsize
        return self.memref(offset, count * dtype.itemsize).typed(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HostGlobalBuffer rank={self.rank} off={self.offset} size={self.size}>"


class GlobalBuffer:
    """A symmetric global allocation (one rank's handle).

    All ranks hold the same ``(device_num, offset, size)``; ``local``
    is this rank's backing memory.  Offsets into the buffer combine
    with any rank's segment base for one-sided access.
    """

    def __init__(
        self,
        rank: int,
        device_num: int,
        offset: int,
        size: int,
        local: DeviceBuffer,
    ) -> None:
        self.rank = rank
        self.device_num = device_num
        self.offset = offset
        self.size = size
        self.local = local
        self.freed = False

    def memref(self, offset: int = 0, nbytes: int = -1) -> MemRef:
        """A MemRef over (part of) the local backing."""
        if self.freed:
            raise AllocationError("use of a freed GlobalBuffer")
        if nbytes < 0:
            nbytes = self.size - offset
        return MemRef.device(self.local, offset=offset, nbytes=nbytes)

    def typed(self, dtype, count: int = -1, offset: int = 0):
        """Typed numpy view of the local backing."""
        return self.local.as_array(dtype, count=count, offset=offset)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GlobalBuffer rank={self.rank} dev={self.device_num} "
            f"off={self.offset} size={self.size}>"
        )
