"""The DiOMP-Offloading runtime and per-rank user API.

:class:`DiompRuntime` is constructed once per world.  It:

1. selects the conduit (GASNet-EX by default, GPI-2 on request),
2. reserves one :class:`~repro.core.globalmem.GlobalSegment` per
   (rank, bound device) and registers each with the conduit exactly
   once (the unified registration of Fig. 1b),
3. creates the world :class:`~repro.core.group.DiompGroup` and the
   OMPCCL layer,
4. installs a :class:`Diomp` handle on every rank context
   (``ctx.diomp``) carrying the full user API: collective symmetric /
   asymmetric allocation, ``ompx_put``/``get``/``fence``/``barrier``,
   group management, OMPCCL collectives, and an OpenMP target runtime
   whose plugin allocates from the global segment.

Collective calls (alloc, free, group create/split) rendezvous through
shared runtime state, mirroring the coordinated allocation phase the
paper requires of all participating nodes.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.world import RankContext, World
from repro.core.asymmetric import (
    SECOND_LEVEL_POINTER_BYTES,
    AsymmetricBuffer,
    RemotePointerCache,
)
from repro.core.globalmem import (
    GlobalBuffer,
    GlobalSegment,
    HostGlobalBuffer,
    HostSegment,
)
from repro.core.group import DiompGroup
from repro.core.ompccl import Ompccl
from repro.core.plugin import DiompPlugin
from repro.core.rma import DiompRma, RmaAggregationParams, RmaTarget
from repro.core.streams import StreamPool, StreamPoolParams
from repro.gasnet import GasnetConduit
from repro.gpi2 import Gpi2Conduit
from repro.omptarget import OmpTargetRuntime
from repro.sim import Barrier, Future
from repro.util.errors import CommunicationError, ConfigurationError
from repro.util.units import MiB, US


@dataclasses.dataclass(frozen=True)
class DiompParams:
    """Runtime configuration."""

    #: per-device global segment size
    segment_size: int = 64 * MiB
    #: per-rank host-side global segment size (omp_alloc space)
    host_segment_size: int = 16 * MiB
    #: heap strategy inside the segment: "linear" | "buddy"
    allocator: str = "linear"
    #: communication middleware: "gasnet" | "gpi2"
    conduit: str = "gasnet"
    #: stream pool policy
    stream_params: StreamPoolParams = dataclasses.field(default_factory=StreamPoolParams)
    #: remote second-level-pointer cache (ablation switch)
    pointer_cache: bool = True
    #: bulk second-level-pointer prefetch at asymmetric allocation
    #: time (ablation switch; requires ``pointer_cache``): one AM round
    #: pre-populates every rank's cache so remote accesses never pay a
    #: per-miss blocking pointer fetch
    pointer_prefetch: bool = False
    #: small-message aggregation on the conduit path (off by default)
    aggregation: RmaAggregationParams = dataclasses.field(
        default_factory=RmaAggregationParams
    )
    #: topology-aware hierarchical path selection (ablation switch:
    #: False forces every transfer through the conduit/NIC path)
    hierarchical_paths: bool = True
    #: software overhead of the IPC/P2P fast path per operation
    ipc_op_overhead: float = 0.5 * US
    #: one-time cost of enabling peer access for a device pair
    peer_enable_overhead: float = 10.0 * US
    #: per-round cost of the dissemination barrier
    barrier_step_overhead: float = 1.8 * US
    #: coordination cost charged per collective allocation
    alloc_coordination_overhead: float = 3.0 * US


class _Rendezvous:
    """All-ranks arrival point carrying per-rank payloads."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.payloads: Dict[int, object] = {}
        self.waiters: List[Future] = []
        self.result: object = None


class DiompRuntime:
    """World-level runtime state."""

    def __init__(
        self,
        world: World,
        params: Optional[DiompParams] = None,
    ) -> None:
        self.world = world
        self.params = params or DiompParams()
        #: the world's observability layer: one metrics registry and
        #: span profiler shared by every rank handle and subsystem
        self.obs = world.obs
        if self.params.conduit == "gasnet":
            self.conduit = GasnetConduit(world)
        elif self.params.conduit == "gpi2":
            self.conduit = Gpi2Conduit(world)
        else:
            raise ConfigurationError(
                f"unknown conduit {self.params.conduit!r} (gasnet | gpi2)"
            )
        self.ompccl = Ompccl(world, self.conduit)
        #: (rank, device_num) -> GlobalSegment
        self.segments: Dict[Tuple[int, int], GlobalSegment] = {}
        for ctx in world.ranks:
            for device_num, device in enumerate(ctx.devices):
                seg = GlobalSegment(
                    device,
                    self.params.segment_size,
                    allocator_kind=self.params.allocator,
                    owner_rank=ctx.rank,
                    obs=self.obs,
                )
                # The single registration of Fig. 1b.
                seg.conduit_segment = self.conduit.client(ctx.rank).attach_space_segment(
                    device.memory, seg.base, seg.size
                )
                seg.registrations = 1
                self.segments[(ctx.rank, device_num)] = seg
        #: rank -> host-side global segment (the omp_alloc space)
        self.host_segments: Dict[int, HostSegment] = {}
        for ctx in world.ranks:
            hseg = HostSegment(
                ctx.node,
                self.params.host_segment_size,
                allocator_kind=self.params.allocator,
                owner_rank=ctx.rank,
            )
            seg = self.conduit.client(ctx.rank).attach_segment(
                MemRef.host(ctx.node, hseg.arena)
            )
            hseg.base = seg.base_address
            hseg.conduit_segment = seg
            self.host_segments[ctx.rank] = hseg
        devices_by_rank = {
            ctx.rank: [d.device_id for d in ctx.devices] for ctx in world.ranks
        }
        self._devices_by_rank = devices_by_rank
        #: per-runtime group-id allocator: ids restart at 0 for every
        #: runtime, so identical sequential runs in one process get
        #: identical ids and stable ``group=`` metric/trace labels
        self._group_ids = itertools.count()
        self.world_group = DiompGroup.create(
            list(range(world.nranks)), devices_by_rank, group_id=self.next_group_id()
        )
        self.handles: List[Diomp] = []
        for ctx in world.ranks:
            handle = Diomp(self, ctx)
            ctx.diomp = handle
            self.handles.append(handle)
        self._rendezvous: Dict[Tuple[str, int], _Rendezvous] = {}
        self._group_barriers: Dict[int, Barrier] = {}

    # -- teardown ---------------------------------------------------------------

    def finalize(self) -> Dict[str, int]:
        """``ompx_finalize``: verify a clean shutdown.

        Collective-free (host-side) check run after the simulation:
        reports leaked symmetric/local allocations and RMA operations
        never fenced.  Raises on pending RMA (a correctness bug);
        returns the leak counts so tests/apps can assert zero.
        """
        pending = sum(handle.rma.pending_ops for handle in self.handles)
        if pending:
            raise CommunicationError(
                f"finalize with {pending} unfenced RMA operation(s); call "
                "ompx_fence before shutdown"
            )
        sym_live = sum(
            seg.symmetric_allocator.live_allocations for seg in self.segments.values()
        )
        local_live = sum(
            seg.local_allocator.live_allocations for seg in self.segments.values()
        )
        host_live = sum(
            seg.allocator.live_allocations for seg in self.host_segments.values()
        )
        return {
            "symmetric_leaks": sym_live,
            "local_leaks": local_live,
            "host_leaks": host_live,
        }

    # -- lookups --------------------------------------------------------------

    def segment_of(self, rank: int, device_num: int = 0) -> GlobalSegment:
        try:
            return self.segments[(rank, device_num)]
        except KeyError:
            raise ConfigurationError(
                f"no global segment for rank {rank} device {device_num}"
            ) from None

    def host_segment_of(self, rank: int) -> HostSegment:
        try:
            return self.host_segments[rank]
        except KeyError:
            raise ConfigurationError(f"no host segment for rank {rank}") from None

    def next_group_id(self) -> int:
        """Allocate the next deterministic group id for this runtime."""
        return next(self._group_ids)

    def group_barrier(self, group: DiompGroup) -> Barrier:
        if group.group_id not in self._group_barriers:
            self._group_barriers[group.group_id] = Barrier(
                self.world.sim, group.size, name=f"diomp-group{group.group_id}"
            )
        return self._group_barriers[group.group_id]

    # -- collective rendezvous machinery ------------------------------------------

    def rendezvous(self, kind: str, seq: int, rank: int, payload: object, size: int):
        """Arrive at a collective point; the last arrival computes
        nothing (caller does) but everyone leaves together with access
        to all payloads.  Returns the payload dict."""
        key = (kind, seq)
        state = self._rendezvous.get(key)
        if state is None:
            state = _Rendezvous(size)
            self._rendezvous[key] = state
        if rank in state.payloads:
            raise CommunicationError(
                f"rank {rank} arrived twice at collective {kind}#{seq}"
            )
        state.payloads[rank] = payload
        sim = self.world.sim
        if len(state.payloads) < size:
            fut = Future(sim, description=f"diomp-{kind}#{seq}")
            state.waiters.append(fut)
            fut.wait()
        else:
            del self._rendezvous[key]
            waiters, state.waiters = state.waiters, []
            for fut in waiters:
                fut.fire()
        return state.payloads


class Diomp:
    """One rank's DiOMP handle — the ``ompx_*`` API surface."""

    def __init__(self, runtime: DiompRuntime, ctx: RankContext) -> None:
        self.runtime = runtime
        self.ctx = ctx
        self.rank = ctx.rank
        self.client = runtime.conduit.client(ctx.rank)
        self.pointer_cache = RemotePointerCache(enabled=runtime.params.pointer_cache)
        self.rma = DiompRma(self)
        if runtime.params.pointer_prefetch:
            # Ack-only handler for the allocation-time address exchange
            # round (the addresses themselves ride the AM payload).
            self.client.register_handler(
                "diomp.asym-prefetch", lambda _src, _payload: None
            )
        self._pools: Dict[int, StreamPool] = {}
        self.plugin = DiompPlugin(self)
        #: libomptarget with the DiOMP allocator installed (Fig. 1b)
        self.omp = OmpTargetRuntime(ctx, plugin=self.plugin)
        self._alloc_seq = 0
        #: per-collective-key call counts (group create/split sequencing)
        self._coll_counts: Dict[object, int] = {}

    # -- infrastructure ------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.runtime.world.nranks

    @property
    def world_group(self) -> DiompGroup:
        return self.runtime.world_group

    def segment(self, device_num: int = 0) -> GlobalSegment:
        return self.runtime.segment_of(self.rank, device_num)

    def stream_pool(self, device_num: int = 0) -> StreamPool:
        if device_num not in self._pools:
            self._pools[device_num] = StreamPool(
                self.ctx.sim,
                self.ctx.devices[device_num],
                params=self.runtime.params.stream_params,
                tracer=self.runtime.world.tracer,
                obs=self.runtime.obs,
            )
        return self._pools[device_num]

    def pool_for_endpoint(self, endpoint) -> StreamPool:
        for device_num, dev in enumerate(self.ctx.devices):
            if dev.device_id == endpoint:
                return self.stream_pool(device_num)
        return self.stream_pool(0)

    def stream_pools(self) -> Dict[int, StreamPool]:
        """Every pool this rank has materialized (device_num -> pool).

        The fence must drain all of them: intra-node RMA enqueues onto
        the pool of the *local endpoint's* device, which need not be
        the device the fence was called for.
        """
        return dict(self._pools)

    # -- symmetric allocation (collective) ----------------------------------------

    def alloc(
        self, nbytes: int, device_num: int = 0, virtual: bool = False
    ) -> GlobalBuffer:
        """``ompx_alloc``: collective symmetric allocation.

        Every rank must call with the same size and device; all ranks
        receive the same segment offset (verified), preserving the
        offset-translation invariant.
        """
        seq = self._alloc_seq
        self._alloc_seq += 1
        self.ctx.sim.sleep(self.runtime.params.alloc_coordination_overhead)
        payloads = self.runtime.rendezvous(
            "sym-alloc", seq, self.rank, (nbytes, device_num), self.nranks
        )
        sizes = {p[0] for p in payloads.values()}
        devs = {p[1] for p in payloads.values()}
        if len(sizes) != 1 or len(devs) != 1:
            raise CommunicationError(
                f"symmetric allocation mismatch at #{seq}: sizes={sizes} "
                f"devices={devs}; use alloc_asymmetric for differing sizes"
            )
        seg = self.segment(device_num)
        offset = seg.sym_alloc(nbytes)
        virtual = virtual or self.runtime.world.analytic
        local = seg.place(offset, nbytes, virtual, f"sym#{seq}")
        check = self.runtime.rendezvous(
            "sym-alloc-verify", seq, self.rank, offset, self.nranks
        )
        if len(set(check.values())) != 1:  # pragma: no cover - invariant
            raise CommunicationError(
                f"symmetric offsets diverged at #{seq}: {check}"
            )
        return GlobalBuffer(self.rank, device_num, offset, nbytes, local)

    def free(self, gbuf: GlobalBuffer) -> None:
        """Collective free of a symmetric allocation."""
        if gbuf.freed:
            raise CommunicationError("double free of GlobalBuffer")
        seq = self._alloc_seq
        self._alloc_seq += 1
        self.runtime.rendezvous(
            "sym-free", seq, self.rank, gbuf.offset, self.nranks
        )
        seg = self.segment(gbuf.device_num)
        seg.sym_free(gbuf.offset)
        seg.device.memory.free(gbuf.local)
        gbuf.freed = True

    # -- host-side global memory (omp_alloc, §3.2) --------------------------------

    def alloc_host(self, nbytes: int) -> HostGlobalBuffer:
        """``omp_alloc`` into the host-side global space: collective,
        symmetric, remotely accessible via put/get like device memory."""
        seq = self._alloc_seq
        self._alloc_seq += 1
        self.ctx.sim.sleep(self.runtime.params.alloc_coordination_overhead)
        payloads = self.runtime.rendezvous(
            "host-alloc", seq, self.rank, nbytes, self.nranks
        )
        if len(set(payloads.values())) != 1:
            raise CommunicationError(
                f"host symmetric allocation mismatch at #{seq}: "
                f"{set(payloads.values())}"
            )
        hseg = self.runtime.host_segment_of(self.rank)
        offset = hseg.allocator.alloc(nbytes)
        self.runtime.obs.gauge(
            "segment.occupancy_bytes", "allocated bytes by rank/region"
        ).set(hseg.allocator.allocated_bytes, rank=self.rank, region="host")
        return HostGlobalBuffer(self.rank, hseg, offset, nbytes)

    def free_host(self, hbuf: HostGlobalBuffer) -> None:
        """Collective free of a host global allocation."""
        if hbuf.freed:
            raise CommunicationError("double free of HostGlobalBuffer")
        seq = self._alloc_seq
        self._alloc_seq += 1
        self.runtime.rendezvous("host-free", seq, self.rank, hbuf.offset, self.nranks)
        hbuf.segment.allocator.free(hbuf.offset)
        self.runtime.obs.gauge("segment.occupancy_bytes").set(
            hbuf.segment.allocator.allocated_bytes, rank=self.rank, region="host"
        )
        hbuf.freed = True

    # -- asymmetric allocation (collective) -------------------------------------------

    def alloc_asymmetric(
        self, nbytes: int, device_num: int = 0, virtual: bool = False
    ) -> AsymmetricBuffer:
        """``ompx_alloc`` with differing sizes: the second-level-pointer
        scheme of Fig. 2.  ``nbytes`` may be 0 (no local block)."""
        if nbytes < 0:
            raise CommunicationError(f"negative asymmetric size {nbytes}")
        seq = self._alloc_seq
        self._alloc_seq += 1
        self.ctx.sim.sleep(self.runtime.params.alloc_coordination_overhead)
        seg = self.segment(device_num)
        # Uniform 32-byte wrapper in the symmetric region; the slot
        # itself is always real — it only holds the 8-byte pointer.
        slot_offset = seg.sym_alloc(SECOND_LEVEL_POINTER_BYTES)
        slot_buf = seg.place(
            slot_offset, SECOND_LEVEL_POINTER_BYTES, False, f"asym-slot#{seq}"
        )
        data = None
        data_addr = 0
        if nbytes > 0:
            # The data block honors analytic mode; the pointer slot
            # above stays real — remote dereferences read its value.
            virtual = virtual or self.runtime.world.analytic
            data = seg.alloc_local(nbytes, virtual=virtual, label=f"asym#{seq}")
            data_addr = data.address
        # Publish the pointer value in the wrapper (what a remote
        # second-level dereference reads).
        slot_buf.as_array(np.int64, count=1)[0] = data_addr
        payloads = self.runtime.rendezvous(
            "asym-alloc", seq, self.rank, (nbytes, data_addr, slot_offset), self.nranks
        )
        slots = {p[2] for p in payloads.values()}
        if len(slots) != 1:  # pragma: no cover - invariant
            raise CommunicationError(f"second-level slots diverged: {slots}")
        sizes = tuple(payloads[r][0] for r in range(self.nranks))
        addrs = tuple(payloads[r][1] for r in range(self.nranks))
        buf = AsymmetricBuffer(
            self.rank, device_num, slot_offset, sizes, data, addrs
        )
        buf.slot_buffer = slot_buf
        # All ranks must share one handle id for cache coherence: derive
        # it deterministically from the allocation sequence.
        buf.handle_id = ("asym", id(self.runtime), seq)  # type: ignore[assignment]
        if self.runtime.params.pointer_prefetch and self.pointer_cache.enabled:
            self._prefetch_pointers(buf, addrs)
        return buf

    def _prefetch_pointers(
        self, buf: AsymmetricBuffer, addrs: Tuple[int, ...]
    ) -> None:
        """Bulk second-level-pointer prefetch: every rank already holds
        all data addresses from the allocation rendezvous, so one AM
        round (one ``8 * nranks``-byte exchange with a neighbour, the
        cost of an all-gather round in the ring model) publishes them
        into the local :class:`RemotePointerCache`.  Later remote
        accesses then never pay the per-miss blocking pointer fetch."""
        if self.nranks > 1:
            peer = (self.rank + 1) % self.nranks
            self.client.am_request(
                peer,
                "diomp.asym-prefetch",
                buf.handle_id,
                payload_bytes=SECOND_LEVEL_POINTER_BYTES * self.nranks,
            ).wait()
        inserted = 0
        for rank, addr in enumerate(addrs):
            if addr != 0:
                self.pointer_cache.insert(buf.handle_id, rank, addr)
                inserted += 1
        if inserted:
            self.rma._m_ptr.inc(inserted, event="prefetch", rank=self.rank)

    def free_asymmetric(self, abuf: AsymmetricBuffer) -> None:
        """Collective free; centrally invalidates pointer caches."""
        if abuf.freed:
            raise CommunicationError("double free of AsymmetricBuffer")
        seq = self._alloc_seq
        self._alloc_seq += 1
        self.runtime.rendezvous("asym-free", seq, self.rank, None, self.nranks)
        seg = self.segment(abuf.device_num)
        seg.sym_free(abuf.slot_offset)
        seg.device.memory.free(abuf.slot_buffer)
        if abuf.data is not None:
            seg.free_local(abuf.data)
        abuf.freed = True
        # Central lifecycle management: every rank's cache drops the
        # handle (valid-for-lifetime guarantee, §3.2).
        for handle in self.runtime.handles:
            handle.pointer_cache.invalidate_handle(abuf.handle_id)

    # -- RMA -------------------------------------------------------------------

    def put(
        self,
        target_rank: int,
        target: RmaTarget,
        src: MemRef,
        target_offset: int = 0,
        device_num: int = 0,
    ) -> None:
        """``ompx_put(dst, src, size)`` — completes at the next fence."""
        self.rma.put(target_rank, target, src, target_offset, device_num)

    def get(
        self,
        target_rank: int,
        target: RmaTarget,
        dst: MemRef,
        target_offset: int = 0,
        device_num: int = 0,
    ) -> None:
        """``ompx_get`` — completes at the next fence."""
        self.rma.get(target_rank, target, dst, target_offset, device_num)

    def fence(self, device_num: int = 0, group: Optional[DiompGroup] = None) -> None:
        """``ompx_fence``: local completion of outstanding RMA.

        Passing an ``ompx_group_t`` scopes the fence to operations
        targeting that group's members (§3.3).
        """
        self.rma.fence(device_num, group=group)

    def barrier(self, group: Optional[DiompGroup] = None) -> None:
        """``ompx_barrier``: fence + group-wide synchronization.

        A sub-group barrier fences only the RMA targeting that group's
        members; operations aimed at non-members stay pending until
        their own fence (§3.3 group-scoped completion).
        """
        scope = group
        group = group or self.world_group
        if not group.contains(self.rank):
            raise CommunicationError(
                f"rank {self.rank} called barrier on group {group.group_id} "
                "it does not belong to"
            )
        self.fence(group=scope)
        with self.runtime.obs.span("barrier", rank=self.rank, group=group.group_id):
            rounds = max(1, int(np.ceil(np.log2(max(group.size, 2)))))
            self.ctx.sim.sleep(rounds * self.runtime.params.barrier_step_overhead)
            self.runtime.obs.rendezvous("barrier", group.group_id, self.rank)
            self.runtime.group_barrier(group).wait()

    # -- groups ------------------------------------------------------------------

    def group_create(self, ranks: Sequence[int]) -> DiompGroup:
        """Create a group (collective among its members; every member
        must call with the same rank list)."""
        ranks = tuple(ranks)
        if self.rank not in ranks:
            raise CommunicationError(
                f"rank {self.rank} cannot create a group it is not in"
            )
        # Sequence per ranks-tuple: every member calls this collective
        # the same number of times, so per-rank counts agree.
        key = ("group-create", ranks)
        seq = self._coll_counts.get(key, 0)
        self._coll_counts[key] = seq + 1
        key_rank = ranks.index(self.rank)
        groups = self.runtime.rendezvous(
            f"group-{ranks!r}",
            seq,
            key_rank,
            DiompGroup.create(
                ranks,
                self.runtime._devices_by_rank,
                group_id=self.runtime.next_group_id(),
            )
            if key_rank == 0
            else None,
            len(ranks),
        )
        return groups[0]

    def group_merge(self, a: DiompGroup, b: DiompGroup) -> DiompGroup:
        """Merge two groups into a new one (collective among the union)."""
        combined = list(a.ranks) + [r for r in b.ranks if r not in a.ranks]
        return self.group_create(combined)

    def group_split(self, group: DiompGroup, color: int) -> Optional[DiompGroup]:
        """Split a group by color (members with negative color opt out)."""
        key = ("group-split", group.group_id)
        seq = self._coll_counts.get(key, 0)
        self._coll_counts[key] = seq + 1
        payloads = self.runtime.rendezvous(
            f"split-{group.group_id}", seq, group.group_rank(self.rank),
            color, group.size,
        )
        if color < 0:
            return None
        members = tuple(
            group.ranks[gr] for gr, c in sorted(payloads.items()) if c == color
        )
        return self.group_create(members)

    # -- OMPCCL collectives ----------------------------------------------------------

    def _buffers(self, buf) -> List[MemRef]:
        if isinstance(buf, MemRef):
            return [buf]
        if isinstance(buf, GlobalBuffer):
            return [buf.memref()]
        return [b.memref() if isinstance(b, GlobalBuffer) else b for b in buf]

    def bcast(
        self,
        buf,
        root_rank: int = 0,
        group: Optional[DiompGroup] = None,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_bcast(ptr, size, group)``: device-side broadcast.

        ``root_rank`` is a world rank; the broadcast originates from
        its first device slot in the group.  ``algo`` forces a
        collective algorithm ("ring" | "tree" | "hier_ring"); the
        default auto-selects from topology and message size.
        """
        group = group or self.world_group
        root_slot = group.device_slots(root_rank)[0]
        self.runtime.ompccl.bcast(
            group, self.ctx, self._buffers(buf), root_slot, algo=algo
        )

    def allreduce(
        self,
        send,
        recv,
        dtype=np.float64,
        op=np.add,
        group: Optional[DiompGroup] = None,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_allreduce``: device-side allreduce over the group."""
        group = group or self.world_group
        self.runtime.ompccl.allreduce(
            group, self.ctx, self._buffers(send), self._buffers(recv), dtype, op,
            algo=algo,
        )

    def reduce(
        self,
        send,
        recv,
        root_rank: int = 0,
        dtype=np.float64,
        op=np.add,
        group: Optional[DiompGroup] = None,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_reduce`` toward ``root_rank``'s first device slot."""
        group = group or self.world_group
        root_slot = group.device_slots(root_rank)[0]
        recv_list = self._buffers(recv) if recv is not None else [None] * len(
            self.ctx.devices
        )
        self.runtime.ompccl.reduce(
            group, self.ctx, self._buffers(send), recv_list, root_slot, dtype, op,
            algo=algo,
        )

    def allgather(
        self,
        send,
        recv,
        group: Optional[DiompGroup] = None,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_allgather``: each device slot contributes its send
        buffer; every receive buffer holds all blocks in slot order."""
        group = group or self.world_group
        self.runtime.ompccl.allgather(
            group, self.ctx, self._buffers(send), self._buffers(recv), algo=algo
        )

    def reduce_scatter(
        self,
        send,
        recv,
        dtype=np.float64,
        op=np.add,
        group: Optional[DiompGroup] = None,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_reduce_scatter``: element-wise reduction of every
        slot's send buffer; slot ``i`` receives reduced block ``i``."""
        group = group or self.world_group
        self.runtime.ompccl.reduce_scatter(
            group, self.ctx, self._buffers(send), self._buffers(recv), dtype, op,
            algo=algo,
        )

    def alltoall(
        self,
        send,
        recv,
        group: Optional[DiompGroup] = None,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_alltoall``: block ``j`` of slot ``i``'s send buffer
        lands as block ``i`` of slot ``j``'s receive buffer."""
        group = group or self.world_group
        self.runtime.ompccl.alltoall(
            group, self.ctx, self._buffers(send), self._buffers(recv), algo=algo
        )
