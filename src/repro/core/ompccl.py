"""OMPCCL: the OpenMP Collective Communication Layer (§3.3).

OMPCCL bridges the DiOMP group abstraction to the vendor collective
libraries.  Responsibilities reproduced from the paper:

* **transparent channel setup** — on a group's first collective, the
  group root mints an XCCL UniqueId and the other member ranks fetch
  it over the CPU-side network (an active-message round trip); every
  member then joins one communicator *slot per bound device*,
* **device-slot collectives** — ``bcast``/``allreduce``/``reduce``/
  ``allgather``/``reduce_scatter``/``alltoall`` take one buffer per
  local device; a multi-device rank drives all its slots concurrently
  (the group-launch pattern a single process needs, cf.
  ncclGroupStart/End),
* **algorithm attribution** — every launch records the XCCL-selected
  algorithm (ring / tree / hierarchical ring) as an ``ompccl.algo``
  metric label and span argument so traces and the critical path
  separate intra-node from inter-node collective time,
* **vendor dispatch** — the platform's library (NCCL or RCCL) is
  selected by the runtime; OMPCCL itself is vendor-neutral.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.world import RankContext, World
from repro.core.group import DiompGroup
from repro.util.errors import CommunicationError
from repro.xccl import UniqueId, XcclComm, XcclContext, params_for


class _GroupChannels:
    """Shared per-group collective state (UniqueId + join bookkeeping)."""

    def __init__(self, uid: UniqueId) -> None:
        self.uid = uid
        #: world_rank -> list of XcclComm (one per bound device)
        self.comms_by_rank: Dict[int, List[XcclComm]] = {}


class Ompccl:
    """The collective layer instance for one world."""

    def __init__(self, world: World, conduit, ccl: Optional[str] = None) -> None:
        self.world = world
        self.conduit = conduit
        self.xccl = XcclContext(world, params_for(ccl or world.platform.ccl))
        self._channels: Dict[int, _GroupChannels] = {}
        #: counts of UniqueId fetches over the CPU network (init cost)
        self.uid_exchanges = 0
        # -- metrics (see repro.obs) --
        self._obs = world.obs
        self._m_colls = self._obs.counter(
            "ompccl.collectives",
            "collective launches by kind/library/group size",
        )
        self._m_bytes = self._obs.counter(
            "ompccl.bytes", "collective payload bytes by kind"
        )
        self._m_algo = self._obs.counter(
            "ompccl.algo", "collective launches by selected XCCL algorithm"
        )

    def _record(self, kind: str, group: DiompGroup, ctx: RankContext, buffers: Sequence[MemRef]) -> None:
        nbytes = sum(b.nbytes for b in buffers)
        self._m_colls.inc(
            kind=kind,
            library=self.xccl.params.name,
            group_size=group.size,
            rank=ctx.rank,
        )
        self._m_bytes.inc(nbytes, kind=kind, rank=ctx.rank)

    def _selected(
        self,
        comms: Sequence[XcclComm],
        kind: str,
        xccl_op: str,
        nbytes: int,
        group: DiompGroup,
        ctx: RankContext,
        algo: Optional[str],
    ) -> str:
        """Resolve (and label) the algorithm one launch will use.

        Previews the communicator's selection so the ``ompccl.algo``
        counter and the collective span carry the algorithm before the
        rendezvous completes; a forced-but-ineligible ``algo`` raises
        here, before any member arrives.
        """
        selected = comms[0].select(xccl_op, nbytes, algo=algo).algo
        self._m_algo.inc(
            kind=kind,
            algo=selected,
            library=self.xccl.params.name,
            group=group.group_id,
            rank=ctx.rank,
        )
        return selected

    def _trace_rendezvous(self, kind: str, group: DiompGroup, ctx: RankContext) -> None:
        """Cross-link this rank's open collective span with its peers'
        (see :meth:`repro.obs.Observability.rendezvous`)."""
        self._obs.rendezvous(f"ompccl.{kind}", group.group_id, ctx.rank)

    # -- channel management ------------------------------------------------------

    def _ensure_channels(self, group: DiompGroup, ctx: RankContext) -> List[XcclComm]:
        """Join this rank's device slots of the group's communicator,
        creating the channel state on first use (must run in a task)."""
        root_rank = group.ranks[0]
        chan = self._channels.get(group.group_id)
        if chan is None:
            # First arrival materializes the channel state; the token
            # is logically minted by the group root.
            chan = _GroupChannels(UniqueId.create())
            self._channels[group.group_id] = chan
        if ctx.rank != root_rank and ctx.rank not in chan.comms_by_rank:
            # Non-root members fetch the UniqueId from the root over
            # the CPU-side network (the paper's out-of-band broadcast).
            # Pay the out-of-band exchange cost (one AM round trip).
            client = self.conduit.client(ctx.rank)
            handler = f"ompccl-uid-{group.group_id}"
            root_client = self.conduit.client(root_rank)
            if handler not in root_client._am_handlers:
                root_client.register_handler(handler, lambda src, _p: None)
            client.am_request(root_rank, handler, None).wait()
            self.uid_exchanges += 1
        existing = chan.comms_by_rank.get(ctx.rank)
        if existing is not None:
            return existing
        slots = group.device_slots(ctx.rank)
        ndev = group.device_count
        comms: List[Optional[XcclComm]] = [None] * len(slots)

        def join(i: int, slot: int) -> None:
            comms[i] = XcclComm.init_rank(
                self.xccl, chan.uid, slot, ndev, ctx.devices[i]
            )

        if len(slots) == 1:
            join(0, slots[0])
        else:
            # Group-launch: init_rank blocks until all slots join, so a
            # multi-device rank must drive its slots concurrently.
            tasks = [
                ctx.sim.spawn(join, i, slot, name=f"ompccl-join{slot}")
                for i, slot in enumerate(slots)
            ]
            for t in tasks:
                t.join()
        chan.comms_by_rank[ctx.rank] = comms  # type: ignore[assignment]
        return comms  # type: ignore[return-value]

    def _run_on_slots(
        self,
        ctx: RankContext,
        comms: Sequence[XcclComm],
        op: Callable[[XcclComm, int], None],
    ) -> None:
        """Run one collective on every local slot concurrently."""
        if len(comms) == 1:
            op(comms[0], 0)
            return
        tasks = [
            ctx.sim.spawn(op, comm, i, name=f"ompccl-slot{i}")
            for i, comm in enumerate(comms)
        ]
        for t in tasks:
            t.join()

    def _check_buffers(self, ctx: RankContext, buffers: Sequence[MemRef]) -> None:
        if len(buffers) != len(ctx.devices):
            raise CommunicationError(
                "OMPCCL needs one buffer per bound device "
                f"({len(ctx.devices)}), got {len(buffers)}"
            )

    # -- collectives ---------------------------------------------------------------

    def bcast(
        self,
        group: DiompGroup,
        ctx: RankContext,
        buffers: Sequence[MemRef],
        root_slot: int = 0,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_bcast``: broadcast from a device slot of the group."""
        self._check_buffers(ctx, buffers)
        comms = self._ensure_channels(group, ctx)
        self._record("bcast", group, ctx, buffers)
        selected = self._selected(
            comms, "bcast", "broadcast", buffers[0].nbytes, group, ctx, algo
        )
        with self._obs.span(
            "ompccl.bcast", rank=ctx.rank, group=group.group_id, algo=selected
        ):
            self._trace_rendezvous("bcast", group, ctx)
            self._run_on_slots(
                ctx,
                comms,
                lambda comm, i: comm.broadcast(buffers[i], root=root_slot, algo=algo),
            )

    def allreduce(
        self,
        group: DiompGroup,
        ctx: RankContext,
        send: Sequence[MemRef],
        recv: Sequence[MemRef],
        dtype=np.float64,
        op: Callable = np.add,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_allreduce`` over every device of the group."""
        self._check_buffers(ctx, send)
        self._check_buffers(ctx, recv)
        comms = self._ensure_channels(group, ctx)
        self._record("allreduce", group, ctx, send)
        selected = self._selected(
            comms, "allreduce", "all_reduce", send[0].nbytes, group, ctx, algo
        )
        with self._obs.span(
            "ompccl.allreduce", rank=ctx.rank, group=group.group_id, algo=selected
        ):
            self._trace_rendezvous("allreduce", group, ctx)
            self._run_on_slots(
                ctx,
                comms,
                lambda comm, i: comm.all_reduce(
                    send[i], recv[i], dtype=dtype, op=op, algo=algo
                ),
            )

    def reduce(
        self,
        group: DiompGroup,
        ctx: RankContext,
        send: Sequence[MemRef],
        recv: Sequence[Optional[MemRef]],
        root_slot: int = 0,
        dtype=np.float64,
        op: Callable = np.add,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_reduce`` toward one device slot."""
        self._check_buffers(ctx, send)
        comms = self._ensure_channels(group, ctx)
        self._record("reduce", group, ctx, send)
        selected = self._selected(
            comms, "reduce", "reduce", send[0].nbytes, group, ctx, algo
        )
        with self._obs.span(
            "ompccl.reduce", rank=ctx.rank, group=group.group_id, algo=selected
        ):
            self._trace_rendezvous("reduce", group, ctx)
            self._run_on_slots(
                ctx,
                comms,
                lambda comm, i: comm.reduce(
                    send[i], recv[i], root=root_slot, dtype=dtype, op=op, algo=algo
                ),
            )

    def allgather(
        self,
        group: DiompGroup,
        ctx: RankContext,
        send: Sequence[MemRef],
        recv: Sequence[MemRef],
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_allgather``: every device slot contributes its send
        block; each receive buffer holds all blocks in slot order."""
        self._check_buffers(ctx, send)
        self._check_buffers(ctx, recv)
        comms = self._ensure_channels(group, ctx)
        self._record("allgather", group, ctx, send)
        selected = self._selected(
            comms, "allgather", "all_gather", send[0].nbytes, group, ctx, algo
        )
        with self._obs.span(
            "ompccl.allgather", rank=ctx.rank, group=group.group_id, algo=selected
        ):
            self._trace_rendezvous("allgather", group, ctx)
            self._run_on_slots(
                ctx,
                comms,
                lambda comm, i: comm.all_gather(send[i], recv[i], algo=algo),
            )

    def reduce_scatter(
        self,
        group: DiompGroup,
        ctx: RankContext,
        send: Sequence[MemRef],
        recv: Sequence[MemRef],
        dtype=np.float64,
        op: Callable = np.add,
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_reduce_scatter``: element-wise reduction of every
        slot's send buffer; slot ``i`` keeps reduced block ``i``."""
        self._check_buffers(ctx, send)
        self._check_buffers(ctx, recv)
        comms = self._ensure_channels(group, ctx)
        self._record("reduce_scatter", group, ctx, send)
        selected = self._selected(
            comms, "reduce_scatter", "reduce_scatter", send[0].nbytes, group, ctx, algo
        )
        with self._obs.span(
            "ompccl.reduce_scatter", rank=ctx.rank, group=group.group_id, algo=selected
        ):
            self._trace_rendezvous("reduce_scatter", group, ctx)
            self._run_on_slots(
                ctx,
                comms,
                lambda comm, i: comm.reduce_scatter(
                    send[i], recv[i], dtype=dtype, op=op, algo=algo
                ),
            )

    def alltoall(
        self,
        group: DiompGroup,
        ctx: RankContext,
        send: Sequence[MemRef],
        recv: Sequence[MemRef],
        algo: Optional[str] = None,
    ) -> None:
        """``ompx_alltoall``: pairwise block exchange over the group."""
        self._check_buffers(ctx, send)
        self._check_buffers(ctx, recv)
        comms = self._ensure_channels(group, ctx)
        self._record("alltoall", group, ctx, send)
        selected = self._selected(
            comms, "alltoall", "alltoall", send[0].nbytes, group, ctx, algo
        )
        with self._obs.span(
            "ompccl.alltoall", rank=ctx.rank, group=group.group_id, algo=selected
        ):
            self._trace_rendezvous("alltoall", group, ctx)
            self._run_on_slots(
                ctx,
                comms,
                lambda comm, i: comm.alltoall(send[i], recv[i], algo=algo),
            )
