"""Asymmetric allocation: second-level pointers and the remote cache.

When ranks allocate *different* sizes (§3.2, Fig. 2 "as-1"), the
offset-translation invariant breaks.  DiOMP's solution:

* a **second-level pointer** — a 32-byte wrapper allocated
  *symmetrically* (so its offset translates) whose value is the device
  address of the rank's actual, non-uniform data block;
* remote access becomes two steps — fetch the remote wrapper's value,
  then move the data — so DiOMP adds a **remote pointer cache**
  mapping ``(buffer, target_rank) → data address``.  Because
  allocation and deallocation are centrally managed, a cache entry is
  valid for the lifetime of the allocation; the runtime drops entries
  at free time.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from repro.cluster.memref import MemRef
from repro.device.memory import DeviceBuffer
from repro.util.errors import AllocationError

#: size of the uniformly allocated pointer wrapper (paper: 32 bytes)
SECOND_LEVEL_POINTER_BYTES = 32

_handle_ids = itertools.count()


class AsymmetricBuffer:
    """One rank's handle on an asymmetric global allocation."""

    def __init__(
        self,
        rank: int,
        device_num: int,
        slot_offset: int,
        sizes: Tuple[int, ...],
        data: Optional[DeviceBuffer],
        data_addresses: Tuple[int, ...],
        handle_id: Optional[int] = None,
    ) -> None:
        self.rank = rank
        self.device_num = device_num
        #: symmetric offset of the 32-byte second-level pointer slot
        self.slot_offset = slot_offset
        #: per-rank data sizes (asymmetric by definition)
        self.sizes = sizes
        #: this rank's data block (None when it allocated zero bytes)
        self.data = data
        #: per-rank device addresses of the data blocks (exchanged at
        #: allocation time by the runtime's central bookkeeping)
        self.data_addresses = data_addresses
        self.handle_id = next(_handle_ids) if handle_id is None else handle_id
        self.freed = False

    @property
    def size(self) -> int:
        """This rank's own data size."""
        return self.sizes[self.rank]

    def size_on(self, rank: int) -> int:
        if not 0 <= rank < len(self.sizes):
            raise AllocationError(f"rank {rank} out of range")
        return self.sizes[rank]

    def memref(self, offset: int = 0, nbytes: int = -1) -> MemRef:
        if self.freed:
            raise AllocationError("use of a freed AsymmetricBuffer")
        if self.data is None:
            raise AllocationError(f"rank {self.rank} allocated zero bytes here")
        if nbytes < 0:
            nbytes = self.size - offset
        return MemRef.device(self.data, offset=offset, nbytes=nbytes)

    def typed(self, dtype, count: int = -1, offset: int = 0):
        if self.freed:
            raise AllocationError("use of a freed AsymmetricBuffer")
        if self.data is None:
            raise AllocationError(f"rank {self.rank} allocated zero bytes here")
        return self.data.as_array(dtype, count=count, offset=offset)


class RemotePointerCache:
    """Per-rank cache of fetched second-level pointer values."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: Dict[Tuple[int, int], int] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, handle_id: int, target_rank: int) -> Optional[int]:
        """Cached remote data address, or None (miss counted)."""
        if not self.enabled:
            self.misses += 1
            return None
        addr = self._entries.get((handle_id, target_rank))
        if addr is None:
            self.misses += 1
        else:
            self.hits += 1
        return addr

    def insert(self, handle_id: int, target_rank: int, address: int) -> None:
        if self.enabled:
            self._entries[(handle_id, target_rank)] = address

    def invalidate_handle(self, handle_id: int) -> int:
        """Drop every entry of one allocation (called at central free);
        returns the number of entries removed."""
        stale = [k for k in self._entries if k[0] == handle_id]
        for k in stale:
            del self._entries[k]
        return len(stale)

    def __len__(self) -> int:
        return len(self._entries)
