"""``#pragma ompx`` prototype front-end (§3.3).

The paper prototypes directives such as::

    #pragma ompx target device_bcast(var, group)

alongside the equivalent C API.  This module is the Python analogue of
that compiler extension: it parses the pragma text and dispatches to
the runtime, so examples can be written in either style (pragma string
or direct ``ompx_*`` call), mirroring the paper's dual interface.

Supported directives::

    #pragma ompx target device_bcast(var[, group][, root=R])
    #pragma ompx target device_allreduce(send, recv[, group])
    #pragma ompx target device_reduce(send, recv[, group][, root=R])
    #pragma ompx barrier[(group)]
    #pragma ompx fence

``var``/``group`` names are looked up in the caller-provided
environment dict (the "symbol table").
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple

from repro.util.errors import ConfigurationError

_PRAGMA_RE = re.compile(
    r"^\s*#\s*pragma\s+ompx\s+(?P<body>.+?)\s*$", re.IGNORECASE
)
_CALL_RE = re.compile(r"^(?P<name>\w+)\s*(?:\((?P<args>.*)\))?$")

_KNOWN = {
    "device_bcast": (1, 3),
    "device_allreduce": (2, 3),
    "device_reduce": (2, 4),
    "barrier": (0, 1),
    "fence": (0, 0),
}


@dataclasses.dataclass(frozen=True)
class Pragma:
    """A parsed ``#pragma ompx`` directive."""

    directive: str
    args: Tuple[str, ...]
    kwargs: Dict[str, str]


def parse_pragma(text: str) -> Pragma:
    """Parse a pragma line; raises on anything malformed or unknown."""
    m = _PRAGMA_RE.match(text)
    if m is None:
        raise ConfigurationError(f"not an ompx pragma: {text!r}")
    body = m.group("body").strip()
    # The `target` keyword is optional noise for collective directives.
    if body.lower().startswith("target "):
        body = body[len("target ") :].strip()
    call = _CALL_RE.match(body)
    if call is None:
        raise ConfigurationError(f"malformed ompx directive: {body!r}")
    name = call.group("name").lower()
    if name not in _KNOWN:
        raise ConfigurationError(
            f"unknown ompx directive {name!r}; supported: {sorted(_KNOWN)}"
        )
    args: List[str] = []
    kwargs: Dict[str, str] = {}
    raw = call.group("args")
    if raw:
        for piece in raw.split(","):
            piece = piece.strip()
            if not piece:
                raise ConfigurationError(f"empty argument in {text!r}")
            if "=" in piece:
                k, v = (s.strip() for s in piece.split("=", 1))
                kwargs[k] = v
            else:
                if kwargs:
                    raise ConfigurationError(
                        f"positional argument after keyword in {text!r}"
                    )
                args.append(piece)
    lo, hi = _KNOWN[name]
    if not lo <= len(args) + len(kwargs) <= hi:
        raise ConfigurationError(
            f"{name} takes {lo}..{hi} arguments, got {len(args) + len(kwargs)}"
        )
    return Pragma(name, tuple(args), kwargs)


def execute_pragma(diomp, text: str, env: Optional[Dict[str, object]] = None) -> None:
    """Parse and run a pragma against a rank's ``Diomp`` handle.

    ``env`` maps variable names appearing in the pragma to runtime
    objects (GlobalBuffers, MemRefs, groups).
    """
    env = env or {}
    pragma = parse_pragma(text)

    def resolve(name: str):
        try:
            return env[name]
        except KeyError:
            raise ConfigurationError(
                f"pragma references {name!r} which is not in the environment"
            ) from None

    def group_arg(index: int):
        if len(pragma.args) > index:
            return resolve(pragma.args[index])
        if "group" in pragma.kwargs:
            return resolve(pragma.kwargs["group"])
        return None

    def root_arg() -> int:
        return int(pragma.kwargs.get("root", 0))

    if pragma.directive == "device_bcast":
        diomp.bcast(resolve(pragma.args[0]), root_rank=root_arg(), group=group_arg(1))
    elif pragma.directive == "device_allreduce":
        diomp.allreduce(
            resolve(pragma.args[0]), resolve(pragma.args[1]), group=group_arg(2)
        )
    elif pragma.directive == "device_reduce":
        diomp.reduce(
            resolve(pragma.args[0]),
            resolve(pragma.args[1]),
            root_rank=root_arg(),
            group=group_arg(2),
        )
    elif pragma.directive == "barrier":
        diomp.barrier(group=group_arg(0))
    elif pragma.directive == "fence":
        diomp.fence()
    else:  # pragma: no cover - parse_pragma guards
        raise ConfigurationError(f"unhandled directive {pragma.directive}")
