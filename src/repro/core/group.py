"""DiOMP Groups: ``ompx_group_t`` (§3.3).

A group partitions the communication domain, like an MPI communicator
but decoupled from rank boundaries: membership is over *ranks with
their bound devices*, collectives run per device slot, and groups can
be **merged** and **split** at runtime to follow program phases.

Group handles are lightweight and value-comparable; the heavyweight
state (OMPCCL communicators, barriers) is owned by the runtime and
keyed by group id.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.hardware.topology import DeviceId
from repro.util.errors import ConfigurationError

#: process-wide fallback allocator, used only when no runtime supplies
#: an id.  Runtime-created groups draw from the runtime's own counter
#: (``DiompRuntime.next_group_id``) so that two identical sequential
#: runs in one process produce identical group ids and stable
#: ``group=`` metric/trace labels.
_group_ids = itertools.count()


@dataclasses.dataclass(frozen=True)
class DiompGroup:
    """An immutable group handle (``ompx_group_t``)."""

    group_id: int
    #: member world ranks, in group order
    ranks: Tuple[int, ...]
    #: member devices, rank-major (each rank contributes its bound GPUs)
    devices: Tuple[DeviceId, ...]

    @staticmethod
    def create(
        ranks: Sequence[int],
        devices_by_rank: dict,
        group_id: Optional[int] = None,
    ) -> "DiompGroup":
        """Build a group over ``ranks`` (runtime-internal constructor).

        ``group_id`` should come from the owning runtime's allocator;
        the module-global counter is only a fallback for standalone
        construction outside any runtime.
        """
        ranks = tuple(ranks)
        if not ranks:
            raise ConfigurationError("a group needs at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ConfigurationError(f"duplicate ranks in group: {ranks}")
        devices: List[DeviceId] = []
        for r in ranks:
            devices.extend(devices_by_rank[r])
        if group_id is None:
            group_id = next(_group_ids)
        return DiompGroup(group_id, ranks, tuple(devices))

    @property
    def size(self) -> int:
        """Number of member ranks."""
        return len(self.ranks)

    @property
    def device_count(self) -> int:
        """Number of member devices (collective slots)."""
        return len(self.devices)

    def contains(self, world_rank: int) -> bool:
        return world_rank in self.ranks

    def group_rank(self, world_rank: int) -> int:
        """The group-relative index of a world rank."""
        try:
            return self.ranks.index(world_rank)
        except ValueError:
            raise ConfigurationError(
                f"rank {world_rank} is not a member of group {self.group_id}"
            ) from None

    def device_slots(self, world_rank: int) -> List[int]:
        """The collective slots owned by one member rank.

        Devices are rank-major and every rank contributes the same
        number of bound devices (a world invariant), so a rank's slots
        form a contiguous span.
        """
        per_rank = len(self.devices) // len(self.ranks)
        gr = self.group_rank(world_rank)
        return list(range(gr * per_rank, (gr + 1) * per_rank))

    def merged_with(
        self,
        other: "DiompGroup",
        devices_by_rank: dict,
        group_id: Optional[int] = None,
    ) -> "DiompGroup":
        """Union of two groups (this group's order first), as the
        paper's *group recomposition*."""
        combined = list(self.ranks) + [r for r in other.ranks if r not in self.ranks]
        return DiompGroup.create(combined, devices_by_rank, group_id=group_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiompGroup {self.group_id} ranks={self.ranks}>"
