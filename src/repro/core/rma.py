"""One-sided RMA with hierarchical path selection (§3.2).

``ompx_put``/``ompx_get`` resolve the remote address (symmetric offset
translation, or the second-level-pointer protocol for asymmetric
buffers) and then pick the best physical path:

* **inter-node** → the conduit (GASNet-EX or GPI-2) one-sided path,
* **intra-node, different process** → IPC: the first access to a
  peer's segment opens an IPC memory handle (one-time driver cost,
  then cached), after which transfers ride the direct NVLink/xGMI or
  PCIe path — never the NIC,
* **intra-node, same process, different device** → GPUDirect P2P:
  peer access is enabled once per ordered pair, then direct transfers,
* **same device** → a stream-ordered local copy.

Device-side operations occupy streams from the rank's
:class:`~repro.core.streams.StreamPool` (lazy/reused/bounded);
``ompx_fence`` drains network events and streams together through the
pool's hybrid polling loop.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple, Union

import numpy as np

from repro.cluster.memref import MemRef
from repro.core.asymmetric import AsymmetricBuffer
from repro.core.globalmem import GlobalBuffer, HostGlobalBuffer
from repro.faults import RetryingOp
from repro.hardware.topology import PathKind
from repro.util.errors import CommunicationError, FatalError

#: put/get targets: symmetric device buffer, host buffer, asymmetric
#: buffer, or raw address
RmaTarget = Union[GlobalBuffer, HostGlobalBuffer, AsymmetricBuffer, int]


class _FutureEvent:
    """Adapts a sim Future to the conduit event interface."""

    def __init__(self, future) -> None:
        self._future = future

    def test(self) -> bool:
        return self._future.poll()

    def wait(self):
        return self._future.wait()

    @property
    def failure(self):
        """Terminal error of a failed operation (None if OK/pending)."""
        return getattr(self._future, "error", None)

    @property
    def eta(self):
        """Expected completion time (hybrid-polling hint)."""
        return getattr(self._future, "eta", None)


class DiompRma:
    """Per-rank RMA engine."""

    def __init__(self, diomp) -> None:
        self.diomp = diomp
        #: outstanding (target_rank, event) pairs drained by fences
        self._outstanding: List[Tuple[int, object]] = []
        #: (target_rank, device_num) pairs whose segment IPC handle is open
        self._ipc_opened: Set[Tuple[int, int]] = set()
        #: ordered device pairs with peer access enabled by this rank
        self._peer_enabled: Set[Tuple[object, object]] = set()
        # -- metrics (one registry per world; see repro.obs) --
        self._obs = diomp.runtime.obs
        registry = self._obs.registry
        self._m_ops = registry.counter(
            "rma.ops", "one-sided operations by op/path/rank"
        )
        self._m_bytes = registry.counter(
            "rma.bytes", "one-sided payload bytes by op/path/rank"
        )
        self._m_ptr = registry.counter(
            "rma.pointer_cache",
            "second-level pointer lookups by event (hit|miss)",
        )
        self._m_ipc = registry.counter(
            "rma.ipc_open", "one-time IPC handle opens by rank"
        )
        self._m_fence = registry.histogram(
            "rma.fence_poll_iterations",
            "hybrid-poll iterations per ompx_fence",
            bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128),
        )

    # -- legacy statistics (read-through onto the metrics registry) ---------------

    @property
    def puts(self) -> int:
        """``ompx_put`` count (0 when observability is disabled)."""
        return int(self._m_ops.value(op="put", rank=self.diomp.rank))

    @property
    def gets(self) -> int:
        """``ompx_get`` count (0 when observability is disabled)."""
        return int(self._m_ops.value(op="get", rank=self.diomp.rank))

    @property
    def ipc_opens(self) -> int:
        """One-time IPC handle opens performed by this rank."""
        return int(self._m_ipc.value(rank=self.diomp.rank))

    @property
    def pointer_fetches(self) -> int:
        """Remote second-level-pointer fetches (= pointer-cache misses)."""
        return int(self._m_ptr.value(event="miss", rank=self.diomp.rank))

    # -- address resolution -------------------------------------------------------

    def _remote_address(
        self,
        target_rank: int,
        target: RmaTarget,
        target_offset: int,
        nbytes: int,
        device_num: int,
    ) -> int:
        runtime = self.diomp.runtime
        if isinstance(target, int):
            return target + target_offset
        if isinstance(target, GlobalBuffer):
            if target.freed:
                raise CommunicationError("RMA on a freed GlobalBuffer")
            if target_offset + nbytes > target.size:
                raise CommunicationError(
                    f"RMA range [{target_offset}, +{nbytes}) exceeds buffer "
                    f"of {target.size} bytes"
                )
            seg = runtime.segment_of(target_rank, target.device_num)
            return seg.address_of(target.offset + target_offset)
        if isinstance(target, HostGlobalBuffer):
            if target.freed:
                raise CommunicationError("RMA on a freed HostGlobalBuffer")
            if target_offset + nbytes > target.size:
                raise CommunicationError(
                    f"RMA range [{target_offset}, +{nbytes}) exceeds host "
                    f"buffer of {target.size} bytes"
                )
            hseg = runtime.host_segment_of(target_rank)
            return hseg.address_of(target.offset + target_offset)
        if isinstance(target, AsymmetricBuffer):
            return self._resolve_asymmetric(target, target_rank, target_offset, nbytes)
        raise CommunicationError(f"unsupported RMA target {type(target).__name__}")

    def _resolve_asymmetric(
        self, target: AsymmetricBuffer, target_rank: int, offset: int, nbytes: int
    ) -> int:
        """The two-step protocol: dereference the remote second-level
        pointer (cached), then address the data block."""
        if target.freed:
            raise CommunicationError("RMA on a freed AsymmetricBuffer")
        if offset + nbytes > target.size_on(target_rank):
            raise CommunicationError(
                f"RMA range [{offset}, +{nbytes}) exceeds rank {target_rank}'s "
                f"asymmetric block of {target.size_on(target_rank)} bytes"
            )
        if target.data_addresses[target_rank] == 0:
            # A NULL second-level pointer: the target rank allocated
            # zero bytes, so there is no data block to address.  (The
            # size check above already rejects nbytes > 0 here, but a
            # zero-byte RMA must not fabricate address 0 + offset.)
            raise CommunicationError(
                f"rank {target_rank} holds no data block for asymmetric "
                f"buffer {target.handle_id} (second-level pointer is NULL)"
            )
        cache = self.diomp.pointer_cache
        data_addr = cache.lookup(target.handle_id, target_rank)
        if data_addr is None:
            # First step: fetch the 8-byte pointer value from the
            # symmetric slot on the target (a real network get).
            runtime = self.diomp.runtime
            seg = runtime.segment_of(target_rank, target.device_num)
            slot_addr = seg.address_of(target.slot_offset)
            scratch = np.zeros(8, dtype=np.uint8)
            event = self.diomp.client.get_nb(
                target_rank, slot_addr, MemRef.host(self.diomp.ctx.node, scratch)
            )
            event.wait()
            self._m_ptr.inc(event="miss", rank=self.diomp.rank)
            data_addr = target.data_addresses[target_rank]
            cache.insert(target.handle_id, target_rank, data_addr)
        else:
            self._m_ptr.inc(event="hit", rank=self.diomp.rank)
        return data_addr + offset

    # -- data movement -----------------------------------------------------------

    def put(
        self,
        target_rank: int,
        target: RmaTarget,
        src: MemRef,
        target_offset: int = 0,
        device_num: int = 0,
    ) -> None:
        """``ompx_put``: one-sided, completes at the next fence."""
        with self._obs.span("rma.put", rank=self.diomp.rank, target=target_rank):
            self._rma("put", target_rank, target, src, target_offset, device_num)

    def get(
        self,
        target_rank: int,
        target: RmaTarget,
        dst: MemRef,
        target_offset: int = 0,
        device_num: int = 0,
    ) -> None:
        """``ompx_get``: one-sided fetch, completes at the next fence."""
        with self._obs.span("rma.get", rank=self.diomp.rank, target=target_rank):
            self._rma("get", target_rank, target, dst, target_offset, device_num)

    def _rma(
        self,
        op: str,
        target_rank: int,
        target: RmaTarget,
        local: MemRef,
        target_offset: int,
        device_num: int,
    ) -> None:
        diomp = self.diomp
        world = diomp.runtime.world
        if not 0 <= target_rank < world.nranks:
            raise CommunicationError(f"rank {target_rank} out of range")
        addr = self._remote_address(
            target_rank, target, target_offset, local.nbytes, device_num
        )
        if (
            world.same_node(diomp.rank, target_rank)
            and diomp.runtime.params.hierarchical_paths
            and not isinstance(target, HostGlobalBuffer)
        ):
            self._intra_node(op, target_rank, addr, local, device_num)
        else:
            client = diomp.client
            if op == "put":
                event = client.put_nb(target_rank, addr, local)
            else:
                event = client.get_nb(target_rank, addr, local)
            self._outstanding.append((target_rank, event))
            self._count_op(op, "conduit", local.nbytes)

    def _count_op(self, op: str, path: str, nbytes: int) -> None:
        rank = self.diomp.rank
        self._m_ops.inc(op=op, path=path, rank=rank)
        self._m_bytes.inc(nbytes, op=op, path=path, rank=rank)

    def _intra_node(
        self, op: str, target_rank: int, addr: int, local: MemRef, device_num: int
    ) -> None:
        """IPC / GPUDirect-P2P path: direct device-to-device transfer
        that never touches the NIC."""
        diomp = self.diomp
        world = diomp.runtime.world
        remote_seg = diomp.runtime.segment_of(target_rank, device_num)
        buffer, buf_offset = remote_seg.device.memory.resolve(addr)
        if buf_offset + local.nbytes > buffer.size:
            raise CommunicationError("intra-node RMA range spans allocations")
        remote = MemRef.device(buffer, offset=buf_offset, nbytes=local.nbytes)
        params = diomp.runtime.params
        if target_rank != diomp.rank:
            # Cross-process on one node: IPC handle, opened once.
            path_kind = "ipc"
            key = (target_rank, device_num)
            if key not in self._ipc_opened:
                diomp.ctx.sim.sleep(world.platform.node.gpu.ipc_open_overhead)
                self._ipc_opened.add(key)
                self._m_ipc.inc(rank=diomp.rank)
        else:
            # Same process, another bound device: GPUDirect peer access.
            src_dev = local.endpoint
            dst_dev = remote.endpoint
            path_kind = "local" if src_dev == dst_dev else "p2p"
            if src_dev != dst_dev:
                pair = (src_dev, dst_dev)
                if pair not in self._peer_enabled:
                    path = world.topology.path(src_dev, dst_dev)
                    if path.kind is PathKind.PEER_DIRECT and path.peer_capable:
                        world.peer_access.ensure_enabled(src_dev, dst_dev)
                        diomp.ctx.sim.sleep(params.peer_enable_overhead)
                    self._peer_enabled.add(pair)
        self._count_op(op, path_kind, local.nbytes)
        if op == "put":
            src_ref, dst_ref = local, remote
        else:
            src_ref, dst_ref = remote, local

        def issue():
            return world.fabric.transfer(
                src_ref.endpoint,
                dst_ref.endpoint,
                local.nbytes,
                operation=op,
                gpu_memory=True,
                on_complete=lambda: dst_ref.copy_from(src_ref),
                extra_latency=params.ipc_op_overhead,
                fault_site="rma.intra",
                initiator=diomp.rank,
            )

        plan = getattr(world, "fault_plan", None)
        if plan is None:
            fut = issue()
        else:
            fut = RetryingOp(
                world.sim,
                issue,
                diomp.runtime.conduit.params.retry,
                obs=diomp.runtime.obs,
                labels=dict(conduit="intra", op=op, rank=diomp.rank),
                description=f"intra-{op}-r{diomp.rank}",
            ).future
        # The transfer occupies a pooled stream (the device DMA engine)
        # for its unloaded duration; the fence drains both.
        pool = diomp.pool_for_endpoint(local.endpoint)
        stream = pool.acquire()
        est = world.fabric.unloaded_time(
            src_ref.endpoint, dst_ref.endpoint, local.nbytes, operation=op
        )
        stream.enqueue(est, label=f"diomp-{op}")
        self._outstanding.append((target_rank, _FutureEvent(fut)))

    # -- completion --------------------------------------------------------------

    def fence(self, device_num: int = 0, group=None) -> int:
        """``ompx_fence``: complete outstanding RMA issued by this rank.

        With a :class:`~repro.core.group.DiompGroup`, only operations
        targeting the group's members are completed (the paper's
        group-scoped fence, §3.3); operations to other ranks remain in
        flight.  Returns the number of hybrid-poll iterations.

        All of this rank's stream pools are drained, not just
        ``device_num``'s: intra-node RMA enqueues onto the pool of the
        local endpoint's device, which may differ from the fence's
        device.  Operations whose recovery was exhausted surface here
        as :class:`~repro.util.errors.FatalError`.
        """
        if group is None:
            events, self._outstanding = self._outstanding, []
        else:
            events = [
                (rank, ev)
                for rank, ev in self._outstanding
                if group.contains(rank)
            ]
            self._outstanding = [
                (rank, ev)
                for rank, ev in self._outstanding
                if not group.contains(rank)
            ]
        pool = self.diomp.stream_pool(device_num)
        with self._obs.span("rma.fence", rank=self.diomp.rank, events=len(events)):
            iterations = pool.hybrid_fence([ev for _rank, ev in events])
            for other_num, other_pool in self.diomp.stream_pools().items():
                if other_num != device_num:
                    iterations += other_pool.hybrid_fence([])
        failed = [
            (rank, ev.failure)
            for rank, ev in events
            if getattr(ev, "failure", None) is not None
        ]
        if failed:
            rank, first = failed[0]
            error = FatalError(
                f"ompx_fence: {len(failed)} unrecoverable operation(s); "
                f"first targeted rank {rank}: {first}"
            )
            error.__cause__ = first
            raise error
        self._m_fence.observe(iterations, rank=self.diomp.rank)
        return iterations

    @property
    def pending_ops(self) -> int:
        self._outstanding = [
            (rank, ev) for rank, ev in self._outstanding if not ev.test()
        ]
        return len(self._outstanding)
