"""One-sided RMA with hierarchical path selection (§3.2).

``ompx_put``/``ompx_get`` resolve the remote address (symmetric offset
translation, or the second-level-pointer protocol for asymmetric
buffers) and then pick the best physical path:

* **inter-node** → the conduit (GASNet-EX or GPI-2) one-sided path,
* **intra-node, different process** → IPC: the first access to a
  peer's segment opens an IPC memory handle (one-time driver cost,
  then cached), after which transfers ride the direct NVLink/xGMI or
  PCIe path — never the NIC,
* **intra-node, same process, different device** → GPUDirect P2P:
  peer access is enabled once per ordered pair, then direct transfers,
* **same device** → a stream-ordered local copy.

Device-side operations occupy streams from the rank's
:class:`~repro.core.streams.StreamPool` (lazy/reused/bounded);
``ompx_fence`` drains network events and streams together through the
pool's hybrid polling loop.

**Small-message aggregation** (off by default, see
:class:`RmaAggregationParams`): conduit-path operations at or below an
eligibility size are parked in per-(rank, op, endpoint) coalescing
queues instead of being issued immediately, and flushed as *one*
conduit message per destination — at the next ``ompx_fence``, or
earlier when a queue hits its op-count or byte threshold.  This
amortizes the per-operation conduit cost (initiator software + NIC
message overhead) that dominates the small-message regime of the
paper's Fig. 3/4 sweeps, mirroring GASNet-EX access-region batching.
One-sided semantics are unchanged: nothing completes before the fence
either way, and batch data still lands atomically at the simulated
completion time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple, Union

import numpy as np

from repro.cluster.memref import MemRef
from repro.core.asymmetric import AsymmetricBuffer
from repro.core.globalmem import GlobalBuffer, HostGlobalBuffer
from repro.faults import RetryingOp
from repro.hardware.topology import PathKind
from repro.util.errors import CommunicationError, ConfigurationError, FatalError
from repro.util.units import KiB

#: put/get targets: symmetric device buffer, host buffer, asymmetric
#: buffer, or raw address
RmaTarget = Union[GlobalBuffer, HostGlobalBuffer, AsymmetricBuffer, int]


@dataclasses.dataclass(frozen=True)
class RmaAggregationParams:
    """Small-message aggregation knobs (ablation switch, off by
    default so baseline runs stay bit-identical)."""

    enabled: bool = False
    #: operations of at most this many bytes are coalesced; larger
    #: ones always take the direct conduit path
    eligible_bytes: int = 4 * KiB
    #: a queue is flushed early once it holds this many operations
    max_batch_ops: int = 64
    #: ... or once its payload reaches this many bytes
    max_batch_bytes: int = 64 * KiB

    def __post_init__(self) -> None:
        if self.eligible_bytes < 0:
            raise ConfigurationError("eligible_bytes must be non-negative")
        if self.max_batch_ops < 1:
            raise ConfigurationError("max_batch_ops must be >= 1")
        if self.max_batch_bytes < 1:
            raise ConfigurationError("max_batch_bytes must be >= 1")


@dataclasses.dataclass
class _PendingOp:
    """One issued-but-unfenced operation (conduit or intra-node)."""

    target_rank: int
    event: object
    #: pooled stream the operation occupies (intra-node path only) —
    #: lets a group-scoped fence drain exactly the streams its member
    #: operations ride on
    stream: Optional[object] = None

    @property
    def failure(self):
        return getattr(self.event, "failure", None)


@dataclasses.dataclass
class _AggBatch:
    """One destination's coalescing queue between fences."""

    target_rank: int
    op: str
    ops: List[Tuple[int, MemRef]] = dataclasses.field(default_factory=list)
    nbytes: int = 0


class _FutureEvent:
    """Adapts a sim Future to the conduit event interface."""

    def __init__(self, future) -> None:
        self._future = future

    def test(self) -> bool:
        return self._future.poll()

    def wait(self):
        return self._future.wait()

    @property
    def failure(self):
        """Terminal error of a failed operation (None if OK/pending)."""
        return getattr(self._future, "error", None)

    @property
    def eta(self):
        """Expected completion time (hybrid-polling hint)."""
        return getattr(self._future, "eta", None)


class DiompRma:
    """Per-rank RMA engine."""

    def __init__(self, diomp) -> None:
        self.diomp = diomp
        #: outstanding operations drained by fences
        self._outstanding: List[_PendingOp] = []
        #: small-message coalescing queues, keyed by
        #: (target_rank, op, remote space, local endpoint)
        self._agg_queues: Dict[Tuple, _AggBatch] = {}
        self._agg = diomp.runtime.params.aggregation
        #: (target_rank, device_num) pairs whose segment IPC handle is open
        self._ipc_opened: Set[Tuple[int, int]] = set()
        #: ordered device pairs with peer access enabled by this rank
        self._peer_enabled: Set[Tuple[object, object]] = set()
        # -- metrics (one registry per world; see repro.obs) --
        self._obs = diomp.runtime.obs
        registry = self._obs.registry
        self._m_agg_batches = registry.counter(
            "rma.agg.batches", "flushed aggregation batches by op/reason/rank"
        )
        self._m_agg_ops = registry.counter(
            "rma.agg.batched_ops", "operations coalesced into batches by op/rank"
        )
        self._m_agg_bytes = registry.counter(
            "rma.agg.bytes", "payload bytes moved in batches by op/rank"
        )
        self._m_ops = registry.counter(
            "rma.ops", "one-sided operations by op/path/rank"
        )
        self._m_bytes = registry.counter(
            "rma.bytes", "one-sided payload bytes by op/path/rank"
        )
        self._m_ptr = registry.counter(
            "rma.pointer_cache",
            "second-level pointer lookups by event (hit|miss)",
        )
        self._m_ipc = registry.counter(
            "rma.ipc_open", "one-time IPC handle opens by rank"
        )
        self._m_fence = registry.histogram(
            "rma.fence_poll_iterations",
            "hybrid-poll iterations per ompx_fence",
            bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128),
        )

    # -- legacy statistics (read-through onto the metrics registry) ---------------

    @property
    def puts(self) -> int:
        """``ompx_put`` count (0 when observability is disabled)."""
        return int(self._m_ops.value(op="put", rank=self.diomp.rank))

    @property
    def gets(self) -> int:
        """``ompx_get`` count (0 when observability is disabled)."""
        return int(self._m_ops.value(op="get", rank=self.diomp.rank))

    @property
    def ipc_opens(self) -> int:
        """One-time IPC handle opens performed by this rank."""
        return int(self._m_ipc.value(rank=self.diomp.rank))

    @property
    def pointer_fetches(self) -> int:
        """Remote second-level-pointer fetches (= pointer-cache misses)."""
        return int(self._m_ptr.value(event="miss", rank=self.diomp.rank))

    # -- address resolution -------------------------------------------------------

    def _remote_address(
        self,
        target_rank: int,
        target: RmaTarget,
        target_offset: int,
        nbytes: int,
        device_num: int,
    ) -> int:
        runtime = self.diomp.runtime
        if isinstance(target, int):
            return target + target_offset
        if isinstance(target, GlobalBuffer):
            if target.freed:
                raise CommunicationError("RMA on a freed GlobalBuffer")
            if target_offset + nbytes > target.size:
                raise CommunicationError(
                    f"RMA range [{target_offset}, +{nbytes}) exceeds buffer "
                    f"of {target.size} bytes"
                )
            seg = runtime.segment_of(target_rank, target.device_num)
            return seg.address_of(target.offset + target_offset)
        if isinstance(target, HostGlobalBuffer):
            if target.freed:
                raise CommunicationError("RMA on a freed HostGlobalBuffer")
            if target_offset + nbytes > target.size:
                raise CommunicationError(
                    f"RMA range [{target_offset}, +{nbytes}) exceeds host "
                    f"buffer of {target.size} bytes"
                )
            hseg = runtime.host_segment_of(target_rank)
            return hseg.address_of(target.offset + target_offset)
        if isinstance(target, AsymmetricBuffer):
            return self._resolve_asymmetric(target, target_rank, target_offset, nbytes)
        raise CommunicationError(f"unsupported RMA target {type(target).__name__}")

    def _resolve_asymmetric(
        self, target: AsymmetricBuffer, target_rank: int, offset: int, nbytes: int
    ) -> int:
        """The two-step protocol: dereference the remote second-level
        pointer (cached), then address the data block."""
        if target.freed:
            raise CommunicationError("RMA on a freed AsymmetricBuffer")
        if offset + nbytes > target.size_on(target_rank):
            raise CommunicationError(
                f"RMA range [{offset}, +{nbytes}) exceeds rank {target_rank}'s "
                f"asymmetric block of {target.size_on(target_rank)} bytes"
            )
        if target.data_addresses[target_rank] == 0:
            # A NULL second-level pointer: the target rank allocated
            # zero bytes, so there is no data block to address.  (The
            # size check above already rejects nbytes > 0 here, but a
            # zero-byte RMA must not fabricate address 0 + offset.)
            raise CommunicationError(
                f"rank {target_rank} holds no data block for asymmetric "
                f"buffer {target.handle_id} (second-level pointer is NULL)"
            )
        cache = self.diomp.pointer_cache
        data_addr = cache.lookup(target.handle_id, target_rank)
        if data_addr is None:
            # First step: fetch the 8-byte pointer value from the
            # symmetric slot on the target (a real, blocking get,
            # routed and counted like any other get).
            self._pointer_fetch(target, target_rank)
            self._m_ptr.inc(event="miss", rank=self.diomp.rank)
            data_addr = target.data_addresses[target_rank]
            cache.insert(target.handle_id, target_rank, data_addr)
        else:
            self._m_ptr.inc(event="hit", rank=self.diomp.rank)
        return data_addr + offset

    def _pointer_fetch(self, target: AsymmetricBuffer, target_rank: int) -> None:
        """One blocking 8-byte get of the remote second-level pointer.

        The fetch honours hierarchical path selection (a same-node
        target is read over IPC / a local D2H copy, not the NIC) and
        shows up in ``rma.ops``/``rma.bytes`` like any other get.  It
        stays off the stream pool: the issuing rank blocks on it, so
        there is no asynchronous device occupancy to account.
        """
        diomp = self.diomp
        runtime = diomp.runtime
        world = runtime.world
        seg = runtime.segment_of(target_rank, target.device_num)
        slot_addr = seg.address_of(target.slot_offset)
        scratch = np.zeros(8, dtype=np.uint8)
        local = MemRef.host(diomp.ctx.node, scratch)
        if (
            world.same_node(diomp.rank, target_rank)
            and runtime.params.hierarchical_paths
        ):
            remote = seg.conduit_segment.resolve(slot_addr, 8)
            if target_rank != diomp.rank:
                path_kind = "ipc"
                key = (target_rank, target.device_num)
                if key not in self._ipc_opened:
                    diomp.ctx.sim.sleep(world.platform.node.gpu.ipc_open_overhead)
                    self._ipc_opened.add(key)
                    self._m_ipc.inc(rank=diomp.rank)
            else:
                path_kind = "local"
            params = runtime.params

            def issue():
                return world.fabric.transfer(
                    remote.endpoint,
                    local.endpoint,
                    8,
                    operation="get",
                    gpu_memory=True,
                    on_complete=lambda: local.copy_from(remote),
                    extra_latency=params.ipc_op_overhead,
                    fault_site="rma.intra",
                    initiator=diomp.rank,
                )

            plan = getattr(world, "fault_plan", None)
            if plan is None:
                fut = issue()
            else:
                fut = RetryingOp(
                    world.sim,
                    issue,
                    runtime.conduit.params.retry,
                    obs=runtime.obs,
                    labels=dict(conduit="intra", op="get", rank=diomp.rank),
                    description=f"ptr-fetch-r{diomp.rank}",
                ).future
            self._count_op("get", path_kind, 8)
            fut.wait()
        else:
            self._count_op("get", "conduit", 8)
            diomp.client.get_nb(target_rank, slot_addr, local).wait()

    # -- data movement -----------------------------------------------------------

    def put(
        self,
        target_rank: int,
        target: RmaTarget,
        src: MemRef,
        target_offset: int = 0,
        device_num: int = 0,
    ) -> None:
        """``ompx_put``: one-sided, completes at the next fence."""
        with self._obs.span("rma.put", rank=self.diomp.rank, target=target_rank):
            self._rma("put", target_rank, target, src, target_offset, device_num)

    def get(
        self,
        target_rank: int,
        target: RmaTarget,
        dst: MemRef,
        target_offset: int = 0,
        device_num: int = 0,
    ) -> None:
        """``ompx_get``: one-sided fetch, completes at the next fence."""
        with self._obs.span("rma.get", rank=self.diomp.rank, target=target_rank):
            self._rma("get", target_rank, target, dst, target_offset, device_num)

    def _rma(
        self,
        op: str,
        target_rank: int,
        target: RmaTarget,
        local: MemRef,
        target_offset: int,
        device_num: int,
    ) -> None:
        diomp = self.diomp
        world = diomp.runtime.world
        if not 0 <= target_rank < world.nranks:
            raise CommunicationError(f"rank {target_rank} out of range")
        addr = self._remote_address(
            target_rank, target, target_offset, local.nbytes, device_num
        )
        if (
            world.same_node(diomp.rank, target_rank)
            and diomp.runtime.params.hierarchical_paths
            and not isinstance(target, HostGlobalBuffer)
        ):
            self._intra_node(op, target_rank, addr, local, device_num)
        elif (
            self._agg.enabled
            and not isinstance(target, int)
            and local.nbytes <= self._agg.eligible_bytes
        ):
            # Raw-address targets bypass aggregation: without the
            # buffer handle the remote memory space is unknown, so the
            # queue key cannot guarantee endpoint uniformity.
            self._enqueue_aggregated(op, target_rank, target, addr, local, device_num)
            self._count_op(op, "conduit", local.nbytes)
        else:
            client = diomp.client
            if op == "put":
                event = client.put_nb(target_rank, addr, local)
            else:
                event = client.get_nb(target_rank, addr, local)
            self._outstanding.append(_PendingOp(target_rank, event))
            self._count_op(op, "conduit", local.nbytes)

    def _count_op(self, op: str, path: str, nbytes: int) -> None:
        rank = self.diomp.rank
        self._m_ops.inc(op=op, path=path, rank=rank)
        self._m_bytes.inc(nbytes, op=op, path=path, rank=rank)

    # -- small-message aggregation -------------------------------------------------

    def _enqueue_aggregated(
        self,
        op: str,
        target_rank: int,
        target: RmaTarget,
        addr: int,
        local: MemRef,
        device_num: int,
    ) -> None:
        """Park one small conduit operation in its coalescing queue."""
        space = (
            ("host",)
            if isinstance(target, HostGlobalBuffer)
            else ("dev", device_num)
        )
        key = (target_rank, op, space, local.endpoint)
        batch = self._agg_queues.get(key)
        if batch is None:
            batch = self._agg_queues[key] = _AggBatch(target_rank, op)
        batch.ops.append((addr, local))
        batch.nbytes += local.nbytes
        if len(batch.ops) >= self._agg.max_batch_ops:
            self._flush_batch(key, reason="count")
        elif batch.nbytes >= self._agg.max_batch_bytes:
            self._flush_batch(key, reason="size")

    def _flush_batch(self, key: Tuple, reason: str) -> None:
        """Issue one queue as a single conduit message."""
        batch = self._agg_queues.pop(key)
        client = self.diomp.client
        if batch.op == "put":
            event = client.put_batch_nb(batch.target_rank, batch.ops)
        else:
            event = client.get_batch_nb(batch.target_rank, batch.ops)
        self._outstanding.append(_PendingOp(batch.target_rank, event))
        rank = self.diomp.rank
        self._m_agg_batches.inc(op=batch.op, reason=reason, rank=rank)
        self._m_agg_ops.inc(len(batch.ops), op=batch.op, rank=rank)
        self._m_agg_bytes.inc(batch.nbytes, op=batch.op, rank=rank)

    def _flush_aggregation(self, group=None, reason: str = "fence") -> None:
        """Flush coalescing queues (all, or only those a group fence
        is responsible for)."""
        keys = [
            key
            for key, batch in self._agg_queues.items()
            if group is None or group.contains(batch.target_rank)
        ]
        for key in keys:
            self._flush_batch(key, reason=reason)

    def _intra_node(
        self, op: str, target_rank: int, addr: int, local: MemRef, device_num: int
    ) -> None:
        """IPC / GPUDirect-P2P path: direct device-to-device transfer
        that never touches the NIC."""
        diomp = self.diomp
        world = diomp.runtime.world
        remote_seg = diomp.runtime.segment_of(target_rank, device_num)
        buffer, buf_offset = remote_seg.device.memory.resolve(addr)
        if buf_offset + local.nbytes > buffer.size:
            raise CommunicationError("intra-node RMA range spans allocations")
        remote = MemRef.device(buffer, offset=buf_offset, nbytes=local.nbytes)
        params = diomp.runtime.params
        if target_rank != diomp.rank:
            # Cross-process on one node: IPC handle, opened once.
            path_kind = "ipc"
            key = (target_rank, device_num)
            if key not in self._ipc_opened:
                diomp.ctx.sim.sleep(world.platform.node.gpu.ipc_open_overhead)
                self._ipc_opened.add(key)
                self._m_ipc.inc(rank=diomp.rank)
        else:
            # Same process, another bound device: GPUDirect peer access.
            src_dev = local.endpoint
            dst_dev = remote.endpoint
            path_kind = "local" if src_dev == dst_dev else "p2p"
            if src_dev != dst_dev:
                pair = (src_dev, dst_dev)
                if pair not in self._peer_enabled:
                    path = world.topology.path(src_dev, dst_dev)
                    if path.kind is PathKind.PEER_DIRECT and path.peer_capable:
                        world.peer_access.ensure_enabled(src_dev, dst_dev)
                        diomp.ctx.sim.sleep(params.peer_enable_overhead)
                    self._peer_enabled.add(pair)
        self._count_op(op, path_kind, local.nbytes)
        if op == "put":
            src_ref, dst_ref = local, remote
        else:
            src_ref, dst_ref = remote, local

        # Causal context: the open rma.put/rma.get span issuing this
        # transfer.  Delivery lands on the target rank's track (IPC /
        # P2P arrows in the trace); the stream completion links back
        # onto our own track so a draining fence observes it.
        obs = self._obs
        ctx = obs.capture(track=f"rank{diomp.rank}")
        sim = world.sim

        def apply_copy() -> None:
            dst_ref.copy_from(src_ref)
            if ctx is not None and target_rank != diomp.rank:
                obs.deliver(f"rma.deliver.{path_kind}", ctx, sim.now, rank=target_rank)

        def stream_done() -> None:
            if ctx is not None:
                obs.deliver("stream.complete", ctx, sim.now, rank=diomp.rank)

        def issue():
            return world.fabric.transfer(
                src_ref.endpoint,
                dst_ref.endpoint,
                local.nbytes,
                operation=op,
                gpu_memory=True,
                on_complete=apply_copy,
                extra_latency=params.ipc_op_overhead,
                fault_site="rma.intra",
                initiator=diomp.rank,
            )

        # The transfer occupies a pooled stream (the device DMA engine)
        # for its unloaded duration; the fence drains both.
        pool = diomp.pool_for_endpoint(local.endpoint)
        est = world.fabric.unloaded_time(
            src_ref.endpoint, dst_ref.endpoint, local.nbytes, operation=op
        )
        plan = getattr(world, "fault_plan", None)
        if plan is None:
            fut = issue()
            stream = pool.acquire()
            stream.enqueue(est, on_complete=stream_done, label=f"diomp-{op}")
        else:
            # Under fault injection the stream is acquired up front and
            # occupied from inside the issue closure: every retry
            # attempt redoes the DMA work, so each re-issue must
            # re-enqueue the stream, not just the first.
            stream = pool.acquire()

            def issue_attempt():
                stream.enqueue(est, on_complete=stream_done, label=f"diomp-{op}")
                return issue()

            fut = RetryingOp(
                world.sim,
                issue_attempt,
                diomp.runtime.conduit.params.retry,
                obs=diomp.runtime.obs,
                labels=dict(conduit="intra", op=op, rank=diomp.rank),
                description=f"intra-{op}-r{diomp.rank}",
            ).future
        self._outstanding.append(
            _PendingOp(target_rank, _FutureEvent(fut), stream)
        )

    # -- completion --------------------------------------------------------------

    def fence(self, device_num: int = 0, group=None) -> int:
        """``ompx_fence``: complete outstanding RMA issued by this rank.

        With a :class:`~repro.core.group.DiompGroup`, only operations
        targeting the group's members are completed (the paper's
        group-scoped fence, §3.3); operations to other ranks remain in
        flight — including their device streams, which keep executing.
        Returns the number of hybrid-poll iterations.

        A full fence drains all of this rank's stream pools, not just
        ``device_num``'s: intra-node RMA enqueues onto the pool of the
        local endpoint's device, which may differ from the fence's
        device.  A group-scoped fence instead drains exactly the
        streams its member operations ride on.  Aggregation queues for
        fenced destinations are flushed first, so a fence always
        completes every operation issued before it.  Operations whose
        recovery was exhausted surface here as
        :class:`~repro.util.errors.FatalError`.
        """
        self._flush_aggregation(group=group)
        if group is None:
            pending, self._outstanding = self._outstanding, []
        else:
            pending = [
                p for p in self._outstanding if group.contains(p.target_rank)
            ]
            self._outstanding = [
                p for p in self._outstanding if not group.contains(p.target_rank)
            ]
        events = [p.event for p in pending]
        pool = self.diomp.stream_pool(device_num)
        with self._obs.span("rma.fence", rank=self.diomp.rank, events=len(events)):
            if group is None:
                iterations = pool.hybrid_fence(events)
                for other_num, other_pool in self.diomp.stream_pools().items():
                    if other_num != device_num:
                        iterations += other_pool.hybrid_fence([])
            else:
                # Drain only the streams attributable to member-targeted
                # operations; non-member work stays in flight.
                streams: List[object] = []
                for p in pending:
                    if p.stream is not None and p.stream not in streams:
                        streams.append(p.stream)
                iterations = pool.hybrid_fence(events, streams=streams)
        failed = [
            (p.target_rank, p.failure) for p in pending if p.failure is not None
        ]
        if failed:
            rank, first = failed[0]
            error = FatalError(
                f"ompx_fence: {len(failed)} unrecoverable operation(s); "
                f"first targeted rank {rank}: {first}"
            )
            error.__cause__ = first
            raise error
        self._m_fence.observe(iterations, rank=self.diomp.rank)
        return iterations

    @property
    def pending_ops(self) -> int:
        """Operations not yet completed (issued + queued-for-aggregation).

        Successfully completed operations are pruned, but *failed* ones
        are retained: a conduit event's ``test()`` also returns True on
        terminal failure, and polling this property must never swallow
        an error the next fence is obligated to raise.
        """
        self._outstanding = [
            p
            for p in self._outstanding
            if not p.event.test() or p.failure is not None
        ]
        queued = sum(len(b.ops) for b in self._agg_queues.values())
        return len(self._outstanding) + queued
