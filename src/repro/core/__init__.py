"""DiOMP-Offloading: the paper's primary contribution.

The runtime that unifies PGAS global memory, OpenMP target offloading
and collective communication over heterogeneous clusters:

* :mod:`repro.core.allocator` — the linear-heap and buddy allocators
  that subdivide the global segment (§3.1),
* :mod:`repro.core.globalmem` — per-device global segments, symmetric
  offset-translated allocation, base-address exchange (§3.2),
* :mod:`repro.core.asymmetric` — second-level pointers and the remote
  pointer cache for asymmetric allocation (§3.2, Fig. 2),
* :mod:`repro.core.streams` — the stream pool: lazy allocation, reuse,
  bounded concurrency with partial synchronization, hybrid event
  polling (§3.2),
* :mod:`repro.core.rma` — ``ompx_put``/``ompx_get``/``ompx_fence``
  with topology-aware hierarchical path selection (§3.2),
* :mod:`repro.core.group` — DiOMP Groups (``ompx_group_t``): create,
  merge, split; group-scoped synchronization (§3.3),
* :mod:`repro.core.ompccl` — OMPCCL, the portable collective layer
  over NCCL/RCCL (§3.3),
* :mod:`repro.core.plugin` — the libomptarget plugin that redirects
  OpenMP device allocations into the global segment (Fig. 1b),
* :mod:`repro.core.runtime` — :class:`DiompRuntime` /
  :class:`Diomp`: the user-facing ``ompx_*`` API,
* :mod:`repro.core.directives` — the ``#pragma ompx`` prototype
  front-end.
"""

from repro.core.allocator import LinearAllocator, BuddyAllocator
from repro.core.globalmem import (
    GlobalSegment,
    GlobalBuffer,
    HostSegment,
    HostGlobalBuffer,
)
from repro.core.asymmetric import AsymmetricBuffer, RemotePointerCache
from repro.core.rma import RmaAggregationParams
from repro.core.streams import StreamPool, StreamPoolParams
from repro.core.group import DiompGroup
from repro.core.ompccl import Ompccl
from repro.core.plugin import DiompPlugin
from repro.core.runtime import DiompRuntime, Diomp, DiompParams
from repro.core.directives import parse_pragma, execute_pragma

__all__ = [
    "LinearAllocator",
    "BuddyAllocator",
    "GlobalSegment",
    "GlobalBuffer",
    "HostSegment",
    "HostGlobalBuffer",
    "AsymmetricBuffer",
    "RemotePointerCache",
    "RmaAggregationParams",
    "StreamPool",
    "StreamPoolParams",
    "DiompGroup",
    "Ompccl",
    "DiompPlugin",
    "DiompRuntime",
    "Diomp",
    "DiompParams",
    "parse_pragma",
    "execute_pragma",
]
