"""Stream pool: the paper's event/stream management strategy (§3.2).

Four techniques, all ablatable via :class:`StreamPoolParams`:

* **lazy allocation** — streams are created on demand, never
  preallocated,
* **stream reuse** — idle pool streams are reused instead of created,
* **bounded concurrency** — at most ``max_active_streams`` streams are
  live; hitting the bound triggers *partial synchronization*: only the
  completed/soonest half is synchronized and released while the rest
  keep running, sustaining pipeline throughput,
* **hybrid event polling** — ``ompx_fence`` polls network events and
  device stream completions in one coordinated loop so neither side
  stalls the other.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.device.driver import Device
from repro.device.stream import Stream
from repro.obs import Observability
from repro.sim import Simulator, Tracer
from repro.util.errors import ConfigurationError
from repro.util.units import US


@dataclasses.dataclass(frozen=True)
class StreamPoolParams:
    """Tuning knobs (the paper's MAX_ACTIVE_STREAMS policy)."""

    max_active_streams: int = 8
    #: fraction of busy streams released by one partial synchronization
    partial_sync_fraction: float = 0.5
    #: ablation switch: disable reuse (always create up to the bound)
    reuse: bool = True
    #: cost of one poll iteration in the hybrid fence loop
    poll_cost: float = 0.05 * US

    def __post_init__(self) -> None:
        if self.max_active_streams <= 0:
            raise ConfigurationError("max_active_streams must be positive")
        if not (0.0 < self.partial_sync_fraction <= 1.0):
            raise ConfigurationError("partial_sync_fraction must be in (0, 1]")


class StreamPool:
    """Per-device pool of communication streams."""

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        params: Optional[StreamPoolParams] = None,
        tracer: Optional[Tracer] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.params = params or StreamPoolParams()
        self.tracer = tracer
        self._idle: List[Stream] = []
        self._busy: List[Stream] = []
        # -- statistics inspected by tests and the ablation bench --
        self.created = 0
        self.reused = 0
        self.destroyed = 0
        self.partial_syncs = 0
        self.poll_iterations = 0
        # -- metrics (see repro.obs; high-water mark via the gauge) --
        self._obs = obs
        if obs is not None:
            self._g_active = obs.gauge(
                "streams.active", "live streams per device pool"
            )
            self._h_partial = obs.histogram(
                "streams.partial_sync_busy",
                "busy streams at each partial synchronization",
                bounds=(1, 2, 4, 8, 16, 32, 64),
            )
            self._h_fence = obs.histogram(
                "streams.fence_iterations",
                "poll iterations per hybrid fence",
                bounds=(0, 1, 2, 4, 8, 16, 32, 64, 128),
            )
        else:
            self._g_active = self._h_partial = self._h_fence = None

    def _track_active(self) -> None:
        if self._g_active is not None:
            self._g_active.set(self.active_count, device=self.device.device_id)

    @property
    def active_count(self) -> int:
        return len(self._idle) + len(self._busy)

    def acquire(self) -> Stream:
        """Get a stream for one operation.

        Order of preference: reuse an idle stream → lazily create below
        the bound → partial-synchronize and reuse.

        With ``reuse=False`` (the ablation) no stream is ever handed
        out twice: drained streams are destroyed and a fresh one is
        created in their place, including on the post-partial-sync
        path — so ``reused`` stays 0 and the ablation really measures
        creation cost.
        """
        self._reclaim_idle()
        if not self.params.reuse:
            self._destroy_idle()
        if self.params.reuse and self._idle:
            stream = self._idle.pop()
            self._busy.append(stream)
            self.reused += 1
            return stream
        if self.active_count < self.params.max_active_streams:
            return self._create_busy()
        self._partial_synchronize()
        if not self._idle:  # pragma: no cover - partial sync always frees ≥1
            raise ConfigurationError("partial synchronization freed no stream")
        if not self.params.reuse:
            self._destroy_idle()
            return self._create_busy()
        stream = self._idle.pop()
        self._busy.append(stream)
        self.reused += 1
        return stream

    def _create_busy(self) -> Stream:
        stream = self.device.create_stream()
        self._busy.append(stream)
        self.created += 1
        self._track_active()
        if self.tracer is not None:
            self.tracer.emit("streams", "create", device=str(self.device.device_id))
        return stream

    def _destroy_idle(self) -> None:
        """Reuse-disabled teardown: a drained stream is never handed
        out again."""
        for stream in self._idle:
            stream.destroy()
            self.destroyed += 1
        if self._idle:
            self._idle = []
            self._track_active()
            if self.tracer is not None:
                self.tracer.emit(
                    "streams", "destroy", device=str(self.device.device_id)
                )

    def _reclaim_idle(self) -> None:
        """Move streams whose work has drained back to the idle list."""
        still_busy = []
        for stream in self._busy:
            (self._idle if stream.idle else still_busy).append(stream)
        self._busy = still_busy

    def _partial_synchronize(self) -> None:
        """The MAX_ACTIVE_STREAMS policy: synchronize and release only
        a fraction of the busy streams — the ones completing soonest —
        while the others keep executing."""
        self.partial_syncs += 1
        if self._h_partial is not None:
            self._h_partial.observe(len(self._busy), device=self.device.device_id)
        if self.tracer is not None:
            self.tracer.emit("streams", "partial_sync", busy=len(self._busy))
        self._busy.sort(key=lambda s: s.available_at)
        count = max(1, int(len(self._busy) * self.params.partial_sync_fraction))
        to_sync, self._busy = self._busy[:count], self._busy[count:]
        for stream in to_sync:
            stream.synchronize()
            self._idle.append(stream)
        self._track_active()

    def synchronize_all(self) -> None:
        """Drain every stream (full fence)."""
        self._reclaim_idle()
        for stream in self._busy:
            stream.synchronize()
        self._idle.extend(self._busy)
        self._busy = []
        if not self.params.reuse:
            self._destroy_idle()
        self._track_active()

    # -- hybrid event polling ---------------------------------------------------

    def hybrid_fence(
        self,
        network_events: Sequence[object],
        streams: Optional[Sequence[Stream]] = None,
    ) -> int:
        """The unified polling loop of ``ompx_fence``.

        Polls GASNet/GPI-2 events (objects with ``test()``/``wait()``)
        and device stream completions together: each pass tests
        everything that is still pending, then blocks on the *earliest*
        remaining completion rather than serializing on issue order.
        Network events advertise their expected completion via an
        ``eta`` attribute (set by the fabric); events without one sort
        last, which degrades to issue order when no ETA is known.
        Returns the number of poll iterations (traced for the ablation
        bench).

        With ``streams`` given, only those streams are drained — the
        group-scoped fence: operations parked on *other* streams (to
        ranks outside the group) keep executing.  The streams need not
        belong to this pool; synchronizing a foreign pool's stream is
        safe, its owner reclaims it at the next acquire.  ``streams``
        of ``None`` (the default) drains this whole pool.
        """

        def event_eta(event: object) -> float:
            eta = getattr(event, "eta", None)
            return float("inf") if eta is None else eta

        scoped = streams is not None
        if scoped:
            targets: List[Stream] = []
            for stream in streams:
                if stream not in targets:
                    targets.append(stream)

        def busy_streams() -> List[Stream]:
            if scoped:
                return [s for s in targets if not s.idle]
            self._reclaim_idle()
            return self._busy

        pending_events = [e for e in network_events if not e.test()]
        pending_streams = busy_streams()
        iterations = 0
        while pending_events or pending_streams:
            iterations += 1
            self.poll_iterations += 1
            self.sim.sleep(self.params.poll_cost)
            pending_events = [e for e in pending_events if not e.test()]
            pending_streams = busy_streams()
            if not pending_events and not pending_streams:
                break
            # Block on whichever side completes first.
            next_stream = min(
                pending_streams, key=lambda s: s.available_at, default=None
            )
            next_event = min(pending_events, key=event_eta, default=None)
            if next_stream is not None and (
                next_event is None
                or next_stream.available_at <= event_eta(next_event)
                or next_stream.available_at <= self.sim.now
            ):
                next_stream.synchronize()
            elif next_event is not None:
                next_event.wait()
                pending_events.remove(next_event)
        self._track_active()
        if self._h_fence is not None:
            self._h_fence.observe(iterations, device=self.device.device_id)
        if self.tracer is not None:
            self.tracer.emit("streams", "hybrid_fence", iterations=iterations)
        return iterations
