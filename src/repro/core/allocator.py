"""Heap allocators for the global segment.

The paper (§3.1) builds the PGAS space "using strategies such as a
linear heap allocator or a buddy allocator".  Both are provided and
are interchangeable behind the same two-method interface
(``alloc(size, align) -> offset``, ``free(offset)``); the ablation
bench compares their fragmentation/throughput trade-off.

Offsets are relative to the segment base, which is what makes
symmetric allocation work: identical allocator state on every rank
yields identical offsets for the same collective call sequence.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Tuple

from repro.util.errors import AllocationError


def _check_align(align: int) -> None:
    if align <= 0 or (align & (align - 1)) != 0:
        raise AllocationError(f"alignment must be a positive power of two, got {align}")


class LinearAllocator:
    """First-fit free-list allocator with coalescing.

    Free blocks are kept sorted by offset; allocation scans for the
    first block that fits (after alignment), frees coalesce with both
    neighbours.  Deterministic: same call sequence → same offsets.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: sorted list of (offset, size) free blocks
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        #: live allocations: offset -> size
        self._live: Dict[int, int] = {}
        self.allocated_bytes = 0

    def alloc(self, size: int, align: int = 16) -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns offset."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        _check_align(align)
        for i, (off, block) in enumerate(self._free):
            aligned = (off + align - 1) & ~(align - 1)
            pad = aligned - off
            if pad + size > block:
                continue
            # Split the free block into [pad][allocation][tail].
            del self._free[i]
            if pad:
                self._free.insert(i, (off, pad))
                i += 1
            tail = block - pad - size
            if tail:
                self._free.insert(i, (aligned + size, tail))
            self._live[aligned] = size
            self.allocated_bytes += size
            return aligned
        raise AllocationError(
            f"linear allocator exhausted: {size} bytes requested, "
            f"{self.free_bytes} free (fragmented into {len(self._free)} blocks)"
        )

    def free(self, offset: int) -> None:
        """Release the allocation at ``offset``; coalesces neighbours."""
        size = self._live.pop(offset, None)
        if size is None:
            raise AllocationError(f"free of unknown offset {offset}")
        self.allocated_bytes -= size
        idx = bisect.bisect_left(self._free, (offset, 0))
        # Merge with the following block.
        if idx < len(self._free) and self._free[idx][0] == offset + size:
            size += self._free[idx][1]
            del self._free[idx]
        # Merge with the preceding block.
        if idx > 0:
            prev_off, prev_size = self._free[idx - 1]
            if prev_off + prev_size == offset:
                offset, size = prev_off, prev_size + size
                del self._free[idx - 1]
                idx -= 1
        self._free.insert(idx, (offset, size))

    @property
    def free_bytes(self) -> int:
        return sum(size for _off, size in self._free)

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    @property
    def fragmentation(self) -> float:
        """1 − (largest free block / total free); 0 when unfragmented."""
        if not self._free:
            return 0.0
        total = self.free_bytes
        if total == 0:
            return 0.0
        return 1.0 - max(size for _o, size in self._free) / total


class BuddyAllocator:
    """Classic binary buddy allocator.

    Capacity is rounded down to a power of two; requests round up to a
    power of two (≥ ``min_block``).  Frees coalesce buddies eagerly.
    Internal fragmentation is the price for O(log n) operations and
    bounded external fragmentation.
    """

    def __init__(self, capacity: int, min_block: int = 256) -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        _check_align(min_block)
        self.order_max = capacity.bit_length() - 1
        self.capacity = 1 << self.order_max
        self.min_order = min_block.bit_length() - 1
        if self.min_order > self.order_max:
            raise AllocationError("min_block exceeds capacity")
        #: free lists per order: order -> sorted offsets
        self._free: Dict[int, List[int]] = {o: [] for o in range(self.min_order, self.order_max + 1)}
        self._free[self.order_max].append(0)
        self._live: Dict[int, int] = {}  # offset -> order
        self.allocated_bytes = 0

    def _order_for(self, size: int) -> int:
        order = max(self.min_order, (size - 1).bit_length())
        if order > self.order_max:
            raise AllocationError(
                f"request of {size} bytes exceeds buddy capacity {self.capacity}"
            )
        return order

    def alloc(self, size: int, align: int = 16) -> int:
        """Allocate; buddy blocks are naturally size-aligned, which
        satisfies any ``align`` ≤ block size."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        _check_align(align)
        order = self._order_for(max(size, align))
        # Find the smallest order with a free block.
        o = order
        while o <= self.order_max and not self._free[o]:
            o += 1
        if o > self.order_max:
            raise AllocationError(
                f"buddy allocator exhausted for {size}-byte request "
                f"(order {order})"
            )
        offset = self._free[o].pop(0)
        # Split down to the target order.
        while o > order:
            o -= 1
            buddy = offset + (1 << o)
            bisect.insort(self._free[o], buddy)
        self._live[offset] = order
        self.allocated_bytes += 1 << order
        return offset

    def free(self, offset: int) -> None:
        order = self._live.pop(offset, None)
        if order is None:
            raise AllocationError(f"free of unknown offset {offset}")
        self.allocated_bytes -= 1 << order
        # Coalesce with the buddy while possible.
        while order < self.order_max:
            buddy = offset ^ (1 << order)
            idx = bisect.bisect_left(self._free[order], buddy)
            if idx >= len(self._free[order]) or self._free[order][idx] != buddy:
                break
            del self._free[order][idx]
            offset = min(offset, buddy)
            order += 1
        bisect.insort(self._free[order], offset)

    @property
    def free_bytes(self) -> int:
        return sum((1 << o) * len(blocks) for o, blocks in self._free.items())

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def block_size(self, offset: int) -> int:
        """The rounded block size backing a live allocation."""
        try:
            return 1 << self._live[offset]
        except KeyError:
            raise AllocationError(f"unknown offset {offset}") from None


def make_allocator(kind: str, capacity: int) -> object:
    """Factory used by the runtime config ("linear" | "buddy")."""
    if kind == "linear":
        return LinearAllocator(capacity)
    if kind == "buddy":
        return BuddyAllocator(capacity)
    raise AllocationError(f"unknown allocator kind {kind!r}")
