"""The DiOMP libomptarget plugin (the Fig. 1b interception).

Installed into a rank's :class:`~repro.omptarget.OmpTargetRuntime`,
this plugin redirects every OpenMP-mapped device allocation into the
rank's global segment.  Because the segment was registered with the
conduit exactly once at startup, the mapped data is *born* remotely
accessible: zero additional registrations, one shared mapping table —
versus the baseline where libomptarget allocates privately and MPI
must register each communicated buffer into a window separately.
"""

from __future__ import annotations


from repro.device.driver import Device
from repro.device.memory import DeviceBuffer
from repro.util.errors import AllocationError


class DiompPlugin:
    """Allocator hook backed by the rank's global segments."""

    def __init__(self, diomp) -> None:
        self.diomp = diomp
        self.allocs = 0
        self.frees = 0
        #: registrations *avoided* relative to the MPI+X baseline
        #: (each mapped-and-communicated buffer would need one)
        self.registrations_avoided = 0

    def _segment_for(self, device: Device):
        for device_num, dev in enumerate(self.diomp.ctx.devices):
            if dev is device:
                return self.diomp.segment(device_num)
        raise AllocationError(
            f"device {device.device_id} is not bound to rank {self.diomp.rank}"
        )

    def data_alloc(self, device: Device, size: int, virtual: bool, label: str) -> DeviceBuffer:
        segment = self._segment_for(device)
        buf = segment.alloc_local(size, virtual=virtual, label=label or "omp-map")
        self.allocs += 1
        self.registrations_avoided += 1
        return buf

    def data_delete(self, device: Device, buffer: DeviceBuffer) -> None:
        segment = self._segment_for(device)
        segment.free_local(buffer)
        self.frees += 1
