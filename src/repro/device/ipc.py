"""CUDA/HIP-style IPC memory handles.

When two ranks (processes) share a node, the paper's runtime moves
data over ``cudaIpcGetMemHandle`` / ``cudaIpcOpenMemHandle`` instead of
the network.  We model the semantics: a handle names an exporting
allocation; opening it in another rank yields a reference to the same
underlying buffer, with a one-time open cost per (handle, opener) pair
— subsequent opens hit the runtime's handle cache, exactly the
behaviour DiOMP's unified runtime exploits.
"""

from __future__ import annotations

import itertools
from typing import Dict, Tuple

from repro.device.memory import DeviceBuffer
from repro.util.errors import DeviceError

_handle_ids = itertools.count()


class IpcHandle:
    """An exportable name for a device allocation."""

    def __init__(self, buffer: DeviceBuffer, exporter_rank: int) -> None:
        if buffer.freed:
            raise DeviceError("cannot export a freed buffer")
        self.handle_id = next(_handle_ids)
        self.buffer = buffer
        self.exporter_rank = exporter_rank
        #: ranks that have already opened this handle (open cost paid once)
        self._opened_by: Dict[int, DeviceBuffer] = {}

    def open(self, opener_rank: int) -> Tuple[DeviceBuffer, bool]:
        """Open the handle in ``opener_rank``.

        Returns ``(buffer, first_open)`` where ``first_open`` tells the
        caller whether to charge the driver's IPC-open overhead.
        Opening in the exporting rank is an error (use the buffer
        directly), mirroring CUDA's restriction.
        """
        if opener_rank == self.exporter_rank:
            raise DeviceError("IPC handle opened in the exporting rank")
        if self.buffer.freed:
            raise DeviceError("IPC handle references a freed buffer")
        first = opener_rank not in self._opened_by
        if first:
            self._opened_by[opener_rank] = self.buffer
        return self.buffer, first

    def close(self, opener_rank: int) -> None:
        """Close a previously opened mapping."""
        try:
            del self._opened_by[opener_rank]
        except KeyError:
            raise DeviceError(
                f"rank {opener_rank} closed an IPC handle it never opened"
            ) from None

    @property
    def open_count(self) -> int:
        return len(self._opened_by)
