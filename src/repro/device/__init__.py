"""Simulated GPU device runtime (the CUDA Driver / HSA substitute).

The paper's runtime sits on the CUDA Driver API / HSA runtime; here we
provide the equivalent pieces in simulation:

* :mod:`repro.device.memory` — per-device byte-addressed memory with
  *real* (numpy-backed) or *virtual* (size-only) allocations,
* :mod:`repro.device.stream` — in-order streams and device events in
  virtual time,
* :mod:`repro.device.kernel` — kernel launches with calibrated cost
  models and optional host implementations for correctness checks,
* :mod:`repro.device.ipc` — CUDA/HIP-style IPC memory handles,
* :mod:`repro.device.driver` — the per-device facade
  (:class:`Device`) plus peer-access management
  (``cudaDeviceEnablePeerAccess`` equivalent).

The distinction between real and virtual backing is what lets the same
application code run small problems with verified numerics and
paper-scale problems with pure time modelling.
"""

from repro.device.memory import DeviceBuffer, DeviceMemorySpace
from repro.device.stream import Stream, DeviceEvent
from repro.device.kernel import KernelCost, Kernel, gemm_cost, stencil_cost
from repro.device.ipc import IpcHandle
from repro.device.driver import Device, PeerAccessManager

__all__ = [
    "DeviceBuffer",
    "DeviceMemorySpace",
    "Stream",
    "DeviceEvent",
    "KernelCost",
    "Kernel",
    "gemm_cost",
    "stencil_cost",
    "IpcHandle",
    "Device",
    "PeerAccessManager",
]
