"""Per-device memory: allocations, addressing, and byte access.

Each simulated device owns a flat byte-addressed space.  Allocations
are contiguous address ranges; an allocation is either *real* (backed
by a numpy ``uint8`` array, supporting reads/writes and typed views)
or *virtual* (size-only, for paper-scale problems where only timing
matters).  Addresses are plain integers, so pointer arithmetic — the
bread and butter of the PGAS offset translation in §3.2 — works
exactly as in the paper.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.util.errors import AllocationError, DeviceError


class DeviceBuffer:
    """One device allocation: an address range, optionally numpy-backed.

    ``address`` is the device virtual address of the first byte.  Typed
    access goes through :meth:`as_array`; raw access through
    :meth:`read`/:meth:`write`.  Virtual buffers reject data access but
    participate fully in timing and address arithmetic.
    """

    def __init__(
        self,
        space: "DeviceMemorySpace",
        address: int,
        size: int,
        backing: Optional[np.ndarray],
        label: str = "",
    ) -> None:
        self.space = space
        self.address = address
        self.size = size
        self._backing = backing
        self.label = label
        self.freed = False
        #: True for allocations placed inside a reservation
        self.placed = False

    @property
    def is_virtual(self) -> bool:
        return self._backing is None

    @property
    def end(self) -> int:
        """One past the last byte (exclusive upper address)."""
        return self.address + self.size

    def _check_access(self, offset: int, nbytes: int) -> None:
        if self.freed:
            raise DeviceError(f"use-after-free on buffer {self.label or self.address:#x}")
        if offset < 0 or nbytes < 0 or offset + nbytes > self.size:
            raise DeviceError(
                f"out-of-bounds access: offset={offset} nbytes={nbytes} "
                f"size={self.size}"
            )

    def _require_real(self) -> np.ndarray:
        if self._backing is None:
            raise DeviceError(
                f"data access to virtual buffer {self.label or hex(self.address)}; "
                "virtual allocations carry timing only"
            )
        return self._backing

    def read(self, offset: int, nbytes: int) -> bytes:
        """Copy ``nbytes`` out of the buffer (host-side observer)."""
        self._check_access(offset, nbytes)
        return self._require_real()[offset : offset + nbytes].tobytes()

    def write(self, offset: int, data: bytes) -> None:
        """Copy raw bytes into the buffer."""
        self._check_access(offset, len(data))
        self._require_real()[offset : offset + len(data)] = np.frombuffer(
            data, dtype=np.uint8
        )

    def as_array(self, dtype: np.dtype, count: int = -1, offset: int = 0) -> np.ndarray:
        """A typed numpy *view* over (part of) the buffer — no copy.

        With ``count=-1`` the view spans to the end of the buffer.
        """
        dtype = np.dtype(dtype)
        if count == -1:
            count = (self.size - offset) // dtype.itemsize
        nbytes = count * dtype.itemsize
        self._check_access(offset, nbytes)
        raw = self._require_real()[offset : offset + nbytes]
        return raw.view(dtype)

    def copy_within_device(
        self, dst_offset: int, src: "DeviceBuffer", src_offset: int, nbytes: int
    ) -> None:
        """Device-local copy (the data plane of a D2D memcpy).

        Both buffers must live on the same device space.  Virtual
        endpoints make the copy a timing-only no-op — mixed real/virtual
        is rejected to avoid silently dropping data.
        """
        if src.space is not self.space:
            raise DeviceError("copy_within_device across devices; use the fabric")
        self._check_access(dst_offset, nbytes)
        src._check_access(src_offset, nbytes)
        if self.is_virtual and src.is_virtual:
            return
        if self.is_virtual or src.is_virtual:
            raise DeviceError("cannot copy between real and virtual buffers")
        dst_view = self._backing[dst_offset : dst_offset + nbytes]
        src_view = src._backing[src_offset : src_offset + nbytes]
        dst_view[:] = src_view

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "virtual" if self.is_virtual else "real"
        return f"<DeviceBuffer {self.label or ''}@{self.address:#x} size={self.size} {kind}>"


class DeviceMemorySpace:
    """The flat address space of one device.

    A bump allocator hands out non-overlapping address ranges (the
    richer heap/buddy allocators of DiOMP live in :mod:`repro.core` and
    subdivide a single big segment allocated here, exactly as the paper
    subdivides the GASNet segment).  Freed ranges are not recycled at
    this level — device memory capacity accounting uses live bytes, so
    long-running simulations do not leak capacity.
    """

    #: device allocations start at this address (mimics a driver VA base)
    BASE_ADDRESS = 0x7F00_0000_0000
    #: spacing between device address spaces (unified-VA style: every
    #: device's range is globally distinct, as under CUDA UVA)
    _SPACE_STRIDE = 1 << 40
    _next_space_index = 0

    def __init__(self, capacity: int, device_name: str = "dev") -> None:
        if capacity <= 0:
            raise AllocationError(f"capacity must be positive, got {capacity}")
        if capacity >= self._SPACE_STRIDE:
            raise AllocationError("capacity exceeds the per-device VA stride")
        self.capacity = capacity
        self.device_name = device_name
        #: DeviceId, bound by the owning Device (None for bare spaces)
        self.device_id = None
        self.live_bytes = 0
        self._next_address = (
            self.BASE_ADDRESS
            + DeviceMemorySpace._next_space_index * self._SPACE_STRIDE
        )
        DeviceMemorySpace._next_space_index += 1
        #: sorted allocation start addresses, for address->buffer lookup
        self._starts: List[int] = []
        self._by_start: Dict[int, DeviceBuffer] = {}
        #: reserved (base, size) ranges for placed allocations
        self._reservations: List[Tuple[int, int]] = []

    def allocate(
        self, size: int, virtual: bool = False, label: str = ""
    ) -> DeviceBuffer:
        """Allocate ``size`` bytes; raises when over device capacity."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if self.live_bytes + size > self.capacity:
            raise AllocationError(
                f"{self.device_name}: out of device memory "
                f"(live={self.live_bytes}, requested={size}, capacity={self.capacity})"
            )
        backing = None if virtual else np.zeros(size, dtype=np.uint8)
        buf = DeviceBuffer(self, self._next_address, size, backing, label=label)
        bisect.insort(self._starts, buf.address)
        self._by_start[buf.address] = buf
        self._next_address += size
        self.live_bytes += size
        return buf

    def reserve(self, size: int) -> int:
        """Reserve an address range without backing it (``cuMemAddressReserve``).

        The range's capacity is charged immediately — this is how the
        DiOMP global segment carves out device memory up front.
        Allocations are later *placed* inside the reservation with
        :meth:`allocate_at` and do not charge capacity again.
        """
        if size <= 0:
            raise AllocationError(f"reservation size must be positive, got {size}")
        if self.live_bytes + size > self.capacity:
            raise AllocationError(
                f"{self.device_name}: cannot reserve {size} bytes "
                f"(live={self.live_bytes}, capacity={self.capacity})"
            )
        base = self._next_address
        self._next_address += size
        self.live_bytes += size
        self._reservations.append((base, size))
        return base

    def _in_reservation(self, address: int, size: int) -> bool:
        return any(
            base <= address and address + size <= base + rsize
            for base, rsize in self._reservations
        )

    def allocate_at(
        self, address: int, size: int, virtual: bool = False, label: str = ""
    ) -> DeviceBuffer:
        """Place an allocation at a fixed address inside a reservation."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        if not self._in_reservation(address, size):
            raise AllocationError(
                f"{self.device_name}: [{address:#x}, +{size}) is not inside "
                "a reserved range"
            )
        # Overlap check against live allocations.
        idx = bisect.bisect_right(self._starts, address)
        if idx > 0:
            prev = self._by_start[self._starts[idx - 1]]
            if prev.end > address:
                raise AllocationError(
                    f"placement at {address:#x} overlaps {prev!r}"
                )
        if idx < len(self._starts):
            nxt = self._by_start[self._starts[idx]]
            if address + size > nxt.address:
                raise AllocationError(f"placement at {address:#x} overlaps {nxt!r}")
        backing = None if virtual else np.zeros(size, dtype=np.uint8)
        buf = DeviceBuffer(self, address, size, backing, label=label)
        buf.placed = True
        bisect.insort(self._starts, buf.address)
        self._by_start[buf.address] = buf
        return buf

    def release(self, base: int) -> None:
        """Release a :meth:`reserve`-d range, returning its capacity.

        Any allocations still *placed* inside the range are torn down
        with it (they never charged capacity of their own).  This is
        the ``cuMemAddressFree`` analogue the multi-tenant service
        relies on: a finished job's global segment gives its device
        memory back so later jobs on the same GPU can reserve it again.
        """
        for index, (rbase, rsize) in enumerate(self._reservations):
            if rbase == base:
                break
        else:
            raise AllocationError(
                f"{self.device_name}: no reservation at {base:#x}"
            )
        del self._reservations[index]
        end = rbase + rsize
        for address in [a for a in self._starts if rbase <= a < end]:
            buf = self._by_start[address]
            buf.freed = True
            del self._starts[bisect.bisect_left(self._starts, address)]
            del self._by_start[address]
        self.live_bytes -= rsize

    def free(self, buf: DeviceBuffer) -> None:
        """Release an allocation (double frees are rejected).

        Placed allocations (inside a reservation) return no capacity —
        the reservation holds it.
        """
        if buf.space is not self:
            raise AllocationError("buffer freed on the wrong device")
        if buf.freed:
            raise AllocationError(f"double free of {buf!r}")
        buf.freed = True
        if not getattr(buf, "placed", False):
            self.live_bytes -= buf.size
        idx = bisect.bisect_left(self._starts, buf.address)
        del self._starts[idx]
        del self._by_start[buf.address]

    def resolve(self, address: int) -> Tuple[DeviceBuffer, int]:
        """Map a device address to ``(buffer, offset)``.

        This is how one-sided operations land: the initiator only knows
        a remote *address*; the target device resolves it.
        """
        idx = bisect.bisect_right(self._starts, address) - 1
        if idx >= 0:
            buf = self._by_start[self._starts[idx]]
            if buf.address <= address < buf.end:
                return buf, address - buf.address
        raise DeviceError(
            f"{self.device_name}: address {address:#x} is not in any live allocation"
        )

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.live_bytes
