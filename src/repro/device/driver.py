"""The per-device driver facade and peer-access management.

:class:`Device` is what upper layers (libomptarget plugins, the DiOMP
runtime, XCCL) hold: memory space + default stream + kernel launch +
event creation for one physical GPU.  :class:`PeerAccessManager` is
the ``cudaDeviceEnablePeerAccess`` analogue: it validates that a pair
is peer-capable in the topology before the runtime may use the direct
path, which is exactly the check DiOMP's hierarchical path selection
performs (§3.2).
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.device.kernel import Kernel
from repro.device.memory import DeviceBuffer, DeviceMemorySpace
from repro.device.stream import DeviceEvent, Stream
from repro.hardware.specs import GPUSpec
from repro.hardware.topology import ClusterTopology, DeviceId, PathKind
from repro.sim import Future, Simulator, Tracer
from repro.util.errors import DeviceError


class Device:
    """One simulated GPU: memory, streams, kernel launch."""

    def __init__(
        self,
        sim: Simulator,
        device_id: DeviceId,
        spec: GPUSpec,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if device_id.kind != "gpu":
            raise DeviceError(f"Device requires a gpu DeviceId, got {device_id}")
        self.sim = sim
        self.device_id = device_id
        self.spec = spec
        self.tracer = tracer
        self.memory = DeviceMemorySpace(spec.memory_bytes, device_name=str(device_id))
        self.memory.device_id = device_id
        #: the device's current fault plan; streams read it live at
        #: draw time (see Stream.faults), so installs and per-tenant
        #: swaps reach streams created earlier
        self.faults = None
        #: analytic-rank mode (set by World.enable_analytic): every
        #: allocation is forced virtual — timing-only, no numpy backing
        self.analytic = False
        self.default_stream = Stream(sim, device_name=str(device_id), faults_source=self)
        self.kernels_launched = 0

    # -- memory ------------------------------------------------------------

    def malloc(self, size: int, virtual: bool = False, label: str = "") -> DeviceBuffer:
        """Allocate device memory (``cuMemAlloc``)."""
        buf = self.memory.allocate(size, virtual=virtual or self.analytic, label=label)
        if self.tracer is not None:
            self.tracer.emit(
                "device", "malloc", device=str(self.device_id), size=size, label=label
            )
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        self.memory.free(buf)
        if self.tracer is not None:
            self.tracer.emit("device", "free", device=str(self.device_id), size=buf.size)

    # -- streams and events -------------------------------------------------

    def create_stream(self) -> Stream:
        return Stream(self.sim, device_name=str(self.device_id), faults_source=self)

    def create_event(self, name: str = "event") -> DeviceEvent:
        return DeviceEvent(self.sim, name=name)

    # -- execution ---------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        *args: object,
        stream: Optional[Stream] = None,
        cost_args: Optional[tuple] = None,
    ) -> Future:
        """Launch ``kernel`` asynchronously on ``stream``.

        ``cost_args`` feeds the kernel's cost function (defaults to the
        launch args).  If the kernel has a host implementation it runs
        at completion time with the launch args — callers pass numpy
        views obtained from real device buffers.
        """
        stream = stream or self.default_stream
        cost = kernel.cost(*(cost_args if cost_args is not None else args))
        duration = self.spec.kernel_launch_overhead + cost.duration_on(self.spec)
        self.kernels_launched += 1
        if self.tracer is not None:
            self.tracer.emit(
                "device",
                "launch",
                device=str(self.device_id),
                kernel=kernel.name,
                duration=duration,
            )
        on_complete = None
        if kernel.host_fn is not None:
            host_fn = kernel.host_fn

            def on_complete() -> None:
                host_fn(*args)

        return stream.enqueue(duration, on_complete=on_complete, label=kernel.name)

    def local_copy(
        self,
        dst: DeviceBuffer,
        dst_offset: int,
        src: DeviceBuffer,
        src_offset: int,
        nbytes: int,
        stream: Optional[Stream] = None,
    ) -> Future:
        """Asynchronous device-local memcpy (D2D within this device)."""
        stream = stream or self.default_stream
        duration = nbytes / self.spec.mem_bandwidth

        def data_plane() -> None:
            dst.copy_within_device(dst_offset, src, src_offset, nbytes)

        return stream.enqueue(duration, on_complete=data_plane, label="memcpyD2D")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device {self.device_id} {self.spec.name}>"


class PeerAccessManager:
    """Tracks which device pairs have peer access enabled.

    Mirrors the CUDA semantics the paper relies on: access must be
    enabled explicitly, is directional, requires a peer-capable link,
    and enabling twice is an error.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self._enabled: Set[Tuple[DeviceId, DeviceId]] = set()

    def can_access_peer(self, device: DeviceId, peer: DeviceId) -> bool:
        """``cudaDeviceCanAccessPeer``: same node + peer-capable link."""
        if device.node != peer.node or device == peer:
            return False
        path = self.topology.path(device, peer)
        return path.kind is PathKind.PEER_DIRECT and path.peer_capable

    def enable_peer_access(self, device: DeviceId, peer: DeviceId) -> None:
        """``cudaDeviceEnablePeerAccess`` with CUDA's error behaviour."""
        if not self.can_access_peer(device, peer):
            raise DeviceError(f"peer access unsupported between {device} and {peer}")
        key = (device, peer)
        if key in self._enabled:
            raise DeviceError(f"peer access already enabled: {device} -> {peer}")
        self._enabled.add(key)

    def is_enabled(self, device: DeviceId, peer: DeviceId) -> bool:
        return (device, peer) in self._enabled

    def ensure_enabled(self, device: DeviceId, peer: DeviceId) -> bool:
        """Idempotent enable used by runtimes; returns True if this call
        newly enabled access (so the caller can charge setup cost)."""
        if self.is_enabled(device, peer):
            return False
        self.enable_peer_access(device, peer)
        return True
