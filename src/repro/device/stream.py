"""Streams and device events in virtual time.

A :class:`Stream` is an in-order work queue.  Rather than running a
simulated task per stream, enqueue-time arithmetic suffices: each
stream tracks ``available_at``, the virtual time when its last
operation completes; a new operation starts at
``max(now, available_at)`` and completes ``duration`` later.  The
completion :class:`~repro.sim.Future` fires exactly then, which is
when any attached data-plane callback (the real copy/compute) runs.

:class:`DeviceEvent` mirrors ``cudaEvent_t``: recorded into a stream,
it captures the completion of all work enqueued so far and can be
queried (non-blocking — the building block for the paper's *hybrid
event polling*) or synchronized.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.sim import Future, Simulator
from repro.util.errors import DeviceError

_stream_ids = itertools.count()


class Stream:
    """An in-order device work queue."""

    def __init__(
        self,
        sim: Simulator,
        device_name: str = "dev",
        faults=None,
        faults_source=None,
    ) -> None:
        self.sim = sim
        self.device_name = device_name
        self.stream_id = next(_stream_ids)
        #: when the last enqueued operation completes
        self.available_at = 0.0
        self.ops_enqueued = 0
        self.destroyed = False
        #: live fault-plan source (the owning Device): the plan is read
        #: off it at every draw, so installing or swapping a plan on a
        #: device reaches streams created *before* the (re)install —
        #: what per-tenant plan swaps on a long-lived world require
        self._faults_source = faults_source
        #: explicitly pinned plan; overrides the live source when set
        self._faults = faults
        self._last_completion: Optional[Future] = None

    @property
    def faults(self):
        """The fault plan consulted at the ``stream.sync`` site.

        Resolved at draw time: a pinned plan wins, otherwise the owning
        device's *current* plan (not a creation-time snapshot).
        """
        if self._faults is not None:
            return self._faults
        if self._faults_source is not None:
            return self._faults_source.faults
        return None

    @faults.setter
    def faults(self, plan) -> None:
        """Pin an explicit plan, detaching the live device lookup."""
        self._faults = plan
        if plan is not None:
            self._faults_source = None

    def enqueue(
        self,
        duration: float,
        on_complete: Optional[Callable[[], None]] = None,
        label: str = "op",
    ) -> Future:
        """Append an operation taking ``duration`` device-seconds.

        Returns a future fired at the operation's completion time; the
        optional ``on_complete`` callback (the data plane) runs first.
        """
        if self.destroyed:
            raise DeviceError(f"enqueue on destroyed stream {self.stream_id}")
        if duration < 0:
            raise DeviceError(f"negative op duration: {duration}")
        start = max(self.sim.now, self.available_at)
        end = start + duration
        self.available_at = end
        self.ops_enqueued += 1
        fut = Future(self.sim, description=f"{self.device_name}/s{self.stream_id}:{label}")

        def _complete() -> None:
            if on_complete is not None:
                on_complete()
            fut.fire()

        self.sim.call_later(end - self.sim.now, _complete)
        self._last_completion = fut
        return fut

    @property
    def idle(self) -> bool:
        """True when all enqueued work has completed."""
        return self.available_at <= self.sim.now

    def synchronize(self) -> None:
        """Block the calling task until the stream drains.

        With a fault plan installed, a ``stream.sync`` draw can inject
        extra latency here (a jittery driver-level sync, the paper's
        motivation for hybrid polling over eager synchronization).
        """
        plan = self.faults
        if plan is not None:
            action = plan.draw(
                "stream.sync", op=self.device_name
            )
            if action is not None and action.latency > 0:
                self.sim.sleep(action.latency)
        if self._last_completion is not None and not self._last_completion.fired:
            self._last_completion.wait()
        elif self.available_at > self.sim.now:
            self.sim.sleep(self.available_at - self.sim.now)

    def destroy(self) -> None:
        if self.destroyed:
            raise DeviceError(f"double destroy of stream {self.stream_id}")
        self.destroyed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stream {self.device_name}/s{self.stream_id} avail={self.available_at:.6f}>"


class DeviceEvent:
    """A recordable completion marker (``cudaEvent_t`` analogue)."""

    def __init__(self, sim: Simulator, name: str = "event") -> None:
        self.sim = sim
        self.name = name
        self._future: Optional[Future] = None
        self._record_time: Optional[float] = None

    def record(self, stream: Stream) -> None:
        """Capture the completion of all work currently in ``stream``."""
        self._record_time = stream.available_at
        fut = Future(self.sim, description=f"event:{self.name}")
        delay = max(0.0, stream.available_at - self.sim.now)
        self.sim.call_later(delay, fut.fire)
        self._future = fut

    @property
    def recorded(self) -> bool:
        return self._future is not None

    def query(self) -> bool:
        """Non-blocking readiness test (``cudaEventQuery``)."""
        if self._future is None:
            raise DeviceError(f"query of unrecorded event {self.name}")
        return self._future.poll()

    def synchronize(self) -> None:
        """Block the calling task until the event fires."""
        if self._future is None:
            raise DeviceError(f"synchronize on unrecorded event {self.name}")
        if not self._future.fired:
            self._future.wait()

    def completion_time(self) -> float:
        """The virtual time the event fires (for tests and models)."""
        if self._record_time is None:
            raise DeviceError(f"completion_time of unrecorded event {self.name}")
        return self._record_time
