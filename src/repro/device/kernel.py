"""Kernel launches with calibrated cost models.

A :class:`Kernel` bundles a *cost function* (flops/bytes → duration on
a given GPU spec) with an optional *host implementation* that performs
the real computation on numpy views at completion time.  The dual-mode
design is the substitution documented in DESIGN.md: small problems run
the host implementation so tests verify numerics; paper-scale problems
skip it (virtual buffers) and contribute timing only.

The duration model is the standard roofline:

    ``t = max(flops / (peak_flops * efficiency), bytes / mem_bandwidth)``

plus the per-launch overhead from the GPU spec.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.hardware.specs import GPUSpec
from repro.util.errors import DeviceError


@dataclasses.dataclass(frozen=True)
class KernelCost:
    """Work metadata for one kernel launch."""

    flops: float
    bytes_moved: float
    #: fraction of peak the kernel sustains (occupancy, cache behaviour)
    efficiency: float = 0.75
    #: use the matrix-engine peak rather than the vector FP64 peak
    use_gemm_peak: bool = False

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_moved < 0:
            raise DeviceError("negative kernel work")
        if not (0.0 < self.efficiency <= 1.0):
            raise DeviceError(f"efficiency must be in (0, 1], got {self.efficiency}")

    def duration_on(self, gpu: GPUSpec) -> float:
        """Roofline execution time on ``gpu`` (excluding launch overhead)."""
        peak = gpu.gemm_flops if self.use_gemm_peak else gpu.fp64_flops
        compute_time = self.flops / (peak * self.efficiency)
        memory_time = self.bytes_moved / gpu.mem_bandwidth
        return max(compute_time, memory_time)


@dataclasses.dataclass(frozen=True)
class Kernel:
    """A launchable kernel: cost model + optional host implementation."""

    name: str
    #: maps launch args to a KernelCost
    cost: Callable[..., KernelCost]
    #: optional host-side implementation run at completion (real mode)
    host_fn: Optional[Callable[..., None]] = None


# ---------------------------------------------------------------------------
# Cost helpers used by the evaluation applications
# ---------------------------------------------------------------------------


def gemm_cost(m: int, n: int, k: int, itemsize: int = 8, efficiency: float = 0.85) -> KernelCost:
    """Cost of a dense ``C += A(mxk) @ B(kxn)`` on the matrix engine.

    Efficiency defaults to 85% of the tensor/matrix-core peak, typical
    for large vendor-library DGEMM.  Small blocks sustain less; callers
    model that by passing a lower efficiency.
    """
    if min(m, n, k) <= 0:
        raise DeviceError(f"invalid GEMM shape {(m, n, k)}")
    flops = 2.0 * m * n * k
    bytes_moved = float(itemsize) * (m * k + k * n + 2 * m * n)
    return KernelCost(flops, bytes_moved, efficiency=efficiency, use_gemm_peak=True)


def stencil_cost(
    points: int,
    flops_per_point: float = 61.0,
    bytes_per_point: float = 40.0,
    efficiency: float = 0.70,
) -> KernelCost:
    """Cost of one high-order stencil sweep (Minimod's 8th-order
    acoustic-isotropic kernel: ~61 flops and ~5 stencil reads/point
    after cache reuse)."""
    if points <= 0:
        raise DeviceError(f"invalid stencil size {points}")
    return KernelCost(
        flops=points * flops_per_point,
        bytes_moved=points * bytes_per_point,
        efficiency=efficiency,
    )
