"""Application sweeps (Figs. 7–8).

**Fig. 7** — Cannon matrix multiplication strong scaling, N = 30240:
Platform A from 4 to 40 A100s (1–10 nodes), Platform B from 8 to 64
GCDs (1–8 nodes), DiOMP vs MPI+OpenMP.  Speedups are relative to the
single-node all-GPU baseline, as in the paper.

**Fig. 8** — Minimod, grid 1200^3, 1000 time steps, on all three
platforms; speedups relative to the **MPI single-node** time (the
paper's choice, since DiOMP already wins intra-node).

The per-step time of the simulated apps is constant after the first
step (the simulation is deterministic), so the harness runs a short
measured window and scales to the paper's step counts; the reported
speedups are ratios and unaffected by the extrapolation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.cannon import CannonConfig, run_cannon
from repro.apps.minimod import MinimodConfig, run_minimod
from repro.cluster.world import World
from repro.hardware.platforms import PlatformSpec, get_platform, platform_a
from repro.util.errors import ConfigurationError


def app_platform(letter: str) -> PlatformSpec:
    """Platform spec for application runs.

    The paper confirms the Slingshot+A100 put anomaly "is unrelated
    to ... the benchmark applications used in this study" (§4.2), so
    the application sweeps model healthy drivers; the quirk stays on
    for the Fig. 4 microbenchmark where it was observed.
    """
    if letter.upper() == "A":
        return platform_a(with_quirk=False)
    return get_platform(letter)

#: Fig. 7 problem size
CANNON_N = 30240

#: Fig. 7 node sweeps per platform (paper: 4-40 A100s, 8-64 GCDs)
CANNON_NODES = {"A": (1, 2, 4, 8, 10), "B": (1, 2, 4, 8)}

#: Fig. 8 problem (1200^3, 1000 steps; measured window is shorter)
MINIMOD_GRID = 1200
MINIMOD_STEPS = 1000
MINIMOD_MEASURED_STEPS = 10

#: Fig. 8 node sweeps
MINIMOD_NODES = {"A": (1, 2, 4, 8), "B": (1, 2, 4, 8), "C": (1, 2, 4, 8, 16)}


def _cannon_time(platform: PlatformSpec, nodes: int, impl: str, n: int) -> float:
    world = World(platform, num_nodes=nodes)
    gpus = world.nranks
    size = n - (n % gpus) if n % gpus else n  # keep N divisible
    cfg = CannonConfig(n=size, execute=False)
    res = run_cannon(world, cfg, impl=impl)
    return max(r["elapsed"] for r in res.results)


def cannon_scaling(
    platform_letter: str,
    impl: str,
    nodes_sweep: Optional[Sequence[int]] = None,
    n: int = CANNON_N,
) -> List[Tuple[int, float]]:
    """(GPU count, wall time) for one implementation on one platform."""
    if platform_letter not in CANNON_NODES and nodes_sweep is None:
        raise ConfigurationError(
            f"no Fig. 7 sweep defined for platform {platform_letter}"
        )
    platform = app_platform(platform_letter)
    sweep = nodes_sweep or CANNON_NODES[platform_letter]
    out = []
    for nodes in sweep:
        gpus = nodes * platform.gpus_per_node
        out.append((gpus, _cannon_time(platform, nodes, impl, n)))
    return out


def cannon_speedups(
    platform_letter: str,
    nodes_sweep: Optional[Sequence[int]] = None,
    n: int = CANNON_N,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 7 data: speedup vs the single-node baseline, per impl."""
    out: Dict[str, List[Tuple[int, float]]] = {}
    for impl in ("diomp", "mpi"):
        times = cannon_scaling(platform_letter, impl, nodes_sweep, n)
        base = times[0][1]
        out[impl] = [(gpus, base / t) for gpus, t in times]
    return out


def _minimod_time(
    platform: PlatformSpec, nodes: int, impl: str, grid: int, steps: int
) -> float:
    world = World(platform, num_nodes=nodes)
    gpus = world.nranks
    nx = grid - (grid % gpus) if grid % gpus else grid
    cfg = MinimodConfig(nx=nx, ny=grid, nz=grid, steps=steps, execute=False)
    res = run_minimod(world, cfg, impl=impl)
    measured = max(r["elapsed"] for r in res.results)
    return measured * (MINIMOD_STEPS / steps)


def minimod_speedups(
    platform_letter: str,
    nodes_sweep: Optional[Sequence[int]] = None,
    grid: int = MINIMOD_GRID,
    steps: int = MINIMOD_MEASURED_STEPS,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 8 data: speedup vs the MPI single-node time, per impl."""
    platform = app_platform(platform_letter)
    sweep = nodes_sweep or MINIMOD_NODES[platform_letter]
    baseline = _minimod_time(platform, sweep[0], "mpi", grid, steps)
    out: Dict[str, List[Tuple[int, float]]] = {}
    for impl in ("diomp", "mpi"):
        series = []
        for nodes in sweep:
            gpus = nodes * platform.gpus_per_node
            t = _minimod_time(platform, nodes, impl, grid, steps)
            series.append((gpus, baseline / t))
        out[impl] = series
    return out
