"""Plan-vs-hand application comparison (the ``plan.*`` gate metrics).

The tentpole acceptance criterion made measurable: at the Fig. 7/8
problem sizes, the optimized plan-lowered Cannon and Minimod must
match or beat the hand-written loops.  The simulator is deterministic,
so the ratios are exact: the optimizer derives the very schedule the
hand-written overlap loop encodes, giving ``vs_hand == 1.0`` bit for
bit, and the Minimod overlap beats the naive hand loop
(``vs_naive < 1``) at figure scale.

``plan_gate_metrics`` feeds ``python -m repro.bench regress``;
``benchmarks/bench_plan_apps.py`` asserts the bounds directly.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.cannon import CannonConfig, run_cannon
from repro.apps.minimod import MinimodConfig, run_minimod
from repro.bench.appbench import CANNON_N, MINIMOD_GRID, app_platform
from repro.cluster.world import World
from repro.plan import minimod_plan, optimize_plan, run_cannon_plan, run_minimod_plan

#: single platform-A node (4 ranks) — the Fig. 7/8 intra-node point
PLAN_NODES = 1

#: short measured window, like the Fig. 8 fast mode
PLAN_MINIMOD_STEPS = 4


def _world() -> World:
    return World(app_platform("A"), num_nodes=PLAN_NODES)


def _elapsed(result) -> float:
    return max(r["elapsed"] for r in result.results)


def cannon_compare(n: int = CANNON_N) -> Dict[str, float]:
    """Hand-written vs optimized-plan Cannon wall-clock (analytic)."""
    gpus = _world().nranks
    size = n - (n % gpus) if n % gpus else n
    cfg = CannonConfig(n=size, execute=False)
    hand = _elapsed(run_cannon(_world(), cfg, impl="diomp"))
    planned = _elapsed(run_cannon_plan(_world(), cfg, backend="gasnet"))
    return {"hand": hand, "plan": planned}


def minimod_compare(
    grid: int = MINIMOD_GRID, steps: int = PLAN_MINIMOD_STEPS
) -> Dict[str, float]:
    """Hand naive / hand overlap / optimized plan Minimod wall-clock."""
    gpus = _world().nranks
    nx = grid - (grid % gpus) if grid % gpus else grid
    cfg = MinimodConfig(nx=nx, ny=grid, nz=grid, steps=steps, execute=False)
    naive = _elapsed(run_minimod(_world(), cfg, impl="diomp"))
    overlap = _elapsed(run_minimod(_world(), cfg, impl="diomp-overlap"))
    planned = _elapsed(run_minimod_plan(_world(), cfg, backend="gasnet"))
    return {"naive": naive, "hand": overlap, "plan": planned}


def minimod_pass_counts(
    grid: int = MINIMOD_GRID, steps: int = PLAN_MINIMOD_STEPS
) -> Dict[str, int]:
    """The deterministic pass statistics for the Fig. 8 Minimod plan."""
    gpus = _world().nranks
    nx = grid - (grid % gpus) if grid % gpus else grid
    cfg = MinimodConfig(nx=nx, ny=grid, nz=grid, steps=steps, execute=False)
    _plan, stats = optimize_plan(minimod_plan(cfg, gpus))
    return stats


def plan_gate_metrics() -> Dict[str, float]:
    """The ``plan.*`` metrics for the regression gate."""
    cannon = cannon_compare()
    minimod = minimod_compare()
    counts = minimod_pass_counts()
    return {
        "plan.cannon.elapsed": cannon["plan"],
        "plan.cannon.vs_hand": cannon["plan"] / cannon["hand"],
        "plan.minimod.elapsed": minimod["plan"],
        "plan.minimod.vs_hand": minimod["plan"] / minimod["hand"],
        "plan.minimod.vs_naive": minimod["plan"] / minimod["naive"],
        "plan.minimod.ops_coalesced": float(counts["ops_coalesced"]),
        "plan.minimod.computes_overlapped": float(counts["computes_overlapped"]),
    }
