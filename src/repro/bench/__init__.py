"""Benchmark harness: regenerates every figure of the paper's §4.

Each ``figN()`` function in :mod:`repro.bench.figures` runs the
corresponding experiment on the simulated platforms and returns a
structured result; ``print_figN(result)`` renders the same rows/series
the paper reports.  The pytest-benchmark wrappers live in the
top-level ``benchmarks/`` directory.

Sub-modules:

* :mod:`repro.bench.report` — plain-text tables/series renderers,
* :mod:`repro.bench.microbench` — point-to-point latency/bandwidth
  (Figs. 3–5),
* :mod:`repro.bench.collective` — collective latency ratios (Fig. 6),
* :mod:`repro.bench.appbench` — Cannon and Minimod sweeps (Figs. 7–8),
* :mod:`repro.bench.programmability` — the Listing 1 vs Listing 2
  lines-of-code comparison,
* :mod:`repro.bench.registration` — the Fig. 1 unified-vs-duplicated
  registration ablation.
"""

from repro.bench.report import Table, Series
from repro.bench import figures

__all__ = ["Table", "Series", "figures"]
