"""Point-to-point microbenchmarks (Figs. 3–5).

OSU-style methodology on two ranks of a two-node cluster:

* **latency** — one operation at a time, completed before the next is
  issued; the reported number is the per-operation average,
* **bandwidth** — a window of operations in flight, completed by one
  flush; reported as bytes moved per second of the whole window.

The DiOMP side issues ``ompx_put``/``ompx_get`` + ``ompx_fence``; the
MPI side issues ``MPI_Put``/``MPI_Get`` + ``MPI_Win_flush`` inside a
passive-target lock epoch.  Fig. 5 swaps the DiOMP conduit between
GASNet-EX and GPI-2 on the InfiniBand platform.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cluster.memref import MemRef
from repro.cluster.spmd import run_spmd
from repro.cluster.world import World
from repro.core.runtime import DiompParams, DiompRuntime
from repro.hardware.platforms import PlatformSpec
from repro.mpi import MpiWorld, Window
from repro.util.errors import ConfigurationError
from repro.util.units import KiB, MiB

#: operations kept in flight for bandwidth measurements (OSU default)
BW_WINDOW = 64

#: message sizes for the latency sweep (Fig. 3: 4 B .. 8 KiB)
LATENCY_SIZES = [4, 16, 64, 256, 1024, 4 * KiB, 8 * KiB]

#: message sizes for the bandwidth sweep (Fig. 4: up to 64 MiB)
BANDWIDTH_SIZES = [
    4 * KiB,
    64 * KiB,
    256 * KiB,
    1 * MiB,
    4 * MiB,
    16 * MiB,
    64 * MiB,
]


def _segment_for(sizes: Sequence[int]) -> int:
    return 4 * max(sizes) + (1 << 20)


def diomp_p2p(
    platform: PlatformSpec,
    op: str,
    sizes: Sequence[int],
    reps: int = 10,
    window: int = 1,
    conduit: str = "gasnet",
) -> List[Tuple[int, float]]:
    """Per-size average completion time of DiOMP one-sided ops between
    rank 0 and a rank on the other node."""
    if op not in ("put", "get"):
        raise ConfigurationError(f"op must be put|get, got {op!r}")
    results: List[Tuple[int, float]] = []
    for size in sizes:
        world = World(platform, num_nodes=2)
        DiompRuntime(
            world,
            DiompParams(segment_size=_segment_for(sizes), conduit=conduit),
        )
        peer = world.ranks_per_node  # first rank of node 1

        def prog(ctx, size=size, peer=peer):
            gbuf = ctx.diomp.alloc(size, virtual=True)
            local = ctx.diomp.segment(0).alloc_local(size, virtual=True)
            ctx.diomp.barrier()
            elapsed = None
            if ctx.rank == 0:
                src = MemRef.device(local)
                issue = ctx.diomp.put if op == "put" else ctx.diomp.get
                # Warm-up (path setup, pointer caches).
                issue(peer, gbuf, src)
                ctx.diomp.fence()
                t0 = ctx.sim.now
                for _ in range(reps):
                    for _ in range(window):
                        issue(peer, gbuf, src)
                    ctx.diomp.fence()
                elapsed = (ctx.sim.now - t0) / (reps * window)
            ctx.diomp.barrier()
            return elapsed

        res = run_spmd(world, prog)
        results.append((size, res.results[0]))
    return results


def mpi_p2p(
    platform: PlatformSpec,
    op: str,
    sizes: Sequence[int],
    reps: int = 10,
    window: int = 1,
) -> List[Tuple[int, float]]:
    """Per-size average completion time of MPI RMA between nodes."""
    if op not in ("put", "get"):
        raise ConfigurationError(f"op must be put|get, got {op!r}")
    results: List[Tuple[int, float]] = []
    for size in sizes:
        world = World(platform, num_nodes=2)
        mpi = MpiWorld(world)
        peer = world.ranks_per_node

        def prog(ctx, size=size, peer=peer):
            comm = mpi.comm_world(ctx.rank)
            exposed = ctx.device.malloc(size, virtual=True)
            win = Window.create(comm, MemRef.device(exposed))
            elapsed = None
            if ctx.rank == 0:
                local = MemRef.device(ctx.device.malloc(size, virtual=True))
                win.lock(peer)
                issue = win.put if op == "put" else win.get
                issue(local, target=peer)
                win.flush(peer)  # warm-up
                t0 = ctx.sim.now
                for _ in range(reps):
                    for _ in range(window):
                        issue(local, target=peer)
                    win.flush(peer)
                elapsed = (ctx.sim.now - t0) / (reps * window)
                win.unlock(peer)
            ctx.world.global_barrier.wait()
            return elapsed

        res = run_spmd(world, prog)
        results.append((size, res.results[0]))
    return results


def latency_sweep(
    platform: PlatformSpec, sizes: Sequence[int] = tuple(LATENCY_SIZES), reps: int = 10
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 3 data for one platform: four latency curves."""
    return {
        "diomp_put": diomp_p2p(platform, "put", sizes, reps),
        "diomp_get": diomp_p2p(platform, "get", sizes, reps),
        "mpi_put": mpi_p2p(platform, "put", sizes, reps),
        "mpi_get": mpi_p2p(platform, "get", sizes, reps),
    }


def bandwidth_sweep(
    platform: PlatformSpec,
    sizes: Sequence[int] = tuple(BANDWIDTH_SIZES),
    reps: int = 3,
    window: int = BW_WINDOW,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 4 data for one platform: four bandwidth curves (bytes/s)."""
    out: Dict[str, List[Tuple[int, float]]] = {}
    for name, fn, kwargs in (
        ("diomp_put", diomp_p2p, {"op": "put"}),
        ("diomp_get", diomp_p2p, {"op": "get"}),
        ("mpi_put", mpi_p2p, {"op": "put"}),
        ("mpi_get", mpi_p2p, {"op": "get"}),
    ):
        times = fn(platform, sizes=sizes, reps=reps, window=window, **kwargs)
        out[name] = [(size, size / t) for size, t in times]
    return out


def conduit_bandwidth_sweep(
    platform: PlatformSpec,
    sizes: Sequence[int] = tuple(BANDWIDTH_SIZES),
    reps: int = 3,
    window: int = BW_WINDOW,
) -> Dict[str, List[Tuple[int, float]]]:
    """Fig. 5 data: GASNet-EX vs GPI-2 put/get bandwidth over NDR IB."""
    if platform.interconnect != "infiniband":
        raise ConfigurationError("the conduit comparison requires InfiniBand")
    out: Dict[str, List[Tuple[int, float]]] = {}
    for conduit in ("gasnet", "gpi2"):
        for op in ("put", "get"):
            times = diomp_p2p(
                platform, op, sizes, reps=reps, window=window, conduit=conduit
            )
            out[f"{conduit}_{op}"] = [(size, size / t) for size, t in times]
    return out
