"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.bench                 # every figure, fast mode
    python -m repro.bench fig4 fig6       # a subset
    python -m repro.bench --full fig3     # full repetitions/sweeps
    python -m repro.bench --profile out.json   # profiled cannon run
    python -m repro.bench regress              # benchmark regression gate
    python -m repro.bench regress --write      # refresh BENCH_baseline.json

``--profile`` runs an instrumented 4-rank Cannon workload and writes a
Chrome trace (Perfetto-loadable) plus a metrics snapshot next to it;
see :mod:`repro.bench.profile`.  ``regress`` compares key benchmark
figures against the committed baseline and exits nonzero on
regression; see :mod:`repro.bench.regress`.

Fast mode trims repetitions and sweep points; the simulator is
deterministic, so values are identical where coverage overlaps.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import figures

_RUNNERS = {
    "fig1": (lambda fast: figures.fig1(), figures.print_fig1),
    "fig3": (lambda fast: figures.fig3(fast=fast), figures.print_fig3),
    "fig4": (lambda fast: figures.fig4(fast=fast), figures.print_fig4),
    "fig5": (lambda fast: figures.fig5(fast=fast), figures.print_fig5),
    "fig6": (lambda fast: figures.fig6(fast=fast), figures.print_fig6),
    "fig7": (lambda fast: figures.fig7(fast=fast), figures.print_fig7),
    "fig8": (lambda fast: figures.fig8(fast=fast), figures.print_fig8),
    "listings": (lambda fast: figures.listings(), figures.print_listings),
}


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "regress":
        # The regression gate has its own flags; dispatch before the
        # figure parser (whose positional has fixed choices) sees them.
        from repro.bench.regress import main as regress_main

        return regress_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the DiOMP-Offloading evaluation figures.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*sorted(_RUNNERS), []],
        help="which figures to run (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full repetitions and sweep points (slower)",
    )
    parser.add_argument(
        "--profile",
        metavar="OUT.json",
        help="run the profiled cannon workload; write a Chrome trace to "
        "OUT.json and a metrics snapshot to OUT.metrics.json",
    )
    args = parser.parse_args(argv)
    if args.profile:
        from repro.bench.profile import write_profile

        write_profile(args.profile)
        if not args.figures:
            return 0
    chosen = args.figures or sorted(_RUNNERS)
    for name in chosen:
        run, show = _RUNNERS[name]
        start = time.time()
        result = run(not args.full)
        show(result)
        print(f"[{name} regenerated in {time.time() - start:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
