"""Per-figure reproduction entry points.

Each ``figN()`` returns the figure's data; each ``print_figN`` renders
it in the paper's terms.  The ``fast=`` flag trims repetitions and
sweep points so the whole set runs in minutes; the shapes (who wins,
crossovers) are unaffected because the simulator is deterministic.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bench import appbench, collective, microbench, programmability, registration
from repro.bench.report import (
    Series,
    Table,
    fmt_gbs,
    fmt_ratio,
    fmt_speedup,
    series_table,
)
from repro.hardware.platforms import get_platform
from repro.util.units import KiB, MiB, format_bytes


# ---------------------------------------------------------------------------
# Fig. 3 — point-to-point latency
# ---------------------------------------------------------------------------


def fig3(fast: bool = True) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Latency of DiOMP vs MPI put/get, 4 B–8 KiB, on the Slingshot+A100
    and InfiniBand+GH200 platforms."""
    reps = 3 if fast else 10
    return {
        "slingshot+A100": microbench.latency_sweep(get_platform("A"), reps=reps),
        "infiniband+GH200": microbench.latency_sweep(get_platform("C"), reps=reps),
    }


def print_fig3(data) -> None:
    for platform, curves in data.items():
        sizes = [s for s, _ in next(iter(curves.values()))]
        series = [
            Series(name, sizes, [t * 1e6 for _s, t in pts])
            for name, pts in curves.items()
        ]
        series_table(
            f"Fig. 3 - P2P latency on {platform} (us, lower is better)",
            "size",
            format_bytes,
            series,
            y_format=lambda v: f"{v:.2f}",
        ).print()


# ---------------------------------------------------------------------------
# Fig. 4 — point-to-point bandwidth
# ---------------------------------------------------------------------------


def fig4(fast: bool = True) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Bandwidth of DiOMP vs MPI put/get across sizes.  Platform A
    carries the documented NIC put anomaly."""
    reps = 2 if fast else 5
    window = 16 if fast else microbench.BW_WINDOW
    return {
        "slingshot+A100": microbench.bandwidth_sweep(
            get_platform("A"), reps=reps, window=window
        ),
        "infiniband+GH200": microbench.bandwidth_sweep(
            get_platform("C"), reps=reps, window=window
        ),
    }


def print_fig4(data) -> None:
    for platform, curves in data.items():
        sizes = [s for s, _ in next(iter(curves.values()))]
        series = [
            Series(name, sizes, [bw for _s, bw in pts])
            for name, pts in curves.items()
        ]
        series_table(
            f"Fig. 4 - P2P bandwidth on {platform} (GB/s, higher is better)",
            "size",
            format_bytes,
            series,
            y_format=fmt_gbs,
        ).print()


# ---------------------------------------------------------------------------
# Fig. 5 — GASNet-EX vs GPI-2
# ---------------------------------------------------------------------------


def fig5(fast: bool = True) -> Dict[str, List[Tuple[int, float]]]:
    """Conduit comparison over NDR InfiniBand (platform C)."""
    reps = 2 if fast else 5
    window = 16 if fast else microbench.BW_WINDOW
    return microbench.conduit_bandwidth_sweep(
        get_platform("C"), reps=reps, window=window
    )


def print_fig5(data) -> None:
    sizes = [s for s, _ in next(iter(data.values()))]
    series = [
        Series(name, sizes, [bw for _s, bw in pts]) for name, pts in data.items()
    ]
    series_table(
        "Fig. 5 - DiOMP conduit bandwidth over NDR InfiniBand (GB/s)",
        "size",
        format_bytes,
        series,
        y_format=fmt_gbs,
    ).print()


# ---------------------------------------------------------------------------
# Fig. 6 — collective latency ratio heatmap
# ---------------------------------------------------------------------------


def fig6(fast: bool = True, platforms: Sequence[str] = ("A", "B", "C")):
    """log10(MPI/DiOMP) collective latency per platform/op/size."""
    sizes = (
        [128 * KiB, 2 * MiB, 64 * MiB] if fast else collective.COLLECTIVE_SIZES
    )
    return collective.ratio_heatmap(
        platforms=platforms, sizes=sizes, reps=2 if fast else 3
    )


def print_fig6(heatmap) -> None:
    keys = sorted(heatmap.keys())
    sizes = [s for s, _ in heatmap[keys[0]]]
    table = Table(
        "Fig. 6 - log10(MPI / DiOMP) collective latency "
        "(positive -> DiOMP faster)",
        ["platform/op"] + [format_bytes(s) for s in sizes],
    )
    for key in keys:
        letter, op = key
        table.add_row(
            f"{letter}/{op}", *(fmt_ratio(v) for _s, v in heatmap[key])
        )
    table.print()


# ---------------------------------------------------------------------------
# Fig. 7 — Cannon matrix multiplication scaling
# ---------------------------------------------------------------------------


def fig7(fast: bool = True) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Strong-scaling speedups for N=30240 on platforms A and B."""
    sweeps = (
        {"A": (1, 2, 4), "B": (1, 2, 4)} if fast else appbench.CANNON_NODES
    )
    return {
        letter: appbench.cannon_speedups(letter, nodes_sweep=sweeps[letter])
        for letter in sweeps
    }


def print_fig7(data) -> None:
    for letter, curves in data.items():
        gpus = [g for g, _ in curves["diomp"]]
        series = [
            Series(impl, gpus, [s for _g, s in pts]) for impl, pts in curves.items()
        ]
        series_table(
            f"Fig. 7 - Cannon matmul speedup on platform {letter} "
            "(vs single-node baseline, higher is better)",
            "GPUs",
            str,
            series,
            y_format=fmt_speedup,
        ).print()


# ---------------------------------------------------------------------------
# Fig. 8 — Minimod scaling
# ---------------------------------------------------------------------------


def fig8(fast: bool = True) -> Dict[str, Dict[str, List[Tuple[int, float]]]]:
    """Minimod speedups (grid 1200^3) vs the MPI single-node time."""
    if fast:
        sweeps = {"A": (1, 2, 4), "C": (1, 2, 4)}
        steps = 4
    else:
        sweeps = appbench.MINIMOD_NODES
        steps = appbench.MINIMOD_MEASURED_STEPS
    return {
        letter: appbench.minimod_speedups(letter, nodes_sweep=sweep, steps=steps)
        for letter, sweep in sweeps.items()
    }


def print_fig8(data) -> None:
    for letter, curves in data.items():
        gpus = [g for g, _ in curves["diomp"]]
        series = [
            Series(impl, gpus, [s for _g, s in pts]) for impl, pts in curves.items()
        ]
        series_table(
            f"Fig. 8 - Minimod speedup on platform {letter} "
            "(vs MPI single-node, higher is better)",
            "GPUs",
            str,
            series,
            y_format=fmt_speedup,
        ).print()


# ---------------------------------------------------------------------------
# Listings 1/2 — programmability
# ---------------------------------------------------------------------------


def listings() -> Dict[str, programmability.HaloExchangeComplexity]:
    """Halo-exchange code-complexity comparison."""
    return programmability.measure_halo_exchange()


def print_listings(data) -> None:
    table = Table(
        "Listings 1/2 - Minimod halo exchange complexity",
        ["variant", "SLOC", "communication API calls"],
    )
    for name, c in sorted(data.items()):
        table.add_row(name, c.sloc, c.api_calls)
    table.print()


# ---------------------------------------------------------------------------
# Fig. 1 — registration ablation
# ---------------------------------------------------------------------------


def fig1(n_buffers: int = 16):
    """Unified vs duplicated registration bookkeeping."""
    return registration.compare(n_buffers=n_buffers)


def print_fig1(data) -> None:
    table = Table(
        "Fig. 1 - memory registration bookkeeping (16 mapped buffers)",
        ["workflow", "registrations", "mapping entries", "setup time"],
    )
    from repro.util.units import format_time

    for name, stats in sorted(data.items()):
        table.add_row(
            stats.workflow,
            stats.registrations,
            stats.mapping_entries,
            format_time(stats.setup_time),
        )
    table.print()
