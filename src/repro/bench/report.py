"""Plain-text rendering of benchmark results.

The harness prints the same quantities the paper's figures plot —
latency in µs per message size, bandwidth in GB/s, log10 time ratios,
speedups per GPU count — as aligned text tables, so ``pytest
benchmarks/ -s`` reads like the evaluation section.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence



@dataclasses.dataclass
class Series:
    """One plotted line: (x, y) pairs plus labels."""

    name: str
    x: List[object]
    y: List[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.name}: x/y length mismatch")


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(h), *(len(r[i]) for r in self.rows)) if self.rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def series_table(title: str, x_header: str, x_format: Callable, series: Sequence[Series], y_format: Callable = str) -> Table:
    """Lay several series out as one table keyed by the shared x axis."""
    table = Table(title, [x_header] + [s.name for s in series])
    xs = series[0].x
    for s in series:
        if s.x != xs:
            raise ValueError(f"series {s.name} has a different x axis")
    for i, x in enumerate(xs):
        table.add_row(x_format(x), *(y_format(s.y[i]) for s in series))
    return table


def fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.2f}"


def fmt_gbs(bytes_per_second: float) -> str:
    return f"{bytes_per_second / 1e9:.2f}"


def fmt_ratio(value: float) -> str:
    return f"{value:+.3f}"


def fmt_speedup(value: float) -> str:
    return f"{value:.2f}x"
