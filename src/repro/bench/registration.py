"""Fig. 1 ablation: unified vs duplicated memory management.

The paper's architectural argument (Fig. 1): under MPI+libomptarget,
every communicated device buffer is managed **twice** — once by the
OpenMP mapping table, once by MPI window registration — with separate
synchronization.  Under DiOMP the global-segment registration is paid
once at startup and every OpenMP mapping lands inside it.

This bench maps ``n_buffers`` arrays and makes each remotely
accessible under both workflows, reporting registration counts and the
virtual time spent on registration/window management.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


from repro.cluster.memref import MemRef
from repro.cluster.spmd import run_spmd
from repro.cluster.world import World
from repro.core.runtime import DiompParams, DiompRuntime
from repro.hardware.platforms import get_platform
from repro.mpi import MpiWorld, Window
from repro.omptarget import Map, MapType, OmpTargetRuntime, VirtualArray
from repro.util.units import KiB


@dataclasses.dataclass(frozen=True)
class RegistrationStats:
    """One workflow's bookkeeping for n communicated buffers."""

    workflow: str
    registrations: int
    mapping_entries: int
    setup_time: float


def baseline_workflow(n_buffers: int = 16, size: int = 256 * KiB) -> RegistrationStats:
    """MPI + stock libomptarget (Fig. 1a): map each buffer, then
    register each mapped device pointer into its own MPI window."""
    world = World(get_platform("A"), num_nodes=2)
    mpi = MpiWorld(world)
    stats = {}

    def prog(ctx):
        rt = OmpTargetRuntime(ctx)
        comm = mpi.comm_world(ctx.rank)
        t0 = ctx.sim.now
        arrays = [VirtualArray(size, name=f"buf{i}") for i in range(n_buffers)]
        windows = []
        for i, arr in enumerate(arrays):
            rt.target_enter_data([Map(arr, MapType.ALLOC)])
            dev_buf = rt.table().lookup(arr).device_buffer
            # Second, independent registration: the MPI window.
            windows.append(
                Window.create(comm, MemRef.device(dev_buf), win_key=i)
            )
        if ctx.rank == 0:
            stats["registrations"] = n_buffers  # one window per buffer
            stats["mapping_entries"] = rt.table().live_entries
            stats["setup_time"] = ctx.sim.now - t0
        ctx.world.global_barrier.wait()

    run_spmd(world, prog)
    return RegistrationStats(
        "mpi+libomptarget",
        stats["registrations"],
        stats["mapping_entries"],
        stats["setup_time"],
    )


def diomp_workflow(n_buffers: int = 16, size: int = 256 * KiB) -> RegistrationStats:
    """DiOMP (Fig. 1b): the plugin places every mapping inside the
    once-registered global segment — zero per-buffer registrations."""
    world = World(get_platform("A"), num_nodes=2)
    DiompRuntime(
        world, DiompParams(segment_size=4 * n_buffers * size + (1 << 20))
    )
    stats = {}

    def prog(ctx):
        t0 = ctx.sim.now
        arrays = [VirtualArray(size, name=f"buf{i}") for i in range(n_buffers)]
        for arr in arrays:
            ctx.diomp.omp.target_enter_data([Map(arr, MapType.ALLOC)])
        if ctx.rank == 0:
            seg = ctx.diomp.segment(0)
            stats["registrations"] = seg.registrations  # exactly one
            stats["mapping_entries"] = ctx.diomp.omp.table().live_entries
            stats["setup_time"] = ctx.sim.now - t0
        ctx.world.global_barrier.wait()

    run_spmd(world, prog)
    return RegistrationStats(
        "diomp",
        stats["registrations"],
        stats["mapping_entries"],
        stats["setup_time"],
    )


def compare(n_buffers: int = 16, size: int = 256 * KiB) -> Dict[str, RegistrationStats]:
    """Run both workflows with identical buffer sets."""
    return {
        "baseline": baseline_workflow(n_buffers, size),
        "diomp": diomp_workflow(n_buffers, size),
    }
