"""Cluster-service load sweeps: throughput and queue latency vs load.

The service benchmark drives a seeded mixed job stream (Cannon /
Minimod / allreduce gangs, exponential interarrivals) through a
:class:`~repro.cluster.service.ClusterService` at a range of offered
loads, and reports the two curves a capacity plan needs:

* **throughput** — completed jobs per virtual second.  Rises linearly
  with offered load until the node pool saturates, then flattens at
  the service capacity.
* **p99 queue wait** — the tail admission-to-start latency of admitted
  jobs.  Near zero below the knee, then grows sharply as the queue
  backs up and admission control starts shedding.

Everything here is *virtual-time* and seeded, so every figure is
exactly reproducible — ``service_gate_metrics`` feeds the regression
gate with tight tolerances (any drift is a scheduler change, not
noise).  Jobs run with ``execute=False`` (timing-only numerics), so a
whole sweep costs well under a second of wall time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.jobs import poisson_jobs
from repro.cluster.service import ClusterService, ServiceConfig, ServiceResult
from repro.cluster.world import World
from repro.hardware.platforms import get_platform

#: the benchmark cluster: platform A nodes, 2 ranks x 1 GPU per node
SWEEP_NODES = 4
SWEEP_RANKS_PER_NODE = 2

#: jobs per run — enough for stable queueing behaviour, small enough
#: that the full sweep stays fast
SWEEP_JOBS = 24
SWEEP_SEED = 42

#: offered loads (jobs per virtual second) spanning idle to saturated;
#: the mixed job stream's mean service demand puts the knee inside
#: this range on the 4-node pool
SWEEP_RATES = (500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0)

#: the single saturated point the regression gate replays
SATURATION_RATE = 16000.0


def run_service(
    rate: float,
    num_nodes: int = SWEEP_NODES,
    count: int = SWEEP_JOBS,
    seed: int = SWEEP_SEED,
    queue_limit: int = 8,
    policy: str = "fifo",
    platform_name: str = "A",
) -> ServiceResult:
    """One offered-load run (fresh world, fresh seeded stream),
    returning the full :class:`ServiceResult` — alerts, incident
    timeline, chargeback, and windowed series included.

    The stream is identical across rates except for the arrival
    timestamps (same seed, same kind/gang draws), so the sweep isolates
    the effect of load.
    """
    world = World(
        get_platform(platform_name),
        num_nodes=num_nodes,
        ranks_per_node=SWEEP_RANKS_PER_NODE,
    )
    jobs = poisson_jobs(
        seed=seed,
        count=count,
        rate=rate,
        execute=False,
        node_choices=(1, 2),
    )
    service = ClusterService(
        world, ServiceConfig(queue_limit=queue_limit, policy=policy)
    )
    return service.run(jobs)


def point_metrics(rate: float, result: ServiceResult, count: int) -> Dict[str, float]:
    """The sweep-table figures for one finished run."""
    arrivals = [r.submitted for r in result.records]
    last_arrival = max(arrivals) if arrivals else 0.0
    burns = [
        s.budget_consumed
        for s in result.slo_report
        if s.budget_consumed is not None
    ]
    return {
        "rate": rate,
        "offered": count / last_arrival if last_arrival > 0 else 0.0,
        "throughput": result.throughput,
        "p50_queue_wait": result.queue_wait_percentile(0.50),
        "p99_queue_wait": result.queue_wait_percentile(0.99),
        "completed": float(len(result.completed)),
        "rejected": float(len(result.rejected)),
        "failed": float(len(result.failed)),
        "elapsed": result.elapsed,
        "alerts": float(len(result.alerts)),
        "budget_burn": max(burns) if burns else 0.0,
    }


def run_service_point(
    rate: float,
    num_nodes: int = SWEEP_NODES,
    count: int = SWEEP_JOBS,
    seed: int = SWEEP_SEED,
    queue_limit: int = 8,
    policy: str = "fifo",
    platform_name: str = "A",
) -> Dict[str, float]:
    """One offered-load point: the figures only (see :func:`run_service`
    for the full result)."""
    result = run_service(
        rate,
        num_nodes=num_nodes,
        count=count,
        seed=seed,
        queue_limit=queue_limit,
        policy=policy,
        platform_name=platform_name,
    )
    return point_metrics(rate, result, count)


def service_load_sweep(
    rates: Sequence[float] = SWEEP_RATES,
    num_nodes: int = SWEEP_NODES,
    count: int = SWEEP_JOBS,
    seed: int = SWEEP_SEED,
    queue_limit: int = 8,
    policy: str = "fifo",
) -> List[Dict[str, float]]:
    """The two curves: one point per offered load."""
    return [
        run_service_point(
            rate,
            num_nodes=num_nodes,
            count=count,
            seed=seed,
            queue_limit=queue_limit,
            policy=policy,
        )
        for rate in rates
    ]


def service_gate_metrics() -> Dict[str, float]:
    """The ``service.*`` metrics for the regression gate.

    One unloaded point (pure service capacity, no queueing) and one
    saturated point (queue backs up, admission control sheds).  All
    virtual-time and seeded — deterministic to the bit.
    """
    idle = run_service_point(SWEEP_RATES[0])
    sat = run_service_point(SATURATION_RATE)
    return {
        "service.idle.throughput": idle["throughput"],
        "service.idle.p99_queue_wait": idle["p99_queue_wait"],
        "service.sat.throughput": sat["throughput"],
        "service.sat.p99_queue_wait": sat["p99_queue_wait"],
        "service.sat.completed": sat["completed"],
        "service.sat.rejected": sat["rejected"],
        # SLO loop closure: an unsaturated service must never page, and
        # the saturated point must keep paging (losing either side is a
        # burn-rate calibration regression).
        "service.slo.idle.alerts": idle["alerts"],
        "service.slo.sat.alerts": sat["alerts"],
        "service.slo.sat.budget_burn": sat["budget_burn"],
    }


def print_sweep(points: Optional[List[Dict[str, float]]] = None) -> None:
    """Render the sweep as an aligned table (CLI helper)."""
    points = points if points is not None else service_load_sweep()
    header = (
        f"{'rate':>9} {'throughput':>11} {'p50 wait':>11} {'p99 wait':>11} "
        f"{'done':>5} {'rej':>4} {'alerts':>7}"
    )
    print(header)
    for p in points:
        print(
            f"{p['rate']:>9.0f} {p['throughput']:>11.1f} "
            f"{p['p50_queue_wait']:>11.2e} {p['p99_queue_wait']:>11.2e} "
            f"{p['completed']:>5.0f} {p['rejected']:>4.0f} "
            f"{p.get('alerts', 0.0):>7.0f}"
        )
