"""The benchmark regression gate: ``python -m repro.bench regress``.

The simulator is deterministic, so key benchmark figures are exactly
reproducible run-over-run; any drift is a *code* change.  This module
snapshots a small set of headline numbers — put/get latency and
bandwidth points from the Fig. 3/4 sweeps, the profiled Cannon
wall-clock, and its critical-path breakdown by category — to
``BENCH_<name>.json``, and compares a fresh collection against the
committed baseline with per-metric tolerances and directions.

Exit status is the CI contract: 0 when every metric is within
tolerance (improvements included), nonzero when any metric moved in
its *worse* direction by more than its threshold or disappeared.

Usage::

    python -m repro.bench regress                  # compare vs BENCH_baseline.json
    python -m repro.bench regress --write          # (re)write the baseline
    python -m repro.bench regress --out BENCH_pr.json   # also save this run
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from typing import Dict, List, Optional, Tuple

from repro.util.units import KiB, MiB

#: default committed baseline, relative to the invoking directory
DEFAULT_BASELINE = "BENCH_baseline.json"


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Tolerance contract for one gated metric."""

    #: relative tolerance before a *worsening* move fails the gate
    tolerance: float
    #: which direction is good: "lower" (times) or "higher" (bandwidth)
    better: str = "lower"

    def regressed(self, baseline: float, current: float) -> bool:
        if baseline == 0:
            return abs(current) > self.tolerance
        delta = (current - baseline) / abs(baseline)
        return delta > self.tolerance if self.better == "lower" else -delta > self.tolerance


#: the gate: metric name -> spec.  Times are seconds, bandwidth bytes/s.
GATED_METRICS: Dict[str, MetricSpec] = {
    "latency.put.4B": MetricSpec(0.05),
    "latency.put.8KiB": MetricSpec(0.05),
    "latency.get.4B": MetricSpec(0.05),
    "latency.get.8KiB": MetricSpec(0.05),
    "bandwidth.put.4MiB": MetricSpec(0.05, better="higher"),
    "bandwidth.get.4MiB": MetricSpec(0.05, better="higher"),
    "cannon.elapsed": MetricSpec(0.05),
    "cannon.cp.network": MetricSpec(0.10),
    "cannon.cp.device": MetricSpec(0.10),
    "cannon.cp.host": MetricSpec(0.10),
    "cannon.cp.wait": MetricSpec(0.15),
    "cannon.cp.imbalance": MetricSpec(0.10),
    "fig6.allreduce.64MiB": MetricSpec(0.05),
    "fig6.allreduce.64MiB.ring": MetricSpec(0.05),
    # 1.0 when the auto-selector picks the hierarchical ring on the
    # 2-node x 4-GPU slice; any drop to 0.0 fails the gate.
    "fig6.allreduce.hier_selected": MetricSpec(0.0, better="higher"),
    # Engine self-profiling (telemetry-on allreduce sweep).  The event
    # count is deterministic — any drift is a scheduling/code change;
    # the throughput figures are host wall-clock and vary across
    # machines, so their tolerances only catch order-of-magnitude
    # slowdowns (an accidentally quadratic event loop), not noise.
    "engine.events": MetricSpec(0.02),
    "engine.events_per_sec": MetricSpec(0.90, better="higher"),
    "engine.wall_per_simsec": MetricSpec(4.0),
    # 1024-rank scale sweeps (repro.bench.scale, analytic-rank mode).
    # Event counts and modelled times are deterministic; the
    # throughput figure is wall-clock and only guards against the
    # engine collapsing back into a quadratic regime at scale.
    "scale.1024.allreduce.256KiB": MetricSpec(0.02),
    "scale.1024.allreduce.events": MetricSpec(0.02),
    "scale.1024.allreduce.events_per_sec": MetricSpec(0.90, better="higher"),
    "scale.1024.cannon.per_step": MetricSpec(0.02),
    "scale.1024.cannon.events": MetricSpec(0.02),
    # Cluster-service points (repro.bench.service): seeded virtual-time
    # throughput/latency of the multi-tenant scheduler at an unloaded
    # and a saturated offered load.  Fully deterministic — drift means
    # the scheduler's placement or queueing behaviour changed.
    "service.idle.throughput": MetricSpec(0.02, better="higher"),
    "service.sat.throughput": MetricSpec(0.02, better="higher"),
    "service.sat.p99_queue_wait": MetricSpec(0.02),
    "service.sat.completed": MetricSpec(0.0, better="higher"),
    "service.sat.rejected": MetricSpec(0.0),
    # SLO burn-rate calibration (deterministic like the points above).
    # The idle sweep must stay silent — any alert at an unloaded rate
    # is a calibration regression; the saturated point must keep
    # paging, and its worst error-budget burn must not drift.
    "service.slo.idle.alerts": MetricSpec(0.0),
    "service.slo.sat.alerts": MetricSpec(0.0, better="higher"),
    "service.slo.sat.budget_burn": MetricSpec(0.02),
    # Plan-vs-hand application gate (repro.bench.planbench): optimized
    # plan-lowered Cannon/Minimod at the Fig. 7/8 problem sizes.  The
    # vs_hand ratios are exactly 1.0 (the optimizer derives the hand
    # schedule) and the pass counts are structural — zero tolerance,
    # any drift is a pipeline change.
    "plan.cannon.elapsed": MetricSpec(0.02),
    "plan.cannon.vs_hand": MetricSpec(0.0),
    "plan.minimod.elapsed": MetricSpec(0.02),
    "plan.minimod.vs_hand": MetricSpec(0.0),
    "plan.minimod.vs_naive": MetricSpec(0.02),
    "plan.minimod.ops_coalesced": MetricSpec(0.0, better="higher"),
    "plan.minimod.computes_overlapped": MetricSpec(0.0, better="higher"),
}


def collect() -> Dict[str, float]:
    """Run the gated benchmarks; returns metric name -> value.

    Kept deliberately small (seconds of wall time): two latency points
    and one windowed bandwidth point per op from the microbenchmark
    harness, plus one profiled Cannon run with its critical-path
    breakdown.
    """
    from repro.bench.microbench import diomp_p2p
    from repro.bench.profile import ProfileConfig, run_profiled_cannon
    from repro.hardware import platform_a

    platform = platform_a(with_quirk=False)
    out: Dict[str, float] = {}
    lat_sizes = [4, 8 * KiB]
    for op in ("put", "get"):
        for size, seconds in diomp_p2p(platform, op, lat_sizes, reps=3):
            label = "4B" if size == 4 else "8KiB"
            out[f"latency.{op}.{label}"] = seconds
        ((size, seconds),) = diomp_p2p(
            platform, op, [4 * MiB], reps=1, window=16
        )
        out[f"bandwidth.{op}.4MiB"] = size / seconds

    res = run_profiled_cannon(ProfileConfig(n=128))
    out["cannon.elapsed"] = res.elapsed
    summary = res.critical_path
    for category in ("network", "device", "host", "wait"):
        out[f"cannon.cp.{category}"] = summary.breakdown.get(category, 0.0)
    out["cannon.cp.imbalance"] = summary.imbalance

    # Fig. 6 collective gate: a 2-node x 4-GPU slice of platform A at
    # 64 MiB, where the hierarchical ring must be selected and must
    # hold its wall-clock advantage over the flat ring.
    from repro.bench.collective import allreduce_algorithm_ablation

    times, selected = allreduce_algorithm_ablation(
        platform, 2, 64 * MiB, reps=1, warmup=1
    )
    out["fig6.allreduce.64MiB"] = times["auto"]
    out["fig6.allreduce.64MiB.ring"] = times["ring"]
    out["fig6.allreduce.hier_selected"] = 1.0 if selected == "hier_ring" else 0.0

    # Engine throughput gate: one telemetry-on allreduce sweep on a
    # 2-node slice; events is deterministic, the throughput pair is
    # wall-clock (loose tolerances, see GATED_METRICS).
    from repro.bench.collective import allreduce_engine_stats

    engine = allreduce_engine_stats(platform, 2, 1 * MiB, reps=2)
    out["engine.events"] = float(engine["events"])
    out["engine.events_per_sec"] = engine["events_per_sec"]
    out["engine.wall_per_simsec"] = engine["wall_per_simsec"]

    # 1024-rank scale gate: analytic allreduce sweep plus truncated
    # Cannon rotation (see repro.bench.scale).
    from repro.bench.scale import scale_gate_metrics

    out.update(scale_gate_metrics())

    # Multi-tenant service gate: one unloaded and one saturated point
    # of the seeded job-stream sweep (see repro.bench.service).
    from repro.bench.service import service_gate_metrics

    out.update(service_gate_metrics())

    # Plan-vs-hand gate: optimized plan-lowered Cannon and Minimod at
    # figure scale must match the hand-written loops exactly (see
    # repro.bench.planbench and docs/PLAN.md).
    from repro.bench.planbench import plan_gate_metrics

    out.update(plan_gate_metrics())
    return out


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    specs: Optional[Dict[str, MetricSpec]] = None,
) -> List[Tuple[str, str, Optional[float], Optional[float]]]:
    """Per-metric verdicts: ``(name, status, baseline, current)``.

    Status is ``ok`` (within tolerance), ``improved`` (moved the good
    way beyond tolerance), ``regressed`` (moved the bad way beyond
    tolerance), ``missing`` (in baseline, absent now — fails), or
    ``new`` (absent from baseline — passes; refresh with ``--write``).
    """
    specs = GATED_METRICS if specs is None else specs
    rows: List[Tuple[str, str, Optional[float], Optional[float]]] = []
    for name in sorted(baseline):
        spec = specs.get(name, MetricSpec(0.05))
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            rows.append((name, "missing", base, None))
            continue
        if spec.regressed(base, cur):
            status = "regressed"
        elif spec.regressed(cur, base):
            # Symmetric check: the *baseline* is out-of-tolerance worse
            # than the current value, i.e. we improved beyond noise.
            status = "improved"
        else:
            status = "ok"
        rows.append((name, status, base, cur))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, "new", None, current[name]))
    return rows


def write_snapshot(path: str, metrics: Dict[str, float], name: str) -> None:
    doc = {
        "name": name,
        "workload": (
            "diomp-p2p microbench + profiled cannon (n=128) + "
            "fig6 allreduce algorithm ablation (64 MiB, 2 nodes) + "
            "1024-rank analytic allreduce/cannon scale sweeps + "
            "multi-tenant service idle/saturated load points with "
            "SLO burn-rate alert calibration + plan-vs-hand "
            "Cannon/Minimod comparison at figure scale"
        ),
        "metrics": metrics,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: str) -> Dict[str, float]:
    with open(path) as fh:
        doc = json.load(fh)
    return doc["metrics"]


def render_report(rows) -> str:
    from repro.bench.report import Table

    table = Table("Benchmark regression gate", ["metric", "baseline", "current", "delta", "status"])
    for name, status, base, cur in rows:
        if base is not None and cur is not None and base != 0:
            delta = f"{(cur - base) / abs(base) * 100:+.2f}%"
        else:
            delta = "n/a"
        fmt = lambda v: "n/a" if v is None else f"{v:.6g}"
        table.add_row(name, fmt(base), fmt(cur), delta, status)
    return table.render()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench regress",
        description="Benchmark regression gate against a committed baseline.",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline snapshot to compare against (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="write the collected metrics to the baseline path and exit 0",
    )
    parser.add_argument(
        "--out",
        metavar="BENCH_NAME.json",
        help="also write this run's snapshot to the given path",
    )
    args = parser.parse_args(argv)

    current = collect()
    if args.out:
        stem = args.out.rsplit("/", 1)[-1]
        write_snapshot(args.out, current, name=stem.replace(".json", ""))
        print(f"snapshot     : {args.out}")
    if args.write:
        write_snapshot(args.baseline, current, name="baseline")
        print(f"baseline     : {args.baseline} (rewritten)")
        return 0

    try:
        baseline = load_snapshot(args.baseline)
    except FileNotFoundError:
        print(
            f"no baseline at {args.baseline}; create one with "
            "`python -m repro.bench regress --write`"
        )
        return 2
    rows = compare(current, baseline)
    print(render_report(rows))
    failures = [r for r in rows if r[1] in ("regressed", "missing")]
    if failures:
        print(f"\nFAIL: {len(failures)} metric(s) regressed beyond tolerance")
        return 1
    print("\nPASS: all gated metrics within tolerance")
    return 0
