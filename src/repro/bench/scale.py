"""1024-rank scaling sweeps: the engine-scalability benchmarks.

The paper's weak-scaling story stops at 64 GPUs; these sweeps drive
the simulator itself at 1024 ranks (platform A, 256 nodes x 4 GPUs)
and report the engine self-profiler's numbers alongside the modelled
collective times.  Both run in *analytic-rank* mode
(:meth:`~repro.cluster.world.World.enable_analytic`): allocations are
timing-only, so the sweep is data-free and the wall-clock cost is
pure scheduling + pricing.

Two workloads:

* :func:`allreduce_scale_stats` — the full-fidelity 1024-rank
  AllReduce rendezvous (every member arrives, the hierarchical ring is
  priced once, everyone completes together).
* :func:`cannon_scale_stats` — a *truncated* Cannon ring rotation.  A
  full 1024-rank rotation is O(P^2) simulated events (≈4M resumes);
  the steady-state per-step cost is measured over a few steps and the
  full rotation extrapolated — the ring steps are homogeneous
  (identical put/fence/barrier pattern per step), which
  ``tests/test_sim_scale.py`` verifies against a full small-scale run.

``scale_gate_metrics`` is the regression-gate hook: the event counts
and virtual times are deterministic (tolerance catches any scheduling
change), the throughput figure is wall-clock with a loose tolerance.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

from repro.cluster.spmd import SpmdConfig, TelemetryConfig, run_spmd
from repro.cluster.world import World
from repro.core.runtime import DiompParams, DiompRuntime
from repro.hardware.platforms import PlatformSpec, get_platform
from repro.obs import Observability
from repro.obs.sampling import SpanBudget
from repro.util.units import KiB, MiB

#: platform A nodes for the 1024-rank configuration (256 x 4 GPUs)
SCALE_NODES = 256
SCALE_RANKS = 1024

#: span-memory ceiling for scale sweeps (the telemetry benchmark
#: exercises the budget machinery itself; here it just bounds memory)
SCALE_BUDGET = SpanBudget(max_bytes=1 * MiB, per_track_head=1, per_track_reservoir=4)

#: ring steps the truncated Cannon rotation simulates
CANNON_STEPS = 2

#: Cannon matrix size at 1024 ranks (stripe width 16)
CANNON_N = 16384


def _scale_world(platform: PlatformSpec, num_nodes: int) -> World:
    # 1024 ranks legitimately emit >1000 per-rank series; raise the
    # cardinality cap so the sweep is not measuring dropped-series
    # bookkeeping (the telemetry benchmark covers that regime).
    obs = Observability(max_series_per_metric=8192)
    return World(platform, num_nodes=num_nodes, obs=obs, analytic=True)


def allreduce_scale_stats(
    platform: PlatformSpec,
    num_nodes: int,
    size: int,
    reps: int = 2,
    span_budget: Optional[SpanBudget] = SCALE_BUDGET,
) -> Dict[str, float]:
    """Full-fidelity analytic AllReduce sweep at ``4 * num_nodes`` ranks.

    Returns the engine profiler's numbers plus ``allreduce_seconds``
    (modelled per-iteration latency, deterministic), ``ranks``, and
    ``wall_seconds`` (host cost of the whole sweep).
    """
    world = _scale_world(platform, num_nodes)
    DiompRuntime(world, DiompParams(segment_size=4 * size + (1 << 20)))

    def prog(ctx):
        # No virtual= flag: analytic mode forces it world-wide.
        send = ctx.diomp.alloc(size)
        recv = ctx.diomp.alloc(size)
        ctx.diomp.barrier()
        t0 = ctx.sim.now
        for _ in range(reps):
            ctx.diomp.allreduce(send, recv)
        latency = (ctx.sim.now - t0) / reps
        ctx.diomp.barrier()
        return latency

    config = SpmdConfig(telemetry=TelemetryConfig(span_budget=span_budget))
    wall_t0 = perf_counter()
    res = run_spmd(world, prog, config=config)
    stats: Dict[str, float] = world.obs.engine.to_dict()
    stats["wall_seconds"] = perf_counter() - wall_t0
    stats["ranks"] = world.nranks
    stats["allreduce_seconds"] = max(res.results)
    stats["virtual_elapsed"] = res.elapsed
    stats["span_stats"] = world.obs.span_stats().to_dict()
    return stats


def cannon_scale_stats(
    platform: PlatformSpec,
    num_nodes: int,
    n: int = CANNON_N,
    steps: int = CANNON_STEPS,
    span_budget: Optional[SpanBudget] = SCALE_BUDGET,
) -> Dict[str, float]:
    """Truncated analytic Cannon rotation at ``4 * num_nodes`` ranks.

    Simulates ``steps`` ring steps in full fidelity (put + fence +
    barrier per step) and extrapolates the homogeneous rotation:
    ``predicted_full_seconds = per_step_seconds * P``.
    """
    from repro.apps.cannon import CannonConfig, run_cannon

    world = _scale_world(platform, num_nodes)
    if span_budget is not None:
        world.obs.set_span_budget(span_budget)
    cfg = CannonConfig(n=n, execute=False, steps=steps)
    wall_t0 = perf_counter()
    res = run_cannon(world, cfg)
    stats: Dict[str, float] = world.obs.engine.to_dict()
    stats["wall_seconds"] = perf_counter() - wall_t0
    stats["ranks"] = world.nranks
    per_step = max(r["elapsed"] for r in res.results) / steps
    stats["steps"] = steps
    stats["per_step_seconds"] = per_step
    stats["predicted_full_seconds"] = per_step * world.nranks
    return stats


def scale_gate_metrics() -> Dict[str, float]:
    """The ``scale.1024.*`` metrics for the regression gate."""
    spec = get_platform("A")
    ar = allreduce_scale_stats(spec, SCALE_NODES, 256 * KiB, reps=2)
    cn = cannon_scale_stats(spec, SCALE_NODES)
    return {
        "scale.1024.allreduce.256KiB": ar["allreduce_seconds"],
        "scale.1024.allreduce.events": float(ar["events"]),
        "scale.1024.allreduce.events_per_sec": ar["events_per_sec"],
        "scale.1024.cannon.per_step": cn["per_step_seconds"],
        "scale.1024.cannon.events": float(cn["events"]),
    }
