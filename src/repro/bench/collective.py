"""Collective microbenchmarks (Fig. 6).

For each platform configuration of §4.3 — A: 16 nodes x 4 A100 (64
GPUs), B: 8 nodes x 8 GCD (64 devices), C: 16 GH200 nodes — measure
Broadcast and AllReduce latency for 128 KiB..64 MiB on both stacks:

* **DiOMP** — OMPCCL over the platform's vendor library (NCCL/RCCL),
* **MPI** — the device-aware collectives of the mini-MPI baseline.

The reported quantity is the paper's heatmap cell:
``log10(t_mpi / t_diomp)`` — positive means DiOMP is faster.

Methodology follows the paper: warm-up iterations first (this also
absorbs the one-time OMPCCL channel setup, which the paper calls out
as the small-message penalty), then the average of ``reps`` timed
iterations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.spmd import run_spmd
from repro.cluster.world import World
from repro.core.runtime import DiompParams, DiompRuntime
from repro.hardware.platforms import PlatformSpec, get_platform
from repro.mpi import MpiWorld
from repro.mpi import collectives as mpi_coll
from repro.util.errors import CommunicationError, ConfigurationError
from repro.util.units import KiB, MiB
from repro.xccl.algorithms import ALGORITHMS

#: Fig. 6 message sizes (128 KiB .. 64 MiB)
COLLECTIVE_SIZES = [128 * KiB, 512 * KiB, 2 * MiB, 8 * MiB, 32 * MiB, 64 * MiB]

#: §4.3 cluster configurations: platform -> number of nodes
FIG6_NODES = {"A": 16, "B": 8, "C": 16}


def diomp_collective_latency(
    platform: PlatformSpec,
    num_nodes: int,
    op: str,
    size: int,
    reps: int = 3,
    warmup: int = 1,
) -> float:
    """Average latency of one OMPCCL collective at one message size."""
    if op not in ("bcast", "allreduce"):
        raise ConfigurationError(f"op must be bcast|allreduce, got {op!r}")
    world = World(platform, num_nodes=num_nodes)
    DiompRuntime(world, DiompParams(segment_size=4 * size + (1 << 20)))

    def prog(ctx):
        send = ctx.diomp.alloc(size, virtual=True)
        recv = ctx.diomp.alloc(size, virtual=True)
        ctx.diomp.barrier()
        for _ in range(warmup):
            if op == "bcast":
                ctx.diomp.bcast(send, root_rank=0)
            else:
                ctx.diomp.allreduce(send, recv)
        ctx.diomp.barrier()
        t0 = ctx.sim.now
        for _ in range(reps):
            if op == "bcast":
                ctx.diomp.bcast(send, root_rank=0)
            else:
                ctx.diomp.allreduce(send, recv)
        return (ctx.sim.now - t0) / reps

    res = run_spmd(world, prog)
    return max(res.results)


def mpi_collective_latency(
    platform: PlatformSpec,
    num_nodes: int,
    op: str,
    size: int,
    reps: int = 3,
    warmup: int = 1,
) -> float:
    """Average latency of one MPI collective on device buffers."""
    if op not in ("bcast", "allreduce"):
        raise ConfigurationError(f"op must be bcast|allreduce, got {op!r}")
    world = World(platform, num_nodes=num_nodes)
    mpi = MpiWorld(world)

    def prog(ctx):
        comm = mpi.comm_world(ctx.rank)
        send = MemRef.device(ctx.device.malloc(size, virtual=True))
        recv = MemRef.device(ctx.device.malloc(size, virtual=True))

        def one() -> None:
            if op == "bcast":
                mpi_coll.bcast(comm, send, root=0)
            else:
                mpi_coll.allreduce(comm, send, recv, np.float64)

        for _ in range(warmup):
            one()
        mpi_coll.barrier(comm)
        t0 = ctx.sim.now
        for _ in range(reps):
            one()
        return (ctx.sim.now - t0) / reps

    res = run_spmd(world, prog)
    return max(res.results)


def allreduce_algorithm_ablation(
    platform: PlatformSpec,
    num_nodes: int,
    size: int,
    reps: int = 3,
    warmup: int = 1,
) -> Tuple[Dict[str, float], str]:
    """AllReduce latency per collective algorithm at one message size.

    Runs the same AllReduce once under auto-selection and once per
    forced algorithm, each in a fresh world (algorithms the topology
    cannot run are skipped).  Returns ``(times, selected)`` where
    ``times`` maps ``"auto"`` and each runnable algorithm name to the
    average per-iteration latency and ``selected`` names the algorithm
    the auto-selector picked.
    """
    times: Dict[str, float] = {}
    selected = ""
    for algo in (None, *ALGORITHMS):
        world = World(platform, num_nodes=num_nodes)
        DiompRuntime(world, DiompParams(segment_size=4 * size + (1 << 20)))

        def prog(ctx, algo=algo):
            send = ctx.diomp.alloc(size, virtual=True)
            recv = ctx.diomp.alloc(size, virtual=True)
            ctx.diomp.barrier()
            for _ in range(warmup):
                ctx.diomp.allreduce(send, recv, algo=algo)
            ctx.diomp.barrier()
            t0 = ctx.sim.now
            for _ in range(reps):
                ctx.diomp.allreduce(send, recv, algo=algo)
            return (ctx.sim.now - t0) / reps

        try:
            res = run_spmd(world, prog)
        except CommunicationError:
            continue  # algorithm not runnable on this topology
        times[algo or "auto"] = max(res.results)
        if algo is None:
            counts = {
                name: world.obs.value("xccl.algo", op="all_reduce", algo=name)
                for name in ALGORITHMS
            }
            selected = max(counts, key=counts.get)
    return times, selected


def allreduce_engine_stats(
    platform: PlatformSpec,
    num_nodes: int,
    size: int,
    reps: int = 2,
    span_budget=None,
) -> Dict[str, float]:
    """Engine self-profiler numbers for a telemetry-on allreduce sweep.

    Runs ``reps`` AllReduce iterations per rank with the full
    observability stack enabled (spans, metrics, engine profiling,
    optionally a :class:`~repro.obs.sampling.SpanBudget`) and returns
    ``world.obs.engine.to_dict()`` extended with the span store's
    retention stats under ``"span_stats"`` — the numbers the regression
    gate and the scale benchmark report (``sim.events_per_sec``,
    ``sim.wall_per_simsec``).
    """
    from repro.cluster.spmd import SpmdConfig, TelemetryConfig

    world = World(platform, num_nodes=num_nodes)
    DiompRuntime(world, DiompParams(segment_size=4 * size + (1 << 20)))

    def prog(ctx):
        send = ctx.diomp.alloc(size, virtual=True)
        recv = ctx.diomp.alloc(size, virtual=True)
        ctx.diomp.barrier()
        for _ in range(reps):
            ctx.diomp.allreduce(send, recv)
        ctx.diomp.barrier()

    config = SpmdConfig(telemetry=TelemetryConfig(span_budget=span_budget))
    run_spmd(world, prog, config=config)
    stats: Dict[str, float] = world.obs.engine.to_dict()
    stats["span_stats"] = world.obs.span_stats().to_dict()
    return stats


def ratio_heatmap(
    platforms: Sequence[str] = ("A", "B", "C"),
    ops: Sequence[str] = ("bcast", "allreduce"),
    sizes: Sequence[int] = tuple(COLLECTIVE_SIZES),
    reps: int = 3,
) -> Dict[Tuple[str, str], List[Tuple[int, float]]]:
    """The full Fig. 6 grid: (platform, op) -> [(size, log10 ratio)]."""
    heatmap: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    for letter in platforms:
        spec = get_platform(letter)
        nodes = FIG6_NODES[letter]
        for op in ops:
            cells = []
            for size in sizes:
                t_diomp = diomp_collective_latency(spec, nodes, op, size, reps=reps)
                t_mpi = mpi_collective_latency(spec, nodes, op, size, reps=reps)
                cells.append((size, math.log10(t_mpi / t_diomp)))
            heatmap[(letter, op)] = cells
    return heatmap
