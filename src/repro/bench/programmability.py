"""Programmability comparison (the Listings 1/2 claim).

The paper argues DiOMP "requires approximately half the lines of code"
of MPI for the Minimod halo exchange.  Our two implementations are
executable Python rather than C, but the structural claim is testable:
count the effective source lines of the halo-exchange section of each
variant (the per-step communication block, not the whole app) plus the
number of distinct communication API calls each needs.
"""

from __future__ import annotations

import dataclasses
import inspect
import re
from typing import Dict

from repro.apps import minimod


@dataclasses.dataclass(frozen=True)
class HaloExchangeComplexity:
    """Static complexity of one halo-exchange implementation."""

    variant: str
    sloc: int
    api_calls: int


def _halo_block(source: str, start_marker: str, end_marker: str) -> str:
    start = source.index(start_marker)
    end = source.index(end_marker, start)
    return source[start:end]


def _sloc(block: str) -> int:
    """Logical source lines: continuation lines of one statement (open
    brackets) count once, comments and blanks not at all — so the
    comparison is formatting-independent."""
    count = 0
    depth = 0
    for raw in block.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if depth == 0:
            count += 1
        depth += line.count("(") + line.count("[") + line.count("{")
        depth -= line.count(")") + line.count("]") + line.count("}")
        depth = max(0, depth)
    return count


def measure_halo_exchange() -> Dict[str, HaloExchangeComplexity]:
    """Extract the halo-exchange blocks of both Minimod variants."""
    diomp_src = inspect.getsource(minimod.minimod_diomp)
    mpi_src = inspect.getsource(minimod.minimod_mpi)
    diomp_block = _halo_block(
        diomp_src, "# Halo exchange (Listing 1)", "diomp.barrier()"
    )
    mpi_block = _halo_block(
        mpi_src, "# Halo exchange (Listing 2)", "mpi_coll.barrier(comm)"
    )
    diomp_calls = len(re.findall(r"diomp\.(put|get|fence)\(", diomp_block))
    mpi_calls = len(
        re.findall(r"comm\.(isend|irecv)\(|waitall\(", mpi_block)
    )
    return {
        "diomp": HaloExchangeComplexity("diomp", _sloc(diomp_block), diomp_calls),
        "mpi": HaloExchangeComplexity("mpi", _sloc(mpi_block), mpi_calls),
    }
