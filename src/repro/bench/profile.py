"""Profiled benchmark runs: Chrome trace + metrics snapshot.

``python -m repro.bench --profile out.json`` runs a 4-rank Cannon
matmul (2 nodes x 2 ranks/node, so the stripe ring crosses both the
conduit and the intra-node IPC path) followed by an asymmetric-buffer
ping phase that exercises the second-level pointer cache.  It writes

* ``out.json`` — a Chrome trace-event file (load it at ui.perfetto.dev
  or chrome://tracing): one track per rank with the nested RMA /
  collective spans, plus an instant-event track from the Tracer,
* ``out.metrics.json`` — the full metrics snapshot (per-path RMA
  bytes, pointer-cache hit rate, stream-pool high-water marks, ...),

and prints the plain-text dashboard to stdout.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.apps.cannon import CannonConfig, cannon_diomp
from repro.cluster.memref import MemRef
from repro.cluster.spmd import SpmdResult, run_spmd
from repro.cluster.world import RankContext, World
from repro.hardware import platform_a
from repro.obs.export import write_metrics_snapshot


@dataclasses.dataclass(frozen=True)
class ProfileConfig:
    """Shape of the profiled workload."""

    n: int = 256
    num_nodes: int = 2
    ranks_per_node: int = 2
    #: bytes of the rank-r asymmetric block in the ping phase
    asym_unit: int = 4096
    #: gets per rank in the ping phase (first misses, rest hit)
    ping_rounds: int = 2


def _profiled_program(ctx: RankContext, cfg: CannonConfig, pcfg: ProfileConfig) -> Dict[str, object]:
    """Cannon, then an asymmetric ping that exercises the pointer cache."""
    result = cannon_diomp(ctx, cfg)
    diomp = ctx.diomp
    with diomp.runtime.obs.span("profile.asym_ping", rank=ctx.rank):
        abuf = diomp.alloc_asymmetric((ctx.rank + 1) * pcfg.asym_unit)
        if abuf.data is not None:
            abuf.typed(np.uint8)[:] = ctx.rank
        diomp.barrier()
        right = (ctx.rank + 1) % ctx.nranks
        dst = np.zeros((right + 1) * pcfg.asym_unit, dtype=np.uint8)
        for _ in range(pcfg.ping_rounds):
            diomp.get(right, abuf, MemRef.host(ctx.node, dst))
            diomp.fence()
        diomp.barrier()
        diomp.free_asymmetric(abuf)
    return result


def run_profiled_cannon(pcfg: Optional[ProfileConfig] = None) -> SpmdResult:
    """Run the profiling workload; returns its :class:`SpmdResult`."""
    from repro.core.runtime import DiompParams, DiompRuntime

    pcfg = pcfg or ProfileConfig()
    world = World(
        platform_a(with_quirk=False),
        num_nodes=pcfg.num_nodes,
        ranks_per_node=pcfg.ranks_per_node,
    )
    cfg = CannonConfig(n=pcfg.n, execute=True)
    stripe_bytes = cfg.stripe(world.nranks) * cfg.n * cfg.itemsize
    asym_bytes = world.nranks * pcfg.asym_unit + (1 << 16)
    need = 6 * stripe_bytes + asym_bytes + (1 << 20)
    DiompRuntime(world, DiompParams(segment_size=need))
    return run_spmd(world, _profiled_program, cfg, pcfg)


def write_profile(out_path: str, pcfg: Optional[ProfileConfig] = None) -> SpmdResult:
    """Run the workload and write ``out_path`` (Chrome trace) plus
    ``<out_path minus .json>.metrics.json`` (metrics snapshot)."""
    res = run_profiled_cannon(pcfg)
    world = res.world
    nevents = world.obs.write_chrome_trace(
        out_path,
        tracer=world.tracer,
        metadata={"workload": "cannon+asym-ping", "nranks": world.nranks},
    )
    stem = out_path[:-5] if out_path.endswith(".json") else out_path
    metrics_path = f"{stem}.metrics.json"
    write_metrics_snapshot(
        metrics_path,
        world.obs.registry,
        extra={"elapsed_virtual_s": res.elapsed, "nranks": world.nranks},
    )
    print(world.obs.dashboard(title="profiled cannon run", with_spans=True))
    print(f"chrome trace : {out_path} ({nevents} events)")
    print(f"metrics      : {metrics_path}")
    return res
