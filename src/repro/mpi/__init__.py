"""Mini-MPI: the paper's baseline programming model.

A deliberately faithful subset of MPI running over the same simulated
fabric as the DiOMP stack, so every comparison in the evaluation is
apples-to-apples:

* two-sided point-to-point with tag matching, eager/rendezvous
  protocols and non-blocking requests (:mod:`repro.mpi.comm`),
* device-aware ("CUDA-aware") data movement: MemRefs may live in GPU
  memory and take GPUDirect paths,
* one-sided RMA windows with lock/unlock epochs, put/get/flush and
  fence (:mod:`repro.mpi.rma`) — the comparison target of Figs. 3–4,
* collectives with the standard algorithm switches (binomial /
  van-de-Geijn broadcast, recursive-doubling / Rabenseifner allreduce)
  (:mod:`repro.mpi.collectives`) — the comparison target of Fig. 6.

Software overheads are calibrated in :class:`~repro.mpi.params.MpiParams`
to Cray-MPICH/OpenMPI-like values; the MPI RMA path carries the
higher per-op and synchronization costs the paper attributes to MPI
window semantics.
"""

from repro.mpi.params import MpiParams
from repro.mpi.requests import Request, waitall, testall
from repro.mpi.comm import MpiWorld, Communicator, ANY_SOURCE, ANY_TAG
from repro.mpi.rma import Window

__all__ = [
    "MpiParams",
    "Request",
    "waitall",
    "testall",
    "MpiWorld",
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
    "Window",
]
