"""Two-sided point-to-point communication and communicators.

The matching engine implements MPI semantics: FIFO matching on
``(source, tag)`` per communicator context, wildcards, and the
eager/rendezvous protocol switch:

* **eager** (≤ ``eager_threshold``): the payload is snapshotted at send
  time and travels immediately; the send completes locally once the
  payload is buffered.  On arrival it either lands in a matching posted
  receive or is queued as *unexpected*.
* **rendezvous** (larger): a small RTS control message travels first;
  when the receiver matches it, a CTS returns and the payload moves
  directly between the source and destination buffers (zero copy).
  The send completes only when the payload transfer does.

Device awareness is inherited from :class:`~repro.cluster.MemRef`:
sending from a device buffer takes GPUDirect paths with the NIC quirk
rules applied, exactly like CUDA-aware Cray MPICH.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.world import World
from repro.mpi.params import MpiParams
from repro.mpi.requests import Request
from repro.sim import Barrier, Future
from repro.util.errors import CommunicationError

ANY_SOURCE = -1
ANY_TAG = -1

#: wire size of RTS/CTS control messages
_CTRL_BYTES = 64

_context_ids = itertools.count(1)


@dataclasses.dataclass
class _Envelope:
    source: int  # communicator-relative rank
    tag: int
    nbytes: int

    def matches(self, want_source: int, want_tag: int) -> bool:
        return (want_source in (ANY_SOURCE, self.source)) and (
            want_tag in (ANY_TAG, self.tag)
        )


@dataclasses.dataclass
class _Inbound:
    """An arrived-but-unmatched message (eager data or rendezvous RTS)."""

    envelope: _Envelope
    kind: str  # "eager" | "rts"
    data: Optional[bytes] = None  # eager payload snapshot
    sender: Optional["_PendingSend"] = None  # rendezvous sender record


@dataclasses.dataclass
class _PostedRecv:
    source: int
    tag: int
    memref: MemRef
    future: Future


@dataclasses.dataclass
class _PendingSend:
    """Sender-side record of a rendezvous send awaiting CTS."""

    src_world_rank: int
    memref: MemRef
    future: Future


def _payload_transfer(
    world,
    params: MpiParams,
    src_ep,
    dst_ep,
    nbytes: int,
    gpu_memory: bool,
    on_complete,
    extra_latency: float,
) -> None:
    """Move a message payload, honouring the MPI library's data path.

    Classic MPI stacks stage same-node device-to-device traffic through
    host memory (two hops over the host links) instead of the direct
    NVLink/xGMI path; inter-node GPU traffic uses GPUDirect RDMA.
    """
    staged = (
        params.intra_node_device_staging
        and gpu_memory
        and src_ep.kind == "gpu"
        and dst_ep.kind == "gpu"
        and src_ep.node == dst_ep.node
        and src_ep != dst_ep
    )
    rails = (
        world.platform.node.nics_per_node
        if nbytes >= params.multirail_threshold
        else 1
    )
    if not staged:
        world.fabric.transfer(
            src_ep,
            dst_ep,
            nbytes,
            operation="mpi_put",
            gpu_memory=gpu_memory,
            on_complete=on_complete,
            extra_latency=extra_latency,
            bandwidth_factor=params.bw_efficiency,
            rails=rails,
        )
        return
    host = world.topology.host(src_ep.node)

    def second_hop() -> None:
        world.fabric.transfer(
            host,
            dst_ep,
            nbytes,
            operation="mpi_put",
            gpu_memory=True,
            on_complete=on_complete,
            bandwidth_factor=params.bw_efficiency,
        )

    world.fabric.transfer(
        src_ep,
        host,
        nbytes,
        operation="mpi_put",
        gpu_memory=True,
        on_complete=second_hop,
        extra_latency=extra_latency,
        bandwidth_factor=params.bw_efficiency,
    )


class _MatchingEngine:
    """Per (context, world-rank) receive-side matching state."""

    def __init__(self) -> None:
        self.unexpected: List[_Inbound] = []
        self.posted: List[_PostedRecv] = []

    def match_posted(self, envelope: _Envelope) -> Optional[_PostedRecv]:
        for i, recv in enumerate(self.posted):
            if envelope.matches(recv.source, recv.tag):
                return self.posted.pop(i)
        return None

    def match_unexpected(self, source: int, tag: int) -> Optional[_Inbound]:
        for i, msg in enumerate(self.unexpected):
            if msg.envelope.matches(source, tag):
                return self.unexpected.pop(i)
        return None


class MpiWorld:
    """Shared MPI state for one world (the "MPI library instance")."""

    def __init__(self, world: World, params: Optional[MpiParams] = None) -> None:
        self.world = world
        self.params = params or MpiParams.for_platform(world.platform)
        self._engines: Dict[Tuple[int, int], _MatchingEngine] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self._world_comms: List[Communicator] = [
            Communicator(self, rank, list(range(world.nranks)), context_id=0)
            for rank in range(world.nranks)
        ]
        self._barriers: Dict[Tuple[int, int], Barrier] = {}
        self._split_state: Dict[Tuple[int, int], dict] = {}
        #: per-instance RMA window registry (see repro.mpi.rma.Window);
        #: instance-scoped so distinct worlds can never collide
        self.window_registry: Dict[tuple, dict] = {}

    def comm_world(self, rank: int) -> "Communicator":
        """The COMM_WORLD view for one world rank."""
        return self._world_comms[rank]

    def engine(self, context_id: int, world_rank: int) -> _MatchingEngine:
        key = (context_id, world_rank)
        if key not in self._engines:
            self._engines[key] = _MatchingEngine()
        return self._engines[key]

    def coordination_barrier(self, context_id: int, size: int) -> Barrier:
        """Zero-cost control-plane barrier per communicator (used for
        window/communicator creation bookkeeping)."""
        key = (context_id, size)
        if key not in self._barriers:
            self._barriers[key] = Barrier(self.world.sim, size, name=f"mpi-coord{key}")
        return self._barriers[key]


class Communicator:
    """One rank's view of a communicator (``MPI_Comm``)."""

    def __init__(
        self,
        mpi: MpiWorld,
        world_rank: int,
        group: List[int],
        context_id: Optional[int] = None,
    ) -> None:
        if world_rank not in group:
            raise CommunicationError(f"rank {world_rank} is not in the group {group}")
        self.mpi = mpi
        self.world_rank = world_rank
        self.group = group
        self.context_id = next(_context_ids) if context_id is None else context_id
        self.rank = group.index(world_rank)
        self._split_seq = 0

    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def sim(self):
        return self.mpi.world.sim

    def _check_peer(self, peer: int) -> int:
        if not 0 <= peer < self.size:
            raise CommunicationError(
                f"rank {peer} out of range for communicator of size {self.size}"
            )
        return self.group[peer]

    def _host(self, world_rank: int):
        return self.mpi.world.topology.host(self.mpi.world.ranks[world_rank].node)

    # -- sends ---------------------------------------------------------------

    def isend(self, memref: MemRef, dest: int, tag: int = 0) -> Request:
        """Non-blocking send (``MPI_Isend``)."""
        if tag < 0:
            raise CommunicationError(f"negative tag {tag}")
        world_dest = self._check_peer(dest)
        params = self.mpi.params
        world = self.mpi.world
        envelope = _Envelope(self.rank, tag, memref.nbytes)
        self.mpi.messages_sent += 1
        self.mpi.bytes_sent += memref.nbytes
        engine = self.mpi.engine(self.context_id, world_dest)

        if memref.nbytes <= params.eager_threshold:
            data = None if memref.is_virtual else memref.view().tobytes()
            send_future = Future(world.sim, description=f"isend-eager t{tag}")
            # Local completion: the payload is buffered after the send
            # overhead; the application buffer is immediately reusable.
            world.sim.call_later(params.send_overhead, send_future.fire)
            def deliver() -> None:
                self._deliver_eager(engine, envelope, data)

            # Envelope+payload travel together for eager messages.
            _payload_transfer(
                world,
                params,
                memref.endpoint,
                self._recv_endpoint_hint(world_dest, memref),
                memref.nbytes,
                gpu_memory=memref.is_device,
                on_complete=deliver,
                extra_latency=params.send_overhead
                + world.platform.node.nic.message_overhead,
            )
            return Request(send_future, kind="isend")

        # Rendezvous: RTS -> match -> CTS -> direct payload transfer.
        send_future = Future(world.sim, description=f"isend-rndv t{tag}")
        pending = _PendingSend(self.world_rank, memref, send_future)
        inbound = _Inbound(envelope, "rts", sender=pending)

        def deliver_rts() -> None:
            recv = engine.match_posted(envelope)
            if recv is None:
                engine.unexpected.append(inbound)
            else:
                self._start_rendezvous_payload(pending, recv, world_dest)

        world.fabric.transfer(
            self._host(self.world_rank),
            self._host(world_dest),
            _CTRL_BYTES,
            operation="mpi_put",
            gpu_memory=False,
            on_complete=deliver_rts,
            extra_latency=params.send_overhead + params.rendezvous_overhead,
        )
        return Request(send_future, kind="isend")

    def _recv_endpoint_hint(self, world_dest: int, src_memref: MemRef):
        """Eager payloads land in a bounce buffer near the receiver: on
        the destination host for host data, on the destination rank's
        primary device for device data (GPUDirect into a staging pool)."""
        if src_memref.is_device:
            return self.mpi.world.ranks[world_dest].device.device_id
        return self._host(world_dest)

    def _deliver_eager(
        self, engine: _MatchingEngine, envelope: _Envelope, data: Optional[bytes]
    ) -> None:
        recv = engine.match_posted(envelope)
        if recv is None:
            engine.unexpected.append(_Inbound(envelope, "eager", data=data))
            return
        self._complete_eager_recv(recv, envelope, data)

    def _complete_eager_recv(
        self, recv: _PostedRecv, envelope: _Envelope, data: Optional[bytes]
    ) -> None:
        if envelope.nbytes > recv.memref.nbytes:
            raise CommunicationError(
                f"message of {envelope.nbytes} bytes overflows receive "
                f"buffer of {recv.memref.nbytes} bytes"
            )
        if data is not None:
            if recv.memref.is_virtual:
                raise CommunicationError("real payload received into virtual buffer")
            recv.memref.view()[: envelope.nbytes] = np.frombuffer(data, dtype=np.uint8)
        recv.future.fire((envelope.source, envelope.tag, envelope.nbytes))

    def _start_rendezvous_payload(
        self, pending: _PendingSend, recv: _PostedRecv, world_dest: int
    ) -> None:
        params = self.mpi.params
        world = self.mpi.world
        if pending.memref.nbytes > recv.memref.nbytes:
            raise CommunicationError(
                f"message of {pending.memref.nbytes} bytes overflows receive "
                f"buffer of {recv.memref.nbytes} bytes"
            )
        dst = recv.memref.slice(0, pending.memref.nbytes)
        src = pending.memref

        def payload_done() -> None:
            dst.copy_from(src)
            envelope_info = (self.rank, -2, src.nbytes)
            pending.future.fire()
            recv.future.fire(envelope_info)

        def cts_arrived() -> None:
            _payload_transfer(
                world,
                params,
                src.endpoint,
                dst.endpoint,
                src.nbytes,
                gpu_memory=src.is_device or dst.is_device,
                on_complete=payload_done,
                extra_latency=world.platform.node.nic.message_overhead,
            )

        # CTS travels back to the sender's host first.
        world.fabric.transfer(
            self._host(world_dest),
            self._host(pending.src_world_rank),
            _CTRL_BYTES,
            operation="mpi_put",
            gpu_memory=False,
            on_complete=cts_arrived,
            extra_latency=params.rendezvous_overhead,
        )

    def send(self, memref: MemRef, dest: int, tag: int = 0) -> None:
        """Blocking send (``MPI_Send``)."""
        self.isend(memref, dest, tag).wait()

    # -- receives -------------------------------------------------------------

    def irecv(self, memref: MemRef, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive (``MPI_Irecv``)."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        params = self.mpi.params
        world = self.mpi.world
        engine = self.mpi.engine(self.context_id, self.world_rank)
        future = Future(world.sim, description=f"irecv s{source} t{tag}")
        inbound = engine.match_unexpected(source, tag)
        if inbound is None:
            engine.posted.append(_PostedRecv(source, tag, memref, future))
        elif inbound.kind == "eager":
            # Payload already here: complete after the matching overhead.
            world.sim.call_later(
                params.recv_overhead,
                lambda: self._complete_eager_recv(
                    _PostedRecv(source, tag, memref, future),
                    inbound.envelope,
                    inbound.data,
                ),
            )
        else:  # rendezvous RTS waiting
            sender = inbound.sender
            assert sender is not None
            self._start_rendezvous_payload(
                sender,
                _PostedRecv(source, tag, memref, future),
                self.world_rank,
            )
        return Request(future, kind="irecv")

    def recv(self, memref: MemRef, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Tuple[int, int, int]:
        """Blocking receive; returns ``(source, tag, nbytes)``."""
        req = self.irecv(memref, source, tag)
        req.wait()
        return req._future.value

    def sendrecv(
        self,
        send_ref: MemRef,
        dest: int,
        recv_ref: MemRef,
        source: int,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ) -> None:
        """``MPI_Sendrecv``: deadlock-free paired exchange."""
        rreq = self.irecv(recv_ref, source, recv_tag)
        sreq = self.isend(send_ref, dest, send_tag)
        sreq.wait()
        rreq.wait()

    # -- communicator management ----------------------------------------------

    def split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """``MPI_Comm_split`` (color < 0 means "not a member")."""
        seq = self._split_seq
        self._split_seq += 1
        state_key = (self.context_id, seq)
        state = self.mpi._split_state.setdefault(
            state_key, {"members": {}, "context": next(_context_ids)}
        )
        state["members"][self.rank] = (color, key, self.world_rank)
        # Control-plane rendezvous: all members must arrive.
        self.mpi.coordination_barrier(self.context_id * 10000 + seq, self.size).wait()
        if color < 0:
            return None
        members = [
            (k, wr)
            for r, (c, k, wr) in sorted(state["members"].items())
            if c == color
        ]
        members.sort()
        group = [wr for _k, wr in members]
        return Communicator(
            self.mpi, self.world_rank, group, context_id=state["context"] + color
        )
