"""Non-blocking request handles (``MPI_Request`` analogue)."""

from __future__ import annotations

from typing import Iterable

from repro.sim import Future


class Request:
    """Completion handle for a non-blocking operation."""

    def __init__(self, future: Future, kind: str = "op") -> None:
        self._future = future
        self.kind = kind

    def test(self) -> bool:
        """Non-blocking completion probe (``MPI_Test``)."""
        return self._future.poll()

    def wait(self) -> None:
        """Block the calling task until complete (``MPI_Wait``)."""
        if not self._future.fired:
            self._future.wait()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self._future.fired else "pending"
        return f"<Request {self.kind} {state}>"


def waitall(requests: Iterable[Request]) -> None:
    """``MPI_Waitall``: block until every request completes."""
    for req in requests:
        req.wait()


def testall(requests: Iterable[Request]) -> bool:
    """``MPI_Testall``: True iff every request has completed."""
    return all(req.test() for req in requests)
