"""Calibration constants for the mini-MPI stack.

Values are set to land in the ranges reported for Cray MPICH and
OpenMPI on Slingshot/InfiniBand systems.  The RMA path is costlier
than the two-sided path — window synchronization, per-op target
bookkeeping — which is the documented source of the DiOMP-vs-MPI gap
in Figs. 3–4 (GASNet-EX issues one-sided ops with far less software
in the way).
"""

from __future__ import annotations

import dataclasses

from repro.util.units import KiB, MiB, US


@dataclasses.dataclass(frozen=True)
class MpiParams:
    """Software cost model for the mini-MPI implementation."""

    # -- two-sided ----------------------------------------------------------
    #: initiator software cost of posting one send
    send_overhead: float = 0.30 * US
    #: receiver software cost of posting/matching one receive
    recv_overhead: float = 0.30 * US
    #: messages up to this size go eager (copied through bounce buffers)
    eager_threshold: int = 64 * KiB
    #: extra handshake latency for rendezvous (RTS/CTS round trip is
    #: simulated explicitly; this is the software part)
    rendezvous_overhead: float = 0.50 * US
    #: fraction of link bandwidth the two-sided path sustains
    bw_efficiency: float = 0.92
    #: stage same-node device-to-device messages through host memory
    #: (the classic MPI data path; DiOMP's IPC/P2P fast path is the
    #: paper's intra-node advantage, §4.5)
    intra_node_device_staging: bool = True

    # -- one-sided (RMA windows) ----------------------------------------------
    #: initiator software cost of one MPI_Put
    rma_put_overhead: float = 1.30 * US
    #: initiator software cost of one MPI_Get
    rma_get_overhead: float = 1.60 * US
    #: fraction of link bandwidth the RMA path sustains
    rma_bw_efficiency: float = 0.85
    #: cost of MPI_Win_lock
    lock_overhead: float = 0.70 * US
    #: cost of MPI_Win_unlock (includes remote completion flush)
    unlock_overhead: float = 0.90 * US
    #: cost of MPI_Win_fence beyond the embedded barrier
    fence_overhead: float = 1.00 * US
    #: per-rank cost of registering memory into a window at creation
    win_register_overhead: float = 8.0 * US
    #: messages at/above this size stripe across all node NICs
    #: (Cray MPICH multi-NIC striping)
    multirail_threshold: int = 4 * MiB

    # -- collectives ----------------------------------------------------------
    #: per-message software cost inside collective algorithms
    collective_overhead: float = 0.40 * US
    #: bcast switches from binomial tree to scatter+allgather here
    bcast_long_threshold: int = 512 * KiB
    #: allreduce switches from recursive doubling to Rabenseifner here
    allreduce_long_threshold: int = 256 * KiB

    @classmethod
    def for_platform(cls, platform) -> "MpiParams":
        """Defaults tuned to the MPI library a platform pairs with.

        Cray MPICH (platforms A/B) gets the baseline numbers.  OpenMPI
        (platform C) moves GPU-resident payloads through a chunked
        host-pipeline far from ring-optimal — modelled as a lower
        two-sided bandwidth efficiency with a higher per-message cost,
        consistent with the paper's observation that DiOMP's large-
        message collectives beat it on GH200+InfiniBand.
        """
        if getattr(platform, "mpi_name", "") == "openmpi":
            return cls(
                bw_efficiency=0.60,
                send_overhead=0.45 * US,
                recv_overhead=0.45 * US,
            )
        return cls()
