"""MPI one-sided RMA windows (the Figs. 3–4 baseline).

Implements the passive-target model the paper benchmarks against:
``MPI_Win_create`` (collective; registers each rank's memory with the
library **separately from any other registration**, the duplication of
Fig. 1a), ``lock``/``unlock`` epochs, ``put``/``get``/``flush`` and
active-target ``fence``.

The cost structure is the point: every RMA op pays the higher
``rma_*_overhead`` and the lower ``rma_bw_efficiency`` from
:class:`~repro.mpi.params.MpiParams`, and epochs add lock/unlock
software latency — which is exactly why DiOMP's GASNet path wins the
microbenchmarks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.memref import MemRef
from repro.mpi.comm import Communicator
from repro.mpi.collectives import barrier as _coll_barrier
from repro.sim import Future, Lock
from repro.util.errors import CommunicationError

LOCK_SHARED = "shared"
LOCK_EXCLUSIVE = "exclusive"


class Window:
    """One rank's handle on a collectively created RMA window.

    Construction protocol (mirrors ``MPI_Win_create``): every rank
    calls :meth:`create` with its exposed :class:`MemRef`; the call is
    collective over the communicator and returns that rank's handle.
    """

    def __init__(self, comm: Communicator, memref: MemRef, win_id: int) -> None:
        self.comm = comm
        self.memref = memref
        self.win_id = win_id
        self._epochs: Dict[int, str] = {}  # target rank -> lock type
        self._pending: Dict[int, List[Future]] = {}
        #: counts of RMA ops issued through this handle (for tests)
        self.puts_issued = 0
        self.gets_issued = 0

    # -- creation --------------------------------------------------------------

    @classmethod
    def create(cls, comm: Communicator, memref: MemRef, win_key: int = 0) -> "Window":
        """Collective window creation; every rank passes its region."""
        params = comm.mpi.params
        # Memory registration cost: the MPI library pins/registers this
        # region with the NIC independently of any other subsystem.
        comm.sim.sleep(params.win_register_overhead)
        registry = comm.mpi.window_registry
        key = (comm.context_id, win_key)
        state = registry.setdefault(
            key, {"exposed": {}, "locks": {}, "win_id": len(registry)}
        )
        state["exposed"][comm.rank] = memref
        win = cls(comm, memref, state["win_id"])
        win._state = state
        _coll_barrier(comm)  # Win_create synchronizes
        if len(state["exposed"]) != comm.size:
            raise CommunicationError(
                "Window.create is collective: not every rank participated"
            )
        return win

    def _exposed(self, target: int) -> MemRef:
        try:
            return self._state["exposed"][target]
        except KeyError:
            raise CommunicationError(f"rank {target} exposed no window memory") from None

    def _target_lock(self, target: int) -> Lock:
        locks = self._state["locks"]
        if target not in locks:
            locks[target] = Lock(self.comm.sim, name=f"win{self.win_id}-t{target}")
        return locks[target]

    # -- epochs ------------------------------------------------------------------

    def lock(self, target: int, lock_type: str = LOCK_SHARED) -> None:
        """``MPI_Win_lock``: open a passive-target epoch."""
        if lock_type not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise CommunicationError(f"bad lock type {lock_type!r}")
        if target in self._epochs:
            raise CommunicationError(f"epoch already open to rank {target}")
        if lock_type == LOCK_EXCLUSIVE:
            self._target_lock(target).acquire()
        self.comm.sim.sleep(self.comm.mpi.params.lock_overhead)
        self._epochs[target] = lock_type
        self._pending.setdefault(target, [])

    def unlock(self, target: int) -> None:
        """``MPI_Win_unlock``: flush and close the epoch."""
        lock_type = self._epochs.get(target)
        if lock_type is None:
            raise CommunicationError(f"no open epoch to rank {target}")
        self.flush(target)
        del self._epochs[target]
        self.comm.sim.sleep(self.comm.mpi.params.unlock_overhead)
        if lock_type == LOCK_EXCLUSIVE:
            self._target_lock(target).release()

    def _require_epoch(self, target: int) -> None:
        if target not in self._epochs:
            raise CommunicationError(
                f"RMA operation outside an access epoch to rank {target} "
                "(call lock() or fence() first)"
            )

    # -- data movement --------------------------------------------------------------

    def put(self, src: MemRef, target: int, target_offset: int = 0) -> None:
        """``MPI_Put`` into the target's window (non-blocking until a
        flush/unlock/fence)."""
        self._require_epoch(target)
        exposed = self._exposed(target)
        dst = exposed.slice(target_offset, src.nbytes)
        params = self.comm.mpi.params
        world = self.comm.mpi.world
        fut = world.fabric.transfer(
            src.endpoint,
            dst.endpoint,
            src.nbytes,
            operation="mpi_put",
            gpu_memory=src.is_device or dst.is_device,
            on_complete=lambda: dst.copy_from(src),
            extra_latency=params.rma_put_overhead
            + world.platform.node.nic.message_overhead,
            bandwidth_factor=params.rma_bw_efficiency,
            rails=(
                world.platform.node.nics_per_node
                if src.nbytes >= params.multirail_threshold
                else 1
            ),
        )
        self.puts_issued += 1
        self._pending[target].append(fut)

    def get(self, dst: MemRef, target: int, target_offset: int = 0) -> None:
        """``MPI_Get`` from the target's window."""
        self._require_epoch(target)
        exposed = self._exposed(target)
        src = exposed.slice(target_offset, dst.nbytes)
        params = self.comm.mpi.params
        world = self.comm.mpi.world
        fut = world.fabric.transfer(
            src.endpoint,
            dst.endpoint,
            dst.nbytes,
            operation="mpi_get",
            gpu_memory=src.is_device or dst.is_device,
            on_complete=lambda: dst.copy_from(src),
            extra_latency=params.rma_get_overhead
            + world.platform.node.nic.message_overhead,
            bandwidth_factor=params.rma_bw_efficiency,
            rails=(
                world.platform.node.nics_per_node
                if dst.nbytes >= params.multirail_threshold
                else 1
            ),
        )
        self.gets_issued += 1
        self._pending[target].append(fut)

    def accumulate(
        self,
        src: MemRef,
        target: int,
        dtype,
        op=None,
        target_offset: int = 0,
    ) -> None:
        """``MPI_Accumulate``: element-wise read-modify-write into the
        target window (default op: sum).  Accumulates are applied in
        completion order; MPI's same-origin ordering holds because one
        origin's operations serialize on its injection path."""
        import numpy as np

        self._require_epoch(target)
        op = np.add if op is None else op
        dtype = np.dtype(dtype)
        exposed = self._exposed(target)
        dst = exposed.slice(target_offset, src.nbytes)
        params = self.comm.mpi.params
        world = self.comm.mpi.world

        def apply() -> None:
            if dst.is_virtual and src.is_virtual:
                return
            d = dst.typed(dtype)
            d[:] = op(d, src.typed(dtype))

        fut = world.fabric.transfer(
            src.endpoint,
            dst.endpoint,
            src.nbytes,
            operation="mpi_put",
            gpu_memory=src.is_device or dst.is_device,
            on_complete=apply,
            # Accumulate pays the put path plus target-side combining.
            extra_latency=1.5 * params.rma_put_overhead
            + world.platform.node.nic.message_overhead,
            bandwidth_factor=params.rma_bw_efficiency,
        )
        self.puts_issued += 1
        self._pending[target].append(fut)

    def flush(self, target: int) -> None:
        """``MPI_Win_flush``: complete all pending ops to ``target``."""
        self._require_epoch(target)
        pending = self._pending.get(target, [])
        self._pending[target] = []
        for fut in pending:
            if not fut.poll():
                fut.wait()

    # -- active target ------------------------------------------------------------

    def fence(self) -> None:
        """``MPI_Win_fence``: collective epoch separator.

        Opens an access epoch to every rank (so puts/gets may follow)
        and completes all outstanding ops from the previous epoch.
        """
        params = self.comm.mpi.params
        for target, pending in list(self._pending.items()):
            self._pending[target] = []
            for fut in pending:
                if not fut.poll():
                    fut.wait()
        self.comm.sim.sleep(params.fence_overhead)
        _coll_barrier(self.comm)
        for target in range(self.comm.size):
            self._epochs.setdefault(target, LOCK_SHARED)
            self._pending.setdefault(target, [])

    def free(self) -> None:
        """``MPI_Win_free``: collective teardown."""
        if LOCK_EXCLUSIVE in self._epochs.values():
            raise CommunicationError("window freed with an exclusive epoch open")
        _coll_barrier(self.comm)
        self._state["exposed"].pop(self.comm.rank, None)
