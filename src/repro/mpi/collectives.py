"""MPI collective algorithms built on the two-sided layer.

The algorithm switches mirror MPICH's tuning:

* **barrier** — dissemination (⌈log2 P⌉ rounds of zero-byte messages),
* **bcast** — binomial tree for short messages, van de Geijn
  (scatter + ring allgather) for long ones,
* **reduce** — binomial tree reduction toward the root,
* **allreduce** — recursive doubling for short messages, Rabenseifner
  (reduce-scatter + allgather) for long ones,
* **allgather** — ring.

Because every step is a real simulated message, collective timing
inherits the full path model (intra-node links, NIC striping,
contention) — which is exactly what makes the Fig. 6 comparison
against OMPCCL meaningful.  Reductions perform real numpy arithmetic
when buffers are real; virtual buffers contribute timing only.

These functions are *per-rank* and collective: every member of the
communicator must call them in matching order, as in MPI.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cluster.memref import MemRef
from repro.mpi.comm import Communicator
from repro.util.errors import CommunicationError

#: tag space reserved for collective internals
_COLL_TAG = 1_000_000


def _chunk_bounds(total: int, parts: int, index: int) -> tuple:
    """Contiguous block decomposition of ``total`` items into ``parts``."""
    base, extra = divmod(total, parts)
    lo = index * base + min(index, extra)
    hi = lo + base + (1 if index < extra else 0)
    return lo, hi


def barrier(comm: Communicator) -> None:
    """Dissemination barrier."""
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    empty = np.zeros(0, dtype=np.uint8)
    node = comm.mpi.world.ranks[comm.world_rank].node
    distance = 1
    while distance < size:
        dest = (rank + distance) % size
        source = (rank - distance) % size
        comm.sendrecv(
            MemRef.host(node, empty),
            dest,
            MemRef.host(node, np.zeros(0, dtype=np.uint8)),
            source,
            send_tag=_COLL_TAG + distance,
            recv_tag=_COLL_TAG + distance,
        )
        distance *= 2


def bcast(comm: Communicator, memref: MemRef, root: int = 0) -> None:
    """Broadcast ``memref`` from ``root`` to all ranks."""
    if not 0 <= root < comm.size:
        raise CommunicationError(f"bad bcast root {root}")
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    if comm.size == 1:
        return
    if memref.nbytes <= comm.mpi.params.bcast_long_threshold:
        _bcast_binomial(comm, memref, root)
    else:
        _bcast_scatter_allgather(comm, memref, root)


def _bcast_binomial(comm: Communicator, memref: MemRef, root: int) -> None:
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size  # virtual rank with root at 0
    mask = 1
    while mask < size:
        if vrank & mask:
            src = ((vrank - mask) + root) % size
            comm.recv(memref, source=src, tag=_COLL_TAG + 10)
            break
        mask *= 2
    mask //= 2
    while mask >= 1:
        if vrank + mask < size:
            dst = ((vrank + mask) + root) % size
            comm.send(memref, dst, tag=_COLL_TAG + 10)
        mask //= 2


def _bcast_scatter_allgather(comm: Communicator, memref: MemRef, root: int) -> None:
    """van de Geijn long-message broadcast: scatter blocks from the
    root, then ring-allgather them."""
    size, rank = comm.size, comm.rank
    # Scatter phase: root sends each rank its block (flat; the binomial
    # scatter refinement changes constants, not shape).
    blocks = [_chunk_bounds(memref.nbytes, size, i) for i in range(size)]
    if rank == root:
        reqs = []
        for peer in range(size):
            if peer == root:
                continue
            lo, hi = blocks[peer]
            if hi > lo:
                reqs.append(
                    comm.isend(memref.slice(lo, hi - lo), peer, tag=_COLL_TAG + 11)
                )
        for r in reqs:
            r.wait()
    else:
        lo, hi = blocks[rank]
        if hi > lo:
            comm.recv(memref.slice(lo, hi - lo), source=root, tag=_COLL_TAG + 11)
    # Ring allgather of the blocks.
    _ring_allgather_blocks(comm, memref, blocks, tag=_COLL_TAG + 12)


def _ring_allgather_blocks(comm, memref: MemRef, blocks, tag: int, owned: Optional[int] = None) -> None:
    """Ring allgather where each rank starts owning block ``owned``
    (defaults to its own rank index)."""
    size, rank = comm.size, comm.rank
    if owned is None:
        owned = rank
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_block = (owned - step) % size
        recv_block = (owned - step - 1) % size
        s_lo, s_hi = blocks[send_block]
        r_lo, r_hi = blocks[recv_block]
        comm.sendrecv(
            memref.slice(s_lo, s_hi - s_lo),
            right,
            memref.slice(r_lo, r_hi - r_lo),
            left,
            send_tag=tag + step,
            recv_tag=tag + step,
        )


def reduce(
    comm: Communicator,
    send: MemRef,
    recv: Optional[MemRef],
    dtype: np.dtype,
    op: Callable = np.add,
    root: int = 0,
) -> None:
    """Binomial-tree reduction toward ``root``.

    ``recv`` is required at the root and ignored elsewhere.  ``send``
    is left unmodified (an internal accumulator is used).
    """
    if not 0 <= root < comm.size:
        raise CommunicationError(f"bad reduce root {root}")
    if comm.rank == root and recv is None:
        raise CommunicationError("reduce root needs a receive buffer")
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    dtype = np.dtype(dtype)
    size, rank = comm.size, comm.rank
    node = comm.mpi.world.ranks[comm.world_rank].node
    virtual = send.is_virtual

    if virtual:
        acc = None
    else:
        acc = send.typed(dtype).copy()

    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = ((vrank - mask) + root) % size
            payload = (
                MemRef.host(node, np.zeros(0, dtype=np.uint8))
                if virtual
                else MemRef.host(node, acc)
            )
            if virtual:
                payload = send  # timing uses the real size/endpoint
            comm.send(payload, dst, tag=_COLL_TAG + 20)
            break
        else:
            peer_v = vrank | mask
            if peer_v < size:
                src = (peer_v + root) % size
                if virtual:
                    tmp_ref = send  # virtual: timing only
                    comm.recv(tmp_ref, source=src, tag=_COLL_TAG + 20)
                else:
                    tmp = np.empty_like(acc)
                    comm.recv(MemRef.host(node, tmp), source=src, tag=_COLL_TAG + 20)
                    acc = op(acc, tmp)
        mask *= 2
    if rank == root and not virtual:
        recv.typed(dtype)[:] = acc


def allreduce(
    comm: Communicator,
    send: MemRef,
    recv: MemRef,
    dtype: np.dtype,
    op: Callable = np.add,
) -> None:
    """Allreduce with MPICH's algorithm switch."""
    if send.nbytes != recv.nbytes:
        raise CommunicationError("allreduce buffers must have equal size")
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    if comm.size == 1:
        recv.copy_from(send)
        return
    if send.nbytes <= comm.mpi.params.allreduce_long_threshold:
        _allreduce_recursive_doubling(comm, send, recv, dtype, op)
    else:
        _allreduce_rabenseifner(comm, send, recv, dtype, op)


def _allreduce_recursive_doubling(comm, send, recv, dtype, op) -> None:
    size, rank = comm.size, comm.rank
    dtype = np.dtype(dtype)
    node = comm.mpi.world.ranks[comm.world_rank].node
    virtual = send.is_virtual or recv.is_virtual
    if not virtual:
        acc = send.typed(dtype).copy()
    # Non-power-of-two: fold the remainder into the lower half first.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    newrank = -1
    if rank < 2 * rem:
        if rank % 2 == 0:
            comm.send(send if virtual else MemRef.host(node, acc), rank + 1, tag=_COLL_TAG + 30)
        else:
            if virtual:
                comm.recv(recv, source=rank - 1, tag=_COLL_TAG + 30)
            else:
                tmp = np.empty_like(acc)
                comm.recv(MemRef.host(node, tmp), source=rank - 1, tag=_COLL_TAG + 30)
                acc = op(acc, tmp)
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank != -1:
        mask = 1
        while mask < pof2:
            peer_new = newrank ^ mask
            peer = peer_new * 2 + 1 if peer_new < rem else peer_new + rem
            if virtual:
                comm.sendrecv(send, peer, recv, peer, send_tag=_COLL_TAG + 31, recv_tag=_COLL_TAG + 31)
            else:
                tmp = np.empty_like(acc)
                comm.sendrecv(
                    MemRef.host(node, acc),
                    peer,
                    MemRef.host(node, tmp),
                    peer,
                    send_tag=_COLL_TAG + 31,
                    recv_tag=_COLL_TAG + 31,
                )
                acc = op(acc, tmp)
            mask *= 2
    # Hand results back to the folded ranks.
    if rank < 2 * rem:
        if rank % 2 == 0:
            if virtual:
                comm.recv(recv, source=rank + 1, tag=_COLL_TAG + 32)
            else:
                comm.recv(MemRef.host(node, acc), source=rank + 1, tag=_COLL_TAG + 32)
        else:
            comm.send(recv if virtual else MemRef.host(node, acc), rank - 1, tag=_COLL_TAG + 32)
    if not virtual:
        recv.typed(dtype)[:] = acc


def _allreduce_rabenseifner(comm, send, recv, dtype, op) -> None:
    """Reduce-scatter (pairwise-exchange) + ring allgather.

    For clarity the reduce-scatter runs as a ring (P-1 steps of
    1/P-sized blocks) — same volume as Rabenseifner's halving for the
    large messages this branch handles.
    """
    size, rank = comm.size, comm.rank
    dtype = np.dtype(dtype)
    itemsize = dtype.itemsize
    count = send.nbytes // itemsize
    virtual = send.is_virtual or recv.is_virtual
    node = comm.mpi.world.ranks[comm.world_rank].node
    blocks = [_chunk_bounds(count, size, i) for i in range(size)]
    byte_blocks = [(lo * itemsize, hi * itemsize) for lo, hi in blocks]
    if not virtual:
        recv.copy_from(send)
        work = recv.typed(dtype)
    right, left = (rank + 1) % size, (rank - 1) % size
    # Reduce-scatter ring: after P-1 steps rank owns the full reduction
    # of its block.
    for step in range(size - 1):
        send_block = (rank - step) % size
        recv_block = (rank - step - 1) % size
        s_lo, s_hi = byte_blocks[send_block]
        r_lo, r_hi = byte_blocks[recv_block]
        if virtual:
            comm.sendrecv(
                send.slice(s_lo, s_hi - s_lo),
                right,
                recv.slice(r_lo, r_hi - r_lo),
                left,
                send_tag=_COLL_TAG + 40 + step,
                recv_tag=_COLL_TAG + 40 + step,
            )
        else:
            tmp = np.empty((r_hi - r_lo) // itemsize, dtype=dtype)
            comm.sendrecv(
                recv.slice(s_lo, s_hi - s_lo),
                right,
                MemRef.host(node, tmp),
                left,
                send_tag=_COLL_TAG + 40 + step,
                recv_tag=_COLL_TAG + 40 + step,
            )
            lo_i, hi_i = blocks[recv_block]
            work[lo_i:hi_i] = op(work[lo_i:hi_i], tmp)
    # Allgather ring distributes the reduced blocks.  After the
    # reduce-scatter, rank r owns the fully reduced block (r+1) mod P.
    _ring_allgather_blocks(
        comm,
        recv,
        byte_blocks,
        tag=_COLL_TAG + 40 + size,
        owned=(rank + 1) % size,
    )


def scatter(comm: Communicator, send: Optional[MemRef], recv: MemRef, root: int = 0) -> None:
    """Linear scatter: the root sends block ``i`` of ``send`` to rank
    ``i``; every rank receives its block into ``recv``."""
    if not 0 <= root < comm.size:
        raise CommunicationError(f"bad scatter root {root}")
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    block = recv.nbytes
    if comm.rank == root:
        if send is None:
            raise CommunicationError("scatter root needs a send buffer")
        if send.nbytes != block * comm.size:
            raise CommunicationError(
                "scatter send buffer must hold size*block "
                f"({block * comm.size}), got {send.nbytes}"
            )
        reqs = []
        for peer in range(comm.size):
            chunk = send.slice(peer * block, block)
            if peer == root:
                recv.copy_from(chunk)
            else:
                reqs.append(comm.isend(chunk, peer, tag=_COLL_TAG + 60))
        for r in reqs:
            r.wait()
    else:
        comm.recv(recv, source=root, tag=_COLL_TAG + 60)


def gather(comm: Communicator, send: MemRef, recv: Optional[MemRef], root: int = 0) -> None:
    """Linear gather: rank ``i``'s ``send`` lands in block ``i`` of the
    root's ``recv``."""
    if not 0 <= root < comm.size:
        raise CommunicationError(f"bad gather root {root}")
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    block = send.nbytes
    if comm.rank == root:
        if recv is None:
            raise CommunicationError("gather root needs a receive buffer")
        if recv.nbytes != block * comm.size:
            raise CommunicationError(
                "gather receive buffer must hold size*block "
                f"({block * comm.size}), got {recv.nbytes}"
            )
        reqs = []
        for peer in range(comm.size):
            chunk = recv.slice(peer * block, block)
            if peer == root:
                chunk.copy_from(send)
            else:
                reqs.append(comm.irecv(chunk, source=peer, tag=_COLL_TAG + 61))
        for r in reqs:
            r.wait()
    else:
        comm.send(send, root, tag=_COLL_TAG + 61)


def alltoall(comm: Communicator, send: MemRef, recv: MemRef) -> None:
    """Pairwise-exchange all-to-all: block ``j`` of rank ``i``'s send
    buffer arrives as block ``i`` of rank ``j``'s receive buffer."""
    if send.nbytes != recv.nbytes:
        raise CommunicationError("alltoall buffers must match in size")
    if send.nbytes % comm.size:
        raise CommunicationError(
            f"alltoall buffer of {send.nbytes} bytes does not divide into "
            f"{comm.size} blocks"
        )
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    size, rank = comm.size, comm.rank
    block = send.nbytes // size
    recv.slice(rank * block, block).copy_from(send.slice(rank * block, block))
    # Pairwise exchange: step s pairs rank with rank ^ s (power-of-two)
    # or (rank + s) / (rank - s) otherwise.
    pof2 = size & (size - 1) == 0
    for step in range(1, size):
        peer = rank ^ step if pof2 else (rank + step) % size
        recv_from = peer if pof2 else (rank - step) % size
        comm.sendrecv(
            send.slice(peer * block, block),
            peer,
            recv.slice(recv_from * block, block),
            recv_from,
            send_tag=_COLL_TAG + 70 + step,
            recv_tag=_COLL_TAG + 70 + step,
        )


def allgather(comm: Communicator, send: MemRef, recv: MemRef) -> None:
    """Ring allgather: every rank contributes ``send`` (equal sizes)."""
    if recv.nbytes != send.nbytes * comm.size:
        raise CommunicationError(
            "allgather receive buffer must hold size*nbytes "
            f"({send.nbytes * comm.size}), got {recv.nbytes}"
        )
    comm.sim.sleep(comm.mpi.params.collective_overhead)
    block = send.nbytes
    mine = recv.slice(comm.rank * block, block)
    mine.copy_from(send)
    if comm.size == 1:
        return
    byte_blocks = [(i * block, (i + 1) * block) for i in range(comm.size)]
    _ring_allgather_blocks(comm, recv, byte_blocks, tag=_COLL_TAG + 50)
