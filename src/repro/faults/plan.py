"""Deterministic, seedable fault injection.

A :class:`FaultPlan` is a list of :class:`FaultSpec` injectors plus one
seeded RNG.  Runtime layers that host an *injection site* (the fabric
transfer path, both conduits, device stream synchronization) consult
the plan with ``plan.draw(site, rank=..., op=...)`` and apply the
returned :class:`FaultAction`, if any.

Sites are dotted names; a spec matches a site exactly or by dotted
prefix (``site="conduit"`` matches ``conduit.put`` and ``conduit.get``;
``site="*"`` matches everything).  The built-in sites:

========================  =====================================================
``conduit.put``           one-sided put issued by either conduit
``conduit.get``           one-sided get issued by either conduit
``conduit.am``            active-message request/reply legs
``conduit.notify``        GPI-2 notification posts
``rma.intra``             intra-node IPC / GPUDirect-P2P transfers
``fabric.transfer``       any transfer with no more specific site (MPI, XCCL)
``stream.sync``           device stream synchronization
``rank.stall``            drawn at conduit issue time; stalls the initiator
========================  =====================================================

Fault kinds:

* ``latency``   — extra latency before the transfer starts,
* ``late``      — the completion event is delayed past the data arrival,
* ``transient`` — the transfer fails with
  :class:`~repro.util.errors.TransientError` (retryable); with
  ``fatal=True`` it fails with :class:`~repro.util.errors.FatalError`
  (not retried),
* ``drop``      — the transfer is lost entirely: no data, no completion
  event (rescued only by a retry policy with ``op_timeout`` set),
* ``stall``     — the initiating rank sleeps before issuing.

Determinism: occurrence counters and the RNG are advanced in simulated
program order, which the simulator makes deterministic, so the same
(plan, seed, program) triple always injects the same faults.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError
from repro.util.units import US

#: valid FaultSpec.kind values
FAULT_KINDS: Tuple[str, ...] = ("latency", "late", "transient", "drop", "stall")

#: kinds that require a positive latency
_LATENCY_KINDS = ("latency", "late", "stall")

#: kinds that make a transfer fail or disappear
FAILURE_KINDS: Tuple[str, ...] = ("transient", "drop")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One injector: where, what, and how often to inject."""

    #: site to inject at, matched exactly or by dotted prefix ("*" = any)
    site: str
    #: fault kind (see FAULT_KINDS)
    kind: str = "transient"
    #: restrict to one initiator rank (None = any rank)
    rank: Optional[int] = None
    #: restrict to one operation, e.g. "put" | "get" (None = any op)
    op: Optional[str] = None
    #: inject only on the nth matching occurrence (1-based; None = all)
    nth: Optional[int] = None
    #: injection probability per matching occurrence
    probability: float = 1.0
    #: injected delay for latency/late/stall kinds (virtual seconds)
    latency: float = 0.0
    #: stop injecting after this many injections (None = unlimited)
    max_injections: Optional[int] = None
    #: transient kind only: fail with FatalError instead (never retried)
    fatal: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.latency < 0:
            raise ConfigurationError(f"negative fault latency: {self.latency}")
        if self.kind in _LATENCY_KINDS and self.latency <= 0:
            raise ConfigurationError(
                f"{self.kind!r} faults need a positive latency"
            )
        if self.nth is not None and self.nth < 1:
            raise ConfigurationError(f"nth must be >= 1, got {self.nth}")
        if self.max_injections is not None and self.max_injections < 1:
            raise ConfigurationError(
                f"max_injections must be >= 1, got {self.max_injections}"
            )

    def matches(self, site: str, rank: Optional[int], op: Optional[str]) -> bool:
        """Does this injector apply to one occurrence at ``site``?"""
        if self.site != "*" and site != self.site and not site.startswith(
            self.site + "."
        ):
            return False
        if self.rank is not None and rank != self.rank:
            return False
        if self.op is not None and op != self.op:
            return False
        return True


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """What an injection site must do, as decided by the plan."""

    kind: str
    latency: float
    fatal: bool
    site: str

    @property
    def is_failure(self) -> bool:
        return self.kind in FAILURE_KINDS


class FaultPlan:
    """A set of injectors plus deterministic per-spec bookkeeping.

    The plan is stateful (occurrence and injection counters, the RNG)
    and therefore single-use per run, like the simulator itself.
    Install it on a world with
    :meth:`~repro.cluster.world.World.install_fault_plan` (or pass it
    via :class:`~repro.cluster.spmd.SpmdConfig`).
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"FaultPlan takes FaultSpec entries, got {type(spec).__name__}"
                )
        self.seed = seed
        self._rng = random.Random(seed)
        #: per-spec count of matching occurrences (for nth semantics)
        self._matches: Dict[int, int] = {}
        #: per-spec count of actual injections
        self._injections: Dict[int, int] = {}
        #: total injections across all specs
        self.injected = 0
        self._m_injected = None
        self._m_delay = None

    # -- observability ---------------------------------------------------------

    def bind(self, obs) -> "FaultPlan":
        """Attach the world's observability layer (done at install)."""
        if obs is not None and getattr(obs, "enabled", False):
            self._m_injected = obs.counter(
                "faults.injected", "injected faults by site/kind/op/rank"
            )
            self._m_delay = obs.counter(
                "faults.delay_seconds", "injected delay by site/kind"
            )
        return self

    # -- the injection decision -----------------------------------------------

    def draw(
        self, site: str, rank: Optional[int] = None, op: Optional[str] = None
    ) -> Optional[FaultAction]:
        """Decide whether this occurrence is faulted.

        The first matching spec that passes its nth / budget /
        probability gates wins.  Occurrence counters advance for every
        matching spec regardless, so ``nth`` means "nth matching call",
        not "nth injection attempt".
        """
        for index, spec in enumerate(self.specs):
            if not spec.matches(site, rank, op):
                continue
            n = self._matches.get(index, 0) + 1
            self._matches[index] = n
            if spec.nth is not None and n != spec.nth:
                continue
            if (
                spec.max_injections is not None
                and self._injections.get(index, 0) >= spec.max_injections
            ):
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            self._injections[index] = self._injections.get(index, 0) + 1
            self.injected += 1
            if self._m_injected is not None:
                labels: Dict[str, Any] = {"site": site, "kind": spec.kind}
                if op is not None:
                    labels["op"] = op
                if rank is not None:
                    labels["rank"] = rank
                self._m_injected.inc(**labels)
                if spec.latency > 0 and self._m_delay is not None:
                    self._m_delay.inc(spec.latency, site=site, kind=spec.kind)
            return FaultAction(
                kind=spec.kind, latency=spec.latency, fatal=spec.fatal, site=site
            )
        return None

    # -- inspection -------------------------------------------------------------

    def injections_of(self, index: int) -> int:
        """How often spec ``index`` has injected so far."""
        return self._injections.get(index, 0)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Per-spec bookkeeping for tests and reports."""
        return [
            {
                "site": spec.site,
                "kind": spec.kind,
                "matches": self._matches.get(i, 0),
                "injections": self._injections.get(i, 0),
            }
            for i, spec in enumerate(self.specs)
        ]

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FaultPlan specs={len(self.specs)} seed={self.seed} "
            f"injected={self.injected}>"
        )

    # -- canned plans ------------------------------------------------------------

    @classmethod
    def transient_per_op(
        cls,
        sites: Sequence[str] = ("conduit.put", "conduit.get", "conduit.am"),
        seed: int = 0,
        nth: int = 1,
    ) -> "FaultPlan":
        """One transient failure on the ``nth`` occurrence of each
        conduit op class — the canonical retry-to-success plan."""
        return cls(
            [FaultSpec(site=site, kind="transient", nth=nth) for site in sites],
            seed=seed,
        )

    @classmethod
    def chaos(
        cls,
        seed: int,
        failure_probability: float = 0.05,
        latency_probability: float = 0.10,
        latency: float = 25.0 * US,
        sites: Sequence[str] = ("conduit.put", "conduit.get", "rma.intra"),
        max_failures: Optional[int] = 8,
    ) -> "FaultPlan":
        """A randomized-but-seeded mixed plan for chaos suites:
        transient failures and latency spikes on the data-moving sites
        plus latency spikes on stream synchronization."""
        specs: List[FaultSpec] = []
        for site in sites:
            specs.append(
                FaultSpec(
                    site=site,
                    kind="transient",
                    probability=failure_probability,
                    max_injections=max_failures,
                )
            )
            specs.append(
                FaultSpec(
                    site=site,
                    kind="latency",
                    probability=latency_probability,
                    latency=latency,
                )
            )
        specs.append(
            FaultSpec(
                site="stream.sync",
                kind="latency",
                probability=latency_probability,
                latency=latency,
            )
        )
        return cls(specs, seed=seed)
