"""Retry / timeout / backoff for non-blocking conduit operations.

:class:`RetryingOp` drives one one-sided operation through transient
failures without ever blocking: the caller supplies an ``issue``
closure that performs one attempt and returns its completion
:class:`~repro.sim.Future`.  On a retryable failure the attempt is
reissued after exponential backoff *on the virtual clock*; on success
the outer future fires with the attempt's value; once the policy's
attempt budget is exhausted (or a :class:`~repro.util.errors.FatalError`
arrives) the outer future fails with ``FatalError`` — which the DiOMP
fence surfaces to the application.

With ``op_timeout`` set, an attempt whose completion event never
arrives (a dropped event) is declared timed out, counted, and retried;
one-sided puts/gets are idempotent, so a late original completion is
harmless and is ignored via an attempt token.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Optional

from repro.sim import Future, Simulator
from repro.util.errors import ConfigurationError, FatalError, TimeoutError
from repro.util.units import US


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Tunable recovery knobs for one conduit."""

    #: total attempt budget per operation (1 = no retries)
    max_attempts: int = 4
    #: backoff before the first retry
    base_backoff: float = 2.0 * US
    #: multiplier applied per further retry
    backoff_factor: float = 2.0
    #: backoff ceiling
    max_backoff: float = 1e-3
    #: per-attempt completion timeout (None = wait forever; required to
    #: recover from dropped completion events)
    op_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ConfigurationError("backoff times must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.op_timeout is not None and self.op_timeout <= 0:
            raise ConfigurationError(
                f"op_timeout must be positive, got {self.op_timeout}"
            )

    def backoff(self, attempt: int) -> float:
        """Delay before reissuing after the ``attempt``-th failure."""
        return min(
            self.max_backoff, self.base_backoff * self.backoff_factor ** (attempt - 1)
        )


class RetryingOp:
    """One operation's recovery state machine (see module docstring).

    ``issue()`` must return a Future and must not block — it may run in
    scheduler context when a retry fires.  ``labels`` flow onto the
    ``conduit.retries`` / ``conduit.backoff_seconds`` /
    ``conduit.timeouts`` / ``conduit.giveups`` counters.
    """

    def __init__(
        self,
        sim: Simulator,
        issue: Callable[[], Future],
        policy: RetryPolicy,
        obs=None,
        labels: Optional[Dict[str, Any]] = None,
        description: str = "op",
    ) -> None:
        self.sim = sim
        self.policy = policy
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0
        self.labels = dict(labels or {})
        self._issue = issue
        self._token = 0
        #: the operation's terminal completion (value or FatalError)
        self.future = Future(sim, description=f"retry:{description}")
        if obs is not None and getattr(obs, "enabled", False):
            self._m_retries = obs.counter(
                "conduit.retries", "reissued conduit operations"
            )
            self._m_backoff = obs.counter(
                "conduit.backoff_seconds", "virtual time spent backing off"
            )
            self._m_timeouts = obs.counter(
                "conduit.timeouts", "per-attempt completion timeouts"
            )
            self._m_giveups = obs.counter(
                "conduit.giveups", "operations that exhausted their retries"
            )
        else:
            self._m_retries = self._m_backoff = None
            self._m_timeouts = self._m_giveups = None
        self._begin()

    # -- attempt lifecycle -------------------------------------------------------

    def _begin(self) -> None:
        self.attempts += 1
        self._token += 1
        token = self._token
        attempt = self._issue()
        # Expose the attempt's expected completion to hybrid polling.
        self.future.eta = getattr(attempt, "eta", None)  # type: ignore[attr-defined]
        if self.policy.op_timeout is not None:
            self.sim.call_later(
                self.policy.op_timeout, lambda: self._on_timeout(token, attempt)
            )
        attempt.add_done_callback(lambda fut: self._on_done(token, fut))

    def _on_done(self, token: int, attempt: Future) -> None:
        if token != self._token or self.future.fired:
            return  # a stale (timed-out) attempt finally completed
        if attempt.error is None:
            self.future.fire(attempt.value)
        else:
            self._on_failure(attempt.error)

    def _on_timeout(self, token: int, attempt: Future) -> None:
        if token != self._token or self.future.fired or attempt.fired:
            return
        self._token += 1  # invalidate the attempt's eventual completion
        self.timeouts += 1
        if self._m_timeouts is not None:
            self._m_timeouts.inc(**self.labels)
        self._on_failure(
            TimeoutError(
                f"{self.future.description}: no completion within "
                f"{self.policy.op_timeout:g}s (attempt {self.attempts})"
            )
        )

    def _on_failure(self, error: BaseException) -> None:
        if isinstance(error, FatalError) or self.attempts >= self.policy.max_attempts:
            if self._m_giveups is not None:
                self._m_giveups.inc(**self.labels)
            if isinstance(error, FatalError):
                final = error
            else:
                final = FatalError(
                    f"{self.future.description}: giving up after "
                    f"{self.attempts} attempt(s): {error}"
                )
                final.__cause__ = error
            self.future.fail(final)
            return
        delay = self.policy.backoff(self.attempts)
        self.retries += 1
        if self._m_retries is not None:
            self._m_retries.inc(**self.labels)
            self._m_backoff.inc(delay, **self.labels)
        self.sim.call_later(delay, self._begin)
