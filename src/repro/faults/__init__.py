"""Fault injection and recovery.

Two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: a deterministic,
  seedable set of injectors (keyed on site / rank / op / nth
  occurrence) consulted by the fabric transfer path, both conduits,
  and device stream synchronization,
* :mod:`repro.faults.retry` — :class:`RetryPolicy` /
  :class:`RetryingOp`: exponential-backoff retry with per-attempt
  timeouts on the virtual clock, used by the GASNet-EX and GPI-2
  conduits and the intra-node RMA path.

Install a plan with ``World(..., faults=plan)``,
``world.install_fault_plan(plan)``, or
``run_spmd(..., config=SpmdConfig(faults=plan))``.  Injections,
retries, backoff time, timeouts and give-ups all land in the
:mod:`repro.obs` metrics registry (``faults.*`` / ``conduit.*``).
See ``docs/FAULTS.md``.
"""

from repro.faults.plan import (
    FAILURE_KINDS,
    FAULT_KINDS,
    FaultAction,
    FaultPlan,
    FaultSpec,
)
from repro.faults.retry import RetryingOp, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FAILURE_KINDS",
    "FaultAction",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "RetryingOp",
]
