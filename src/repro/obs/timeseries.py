"""Windowed time series over the virtual clock.

End-of-run registry snapshots answer *how much*; they cannot answer
*when*.  This module adds continuous, bounded-memory time series on
top of the existing :class:`~repro.obs.metrics.MetricsRegistry`
families: every admitted counter increment, gauge set, and histogram
observation is also folded — via the registry's write hook, so no
instrumentation call site changes — into tumbling or sliding windows
over *simulated* time.

Memory is bounded twice over, which is what lets a 1024-rank service
run carry live windowing:

* each series keeps a **fixed ring** of at most
  :attr:`WindowSpec.history` windows; older windows are evicted as
  the clock advances,
* each window retains at most :attr:`WindowSpec.max_samples` raw
  values for its quantiles, decimated deterministically (keep every
  2^k-th observation) when a window overflows — count/sum/min/max
  stay exact, p50/p99 become systematic-sample estimates.

Per-rank label explosion is avoided by construction: windows are keyed
by the metric family plus only the labels named in ``group_by`` (for
the cluster service, ``tenant``/``kind``/``outcome``), never by
``rank``.

The SLO layer (:mod:`repro.obs.slo`) reads trailing ranges of these
windows to compute error-budget burn rates.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.rollup import exact_percentile
from repro.util.errors import ConfigurationError

#: label storage for one windowed series: sorted ((key, value), ...)
GroupKey = Tuple[Tuple[str, str], ...]


@dataclasses.dataclass(frozen=True)
class WindowSpec:
    """Shape of one windowed view: width, overlap, and retention."""

    #: window width in simulated seconds
    width: float
    #: window start spacing; ``None`` (or ``== width``) is tumbling,
    #: smaller values produce overlapping sliding windows
    slide: Optional[float] = None
    #: ring capacity — windows kept per series (fixed memory bound)
    history: int = 64
    #: raw values retained per window for quantiles (decimated beyond)
    max_samples: int = 256

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigurationError(f"window width must be > 0, got {self.width}")
        if self.slide is not None and not (0 < self.slide <= self.width):
            raise ConfigurationError(
                f"window slide must be in (0, width], got {self.slide}"
            )
        if self.history < 1:
            raise ConfigurationError(f"history must be >= 1, got {self.history}")
        if self.max_samples < 2:
            raise ConfigurationError(
                f"max_samples must be >= 2, got {self.max_samples}"
            )

    @property
    def step(self) -> float:
        """The effective slide (width for tumbling windows)."""
        return self.slide if self.slide is not None else self.width

    @property
    def overlap(self) -> int:
        """How many windows one sample lands in (1 for tumbling)."""
        return int(math.ceil(self.width / self.step))


class WindowStats:
    """One window's aggregate: exact moments, sampled quantiles."""

    __slots__ = ("start", "end", "count", "total", "minimum", "maximum",
                 "_samples", "_stride", "_seen", "_max")

    def __init__(self, start: float, end: float, max_samples: int) -> None:
        self.start = start
        self.end = end
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: List[float] = []
        #: keep every ``_stride``-th observation (doubles on overflow)
        self._stride = 1
        self._seen = 0
        self._max = max_samples

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        # Deterministic systematic sampling: admit every _stride-th
        # observation; on overflow drop every other retained sample and
        # double the stride.  No RNG, so replays are bit-identical.
        if self._seen % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self._max:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._seen += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """``q``-quantile over the retained samples (exact until the
        window overflows ``max_samples``, systematic-sample estimate
        after)."""
        return exact_percentile(self._samples, q)

    def fraction_above(self, threshold: float) -> float:
        """Estimated fraction of observations strictly above
        ``threshold`` (0.0 for an empty window)."""
        if not self._samples:
            return 0.0
        over = sum(1 for v in self._samples if v > threshold)
        return over / len(self._samples)

    def count_above(self, threshold: float) -> float:
        """Estimated number of observations above ``threshold``."""
        return self.fraction_above(threshold) * self.count

    def to_dict(self) -> Dict[str, float]:
        return {
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
        }


def _empty_window(start: float, end: float) -> Dict[str, float]:
    """An explicit zero-sample window entry — emitted for gaps so that
    downstream consumers see "no data", never a silently missing
    interval (the SLO availability math depends on the distinction)."""
    return {
        "start": start, "end": end, "count": 0, "sum": 0.0,
        "min": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0,
    }


class WindowedSeries:
    """The fixed ring of windows for one (family, group) series."""

    def __init__(self, spec: WindowSpec) -> None:
        self.spec = spec
        #: window index (start // step) -> stats; bounded to history
        self._ring: Dict[int, WindowStats] = {}
        self.count = 0
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._ring)

    def observe(self, when: float, value: float) -> None:
        """Fold one observation at sim time ``when`` into every window
        covering it, evicting the oldest windows past the ring bound."""
        step = self.spec.step
        hi = int(math.floor(when / step + 1e-12))
        lo = max(0, hi - self.spec.overlap + 1)
        for index in range(lo, hi + 1):
            start = index * step
            if when >= start + self.spec.width:
                continue
            window = self._ring.get(index)
            if window is None:
                window = self._ring[index] = WindowStats(
                    start, start + self.spec.width, self.spec.max_samples
                )
                while len(self._ring) > self.spec.history:
                    del self._ring[min(self._ring)]
            window.observe(value)
        self.count += 1
        self.total += value

    def windows(self) -> List[WindowStats]:
        """Retained windows, oldest first."""
        return [self._ring[i] for i in sorted(self._ring)]

    def latest(self) -> Optional[WindowStats]:
        return self._ring[max(self._ring)] if self._ring else None

    def window_at(self, when: float) -> Optional[WindowStats]:
        """The (tumbling-aligned) retained window whose start covers
        ``when``, or None when evicted/never written."""
        return self._ring.get(int(math.floor(when / self.spec.step + 1e-12)))

    def range(self, since: float, until: float) -> List[WindowStats]:
        """Retained windows overlapping ``[since, until)``."""
        return [
            w for w in self.windows() if w.end > since and w.start < until
        ]

    def series(self, fill_gaps: bool = True) -> List[Dict[str, float]]:
        """The ring as dicts, oldest first.  With ``fill_gaps`` (the
        default), intervals between retained windows that received no
        samples appear as explicit zero-count entries."""
        out: List[Dict[str, float]] = []
        prev_index: Optional[int] = None
        step = self.spec.step
        for index in sorted(self._ring):
            if fill_gaps and prev_index is not None:
                for gap in range(prev_index + 1, index):
                    out.append(
                        _empty_window(gap * step, gap * step + self.spec.width)
                    )
            out.append(self._ring[index].to_dict())
            prev_index = index
        return out


class TimeSeries:
    """Windowed views over a registry, fed by its write hook.

    Attach to a live registry and every subsequent metric write is
    mirrored into windows::

        ts = TimeSeries(clock=lambda: sim.now, spec=WindowSpec(100e-6))
        ts.attach(obs.registry)
        ...
        ts.series("service.queue_wait_seconds").windows()

    ``group_by`` names the labels that key separate series (everything
    else — notably ``rank`` — is aggregated away); ``metrics`` is an
    optional name/prefix allowlist (a trailing ``.`` matches the
    prefix).  Series count is capped at ``max_series``; writes beyond
    the cap are counted in :attr:`dropped`, mirroring the registry's
    own cardinality guard.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        spec: Optional[WindowSpec] = None,
        group_by: Sequence[str] = (),
        metrics: Optional[Sequence[str]] = None,
        max_series: int = 256,
    ) -> None:
        if max_series < 1:
            raise ConfigurationError(f"max_series must be >= 1, got {max_series}")
        self.clock = clock
        self.spec = spec if spec is not None else WindowSpec(width=100e-6)
        self.group_by = tuple(group_by)
        self.filters = tuple(metrics) if metrics is not None else None
        self.max_series = max_series
        #: writes dropped by the series cap
        self.dropped = 0
        self._series: Dict[Tuple[str, GroupKey], WindowedSeries] = {}
        self._attached: List[MetricsRegistry] = []

    # -- wiring ------------------------------------------------------------

    def attach(self, registry: MetricsRegistry) -> "TimeSeries":
        registry.add_write_hook(self._on_write)
        self._attached.append(registry)
        return self

    def detach(self, registry: Optional[MetricsRegistry] = None) -> None:
        targets = [registry] if registry is not None else list(self._attached)
        for reg in targets:
            reg.remove_write_hook(self._on_write)
            if reg in self._attached:
                self._attached.remove(reg)

    def _wanted(self, name: str) -> bool:
        if self.filters is None:
            return True
        return any(
            name == f or (f.endswith(".") and name.startswith(f))
            for f in self.filters
        )

    def _on_write(self, metric: Any, value: float, labels: Dict[str, Any]) -> None:
        if not self._wanted(metric.name):
            return
        self.observe(metric.name, value, labels)

    # -- feeding -----------------------------------------------------------

    def observe(
        self,
        name: str,
        value: float,
        labels: Optional[Dict[str, Any]] = None,
        when: Optional[float] = None,
    ) -> None:
        """Fold one sample directly (the hook path, and what offline
        replay uses with an explicit ``when``)."""
        group: GroupKey = ()
        if labels and self.group_by:
            group = tuple(
                sorted(
                    (k, str(labels[k])) for k in self.group_by if k in labels
                )
            )
        key = (name, group)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.dropped += 1
                return
            series = self._series[key] = WindowedSeries(self.spec)
        series.observe(self.clock() if when is None else when, value)

    # -- reading -----------------------------------------------------------

    def series(self, name: str, **labels: Any) -> Optional[WindowedSeries]:
        """The windowed series for ``name`` under the given group
        labels (which must match the configured ``group_by`` subset)."""
        group = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self._series.get((name, group))

    def matching(self, name: str, **labels: Any) -> List[WindowedSeries]:
        """Every series of family ``name`` whose group labels include
        the given subset (e.g. all outcomes of one tenant)."""
        query = tuple(sorted((k, str(v)) for k, v in labels.items()))
        out = []
        for (fam, group), series in sorted(self._series.items()):
            if fam != name:
                continue
            entries = dict(group)
            if all(entries.get(k) == v for k, v in query):
                out.append(series)
        return out

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def total_windows(self) -> int:
        """Retained windows across every series (the memory bound the
        scale test asserts)."""
        return sum(len(s) for s in self._series.values())

    def snapshot(self, fill_gaps: bool = True) -> Dict[str, Any]:
        """JSON-able dump: family -> list of {labels, count, windows}.

        Families and groups that received zero samples inside a
        retained-but-gap interval carry explicit zero-count window
        entries (``fill_gaps``) — "no data" is visible, not absent.
        """
        out: Dict[str, Any] = {
            "spec": {
                "width": self.spec.width,
                "slide": self.spec.step,
                "history": self.spec.history,
                "max_samples": self.spec.max_samples,
            },
            "group_by": list(self.group_by),
            "dropped": self.dropped,
            "families": {},
        }
        for (name, group), series in sorted(self._series.items()):
            out["families"].setdefault(name, []).append(
                {
                    "labels": dict(group),
                    "count": series.count,
                    "sum": series.total,
                    "windows": series.series(fill_gaps=fill_gaps),
                }
            )
        return out


__all__ = [
    "WindowSpec",
    "WindowStats",
    "WindowedSeries",
    "TimeSeries",
]
