"""Per-tenant chargeback: metered usage priced into a cost table.

The cluster service meters four resources per tenant as it runs
(counters on the shared world registry, so they survive into any
snapshot/export):

* ``service.gpu_seconds``   — device-seconds held, gang size × service
  time, metered at teardown;
* ``service.net_bytes``     — fabric bytes moved (delta of the tenant
  view's ``rma.bytes`` across the job's lifetime);
* ``service.queue_wait_seconds`` — admission-queue wait (histogram,
  already metered at launch);
* ``service.leaked_bytes``  — device memory abandoned by failed jobs.

:func:`chargeback_report` turns a metrics snapshot plus a
:class:`CostRates` price sheet into a :class:`ChargebackReport` whose
per-tenant rows sum to the whole-service totals row — the invariant
the saturation benchmark asserts.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.util.errors import ConfigurationError

GiB = float(1 << 30)


@dataclasses.dataclass(frozen=True)
class CostRates:
    """Price sheet, in abstract cost units (defaults chosen so each
    resource contributes a visible share for the simulated job mix)."""

    #: per GPU-device-second held
    gpu_second: float = 1.0
    #: per GiB moved over the fabric
    network_gib: float = 0.05
    #: per job-second spent waiting in the admission queue (an
    #: internal SLA charge back to the *service*, still attributed
    #: per tenant so the table shows who queued)
    queue_second: float = 0.1
    #: per GiB of device memory leaked by failed jobs (penalty rate —
    #: leaks hold capacity until reaped)
    leaked_gib: float = 2.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ConfigurationError(f"negative rate for {field.name}")


@dataclasses.dataclass
class TenantUsage:
    """Metered resource consumption for one tenant."""

    tenant: str
    jobs_completed: int = 0
    jobs_failed: int = 0
    jobs_rejected: int = 0
    gpu_seconds: float = 0.0
    network_bytes: float = 0.0
    queue_wait_seconds: float = 0.0
    leaked_bytes: float = 0.0

    def cost(self, rates: CostRates) -> float:
        return (
            self.gpu_seconds * rates.gpu_second
            + self.network_bytes / GiB * rates.network_gib
            + self.queue_wait_seconds * rates.queue_second
            + self.leaked_bytes / GiB * rates.leaked_gib
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def usage_from_dict(doc: Dict[str, Any]) -> TenantUsage:
    return TenantUsage(**doc)


@dataclasses.dataclass
class ChargebackReport:
    """Per-tenant usage rows plus the price sheet that values them."""

    rows: List[TenantUsage]
    rates: CostRates

    def __post_init__(self) -> None:
        self.rows = sorted(self.rows, key=lambda r: r.tenant)

    @property
    def total(self) -> TenantUsage:
        """Whole-service totals (sum of every tenant row)."""
        total = TenantUsage(tenant="TOTAL")
        for row in self.rows:
            total.jobs_completed += row.jobs_completed
            total.jobs_failed += row.jobs_failed
            total.jobs_rejected += row.jobs_rejected
            total.gpu_seconds += row.gpu_seconds
            total.network_bytes += row.network_bytes
            total.queue_wait_seconds += row.queue_wait_seconds
            total.leaked_bytes += row.leaked_bytes
        return total

    def row_for(self, tenant: str) -> Optional[TenantUsage]:
        for row in self.rows:
            if row.tenant == tenant:
                return row
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rates": dataclasses.asdict(self.rates),
            "tenants": [r.to_dict() for r in self.rows],
            "total": self.total.to_dict(),
            "total_cost": self.total.cost(self.rates),
        }

    def render(self) -> str:
        from repro.bench.report import Table

        t = Table(
            "Per-tenant chargeback",
            [
                "tenant",
                "done",
                "fail",
                "rej",
                "gpu-s",
                "net KiB",
                "queue ms",
                "leaked KiB",
                "cost",
            ],
        )
        for row in self.rows + [self.total]:
            t.add_row(
                row.tenant,
                row.jobs_completed,
                row.jobs_failed,
                row.jobs_rejected,
                f"{row.gpu_seconds:.6f}",
                f"{row.network_bytes / 1024:.1f}",
                f"{row.queue_wait_seconds * 1e3:.3f}",
                f"{row.leaked_bytes / 1024:.1f}",
                f"{row.cost(self.rates):.6f}",
            )
        return t.render()


def report_from_dict(doc: Dict[str, Any]) -> ChargebackReport:
    """Rebuild a :class:`ChargebackReport` from :meth:`ChargebackReport.
    to_dict` output (the offline-replay path; the totals row is
    recomputed from the tenant rows, so a tampered export shows a
    mismatch instead of being trusted)."""
    return ChargebackReport(
        rows=[usage_from_dict(r) for r in doc.get("tenants", ())],
        rates=CostRates(**doc.get("rates", {})),
    )


def chargeback_report(
    registry: Any,
    rates: Optional[CostRates] = None,
) -> ChargebackReport:
    """Build the chargeback table from the service's world
    :class:`~repro.obs.metrics.MetricsRegistry`.

    Tenants are discovered from ``service.jobs`` label sets, so a
    tenant whose every job was rejected still gets a row (zero usage,
    nonzero rejected count) — absence from the table would misread as
    "never asked for anything".
    """
    rates = rates or CostRates()
    jobs = registry.counter("service.jobs", "jobs by tenant/kind/outcome")
    tenants = sorted(
        {
            str(dict(key).get("tenant"))
            for key in jobs.label_keys()
            if dict(key).get("tenant") is not None
        }
    )
    gpu = registry.counter("service.gpu_seconds", "device-seconds held per tenant")
    net = registry.counter("service.net_bytes", "fabric bytes moved per tenant")
    leaked = registry.counter("service.leaked_bytes", "bytes leaked by failed jobs")
    waits = registry.histogram("service.queue_wait_seconds", "admission queue wait")
    rows = []
    for tenant in tenants:
        rows.append(
            TenantUsage(
                tenant=tenant,
                jobs_completed=int(jobs.value(tenant=tenant, outcome="completed")),
                jobs_failed=int(jobs.value(tenant=tenant, outcome="failed")),
                jobs_rejected=int(jobs.value(tenant=tenant, outcome="rejected")),
                gpu_seconds=gpu.value(tenant=tenant),
                network_bytes=net.value(tenant=tenant),
                queue_wait_seconds=waits.stats(tenant=tenant).total,
                leaked_bytes=leaked.value(tenant=tenant),
            )
        )
    return ChargebackReport(rows=rows, rates=rates)


__all__ = [
    "GiB",
    "CostRates",
    "TenantUsage",
    "usage_from_dict",
    "ChargebackReport",
    "report_from_dict",
    "chargeback_report",
]
