"""Anomaly and straggler detection over one run's telemetry.

The tracing layer *records* load imbalance and fault recovery; this
module *detects* them.  A set of pluggable :class:`AnomalyRule`
objects examines the run's spans and metrics and emits
:class:`Finding` entries — the report a user (or CI job) reads to
learn that rank 17 arrived 300 µs late at every barrier, or that the
conduit retry rate blew through its SLO.

Built-in rules:

* :class:`BarrierSkewRule` — per-rank arrival lateness at rendezvous
  points (barriers, OMPCCL collectives).  A rank whose mean lateness
  is a robust outlier (median + z·MAD across ranks) *and* exceeds an
  absolute/relative floor is flagged as a straggler.
* :class:`WaitImbalanceRule` — busy-time outliers from the per-track
  wait-state statistics (the critical-path tiles): an overloaded rank
  plus a cluster-level load-imbalance finding.
* :class:`RetrySloRule` — fault-recovery SLOs from the metrics:
  conduit retry rate, timeouts, and give-ups.
* :class:`DroppedSeriesRule` — telemetry self-check: the metric
  cardinality guard dropped writes, so per-rank views are incomplete.
* :class:`EngineThroughputRule` — optional engine-speed floor
  (``sim.events_per_sec``), disabled unless configured.

Rules read metrics through :class:`MetricsView`, which answers
aggregating ``value(name, **labels)`` queries from either a live
:class:`~repro.obs.metrics.MetricsRegistry` or a loaded snapshot
dict — so ``python -m repro.obs report`` works offline on exported
files.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecord

#: finding severities, mildest first
SEVERITIES: Tuple[str, ...] = ("info", "warning", "critical")

#: span-name prefixes treated as all-to-all rendezvous points
RENDEZVOUS_PREFIXES: Tuple[str, ...] = ("barrier", "ompccl.", "xccl.")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One detected anomaly."""

    rule: str
    severity: str
    #: what the finding is about — "rank3", "cluster", "engine", ...
    subject: str
    message: str
    #: the measured value that tripped the rule
    value: float
    #: the threshold it was compared against
    threshold: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class MetricsView:
    """Aggregating metric reads from a registry *or* a snapshot dict.

    ``value(name, **labels)`` sums every series of the family whose
    labels include the query subset — the same semantics as
    ``MetricsRegistry.value`` — regardless of the backing store.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.registry = registry
        self.snapshot = snapshot

    @property
    def empty(self) -> bool:
        return self.registry is None and self.snapshot is None

    def value(self, name: str, **labels: Any) -> float:
        if self.registry is not None:
            return self.registry.value(name, **labels)
        if self.snapshot is None:
            return 0.0
        query = {k: str(v) for k, v in labels.items()}
        total = 0.0
        for kind in ("counters", "gauges"):
            family = self.snapshot.get(kind, {}).get(name)
            if not family:
                continue
            for entry in family.get("series", ()):
                entry_labels = entry.get("labels", {})
                if all(entry_labels.get(k) == v for k, v in query.items()):
                    total += float(entry.get("value", 0.0))
        return total

    def dropped_series(self) -> float:
        if self.registry is not None:
            return float(self.registry.dropped_series)
        if self.snapshot is not None:
            return float(
                self.snapshot.get("health", {}).get("dropped_series", 0)
            )
        return 0.0


@dataclasses.dataclass
class AnomalyInputs:
    """Everything a rule may look at."""

    spans: Sequence[SpanRecord] = ()
    metrics: MetricsView = dataclasses.field(default_factory=MetricsView)

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)


class AnomalyRule:
    """Base class: examine one run, emit findings."""

    name = "rule"

    def evaluate(self, inputs: AnomalyInputs) -> List[Finding]:
        raise NotImplementedError


class BarrierSkewRule(AnomalyRule):
    """Stragglers from rendezvous arrival skew.

    For every rendezvous span name (``barrier``, ``ompccl.*``, ...),
    the k-th occurrence on each track forms one rendezvous instance;
    a track's *lateness* at an instance is its arrival (span start)
    minus the earliest arrival.  A track is flagged when its mean
    lateness is a robust outlier — above ``median + zscore * MAD``
    across tracks — and above the floor
    ``max(min_lateness, min_share * makespan)``, which keeps the
    detector quiet on structurally skewed but healthy runs.
    """

    name = "barrier_skew"

    def __init__(
        self,
        prefixes: Sequence[str] = RENDEZVOUS_PREFIXES,
        zscore: float = 6.0,
        min_lateness: float = 0.0,
        min_share: float = 0.02,
        severity: str = "warning",
    ) -> None:
        self.prefixes = tuple(prefixes)
        self.zscore = zscore
        self.min_lateness = min_lateness
        self.min_share = min_share
        self.severity = severity

    def _is_rendezvous(self, name: str) -> bool:
        return any(
            name == p or (p.endswith(".") and name.startswith(p))
            for p in self.prefixes
        )

    def lateness_by_track(
        self, spans: Iterable[SpanRecord]
    ) -> Dict[str, Tuple[float, int]]:
        """track -> (mean lateness seconds, instances participated)."""
        per_name: Dict[str, Dict[str, List[SpanRecord]]] = {}
        for s in spans:
            if self._is_rendezvous(s.name):
                per_name.setdefault(s.name, {}).setdefault(s.track, []).append(s)
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for tracks in per_name.values():
            if len(tracks) < 2:
                continue
            for lst in tracks.values():
                lst.sort(key=lambda s: (s.start, s.span_id))
            depth = max(len(lst) for lst in tracks.values())
            for k in range(depth):
                arrivals = {
                    t: lst[k].start for t, lst in tracks.items() if len(lst) > k
                }
                if len(arrivals) < 2:
                    continue
                first = min(arrivals.values())
                for track, at in arrivals.items():
                    sums[track] = sums.get(track, 0.0) + (at - first)
                    counts[track] = counts.get(track, 0) + 1
        return {
            t: (sums[t] / counts[t], counts[t]) for t in sums if counts[t]
        }

    def evaluate(self, inputs: AnomalyInputs) -> List[Finding]:
        scores = self.lateness_by_track(inputs.spans)
        if len(scores) < 3:
            return []
        values = [v for v, _ in scores.values()]
        med = _median(values)
        mad = _median([abs(v - med) for v in values])
        floor = max(self.min_lateness, self.min_share * inputs.makespan)
        threshold = max(med + self.zscore * mad, floor)
        findings = []
        for track in sorted(scores):
            score, instances = scores[track]
            if score > threshold:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=self.severity,
                        subject=track,
                        message=(
                            f"straggler: mean rendezvous lateness "
                            f"{score * 1e6:.1f} us over {instances} "
                            f"instance(s), cluster median {med * 1e6:.1f} us"
                        ),
                        value=score,
                        threshold=threshold,
                    )
                )
        return findings


class WaitImbalanceRule(AnomalyRule):
    """Load imbalance from per-track busy/wait statistics.

    Flags the cluster when max-busy / mean-busy exceeds
    ``max_imbalance``, and any individual track whose busy time is a
    robust outlier above the cluster median.
    """

    name = "wait_imbalance"

    def __init__(
        self,
        max_imbalance: float = 1.5,
        zscore: float = 6.0,
        min_share: float = 0.05,
        severity: str = "warning",
    ) -> None:
        self.max_imbalance = max_imbalance
        self.zscore = zscore
        self.min_share = min_share
        self.severity = severity

    def evaluate(self, inputs: AnomalyInputs) -> List[Finding]:
        from repro.obs.critical_path import track_stats

        makespan = inputs.makespan
        stats = [
            t
            for t in track_stats(inputs.spans, makespan)
            if t.track.startswith("rank")
        ]
        if len(stats) < 3:
            return []
        busies = [t.busy for t in stats]
        mean_busy = sum(busies) / len(busies)
        findings: List[Finding] = []
        if mean_busy > 0:
            imbalance = max(busies) / mean_busy
            if imbalance > self.max_imbalance:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=self.severity,
                        subject="cluster",
                        message=(
                            f"load imbalance {imbalance:.2f}x "
                            f"(max busy / mean busy over {len(stats)} ranks)"
                        ),
                        value=imbalance,
                        threshold=self.max_imbalance,
                    )
                )
        med = _median(busies)
        mad = _median([abs(b - med) for b in busies])
        floor = self.min_share * makespan
        threshold = max(med + self.zscore * mad, med + floor)
        for t in stats:
            if t.busy > threshold:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=self.severity,
                        subject=t.track,
                        message=(
                            f"busy-time outlier: {t.busy * 1e6:.1f} us busy "
                            f"vs cluster median {med * 1e6:.1f} us"
                        ),
                        value=t.busy,
                        threshold=threshold,
                    )
                )
        return findings


class RetrySloRule(AnomalyRule):
    """Fault-recovery SLOs from the conduit retry metrics."""

    name = "retry_slo"

    def __init__(
        self,
        max_retry_rate: float = 0.05,
        max_giveups: float = 0.0,
        severity: str = "warning",
    ) -> None:
        self.max_retry_rate = max_retry_rate
        self.max_giveups = max_giveups
        self.severity = severity

    def evaluate(self, inputs: AnomalyInputs) -> List[Finding]:
        m = inputs.metrics
        if m.empty:
            return []
        findings: List[Finding] = []
        retries = m.value("conduit.retries")
        messages = m.value("conduit.messages")
        ops = messages if messages else m.value("rma.ops")
        if ops > 0:
            rate = retries / ops
            if rate > self.max_retry_rate:
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=self.severity,
                        subject="cluster",
                        message=(
                            f"conduit retry rate {rate:.1%} over "
                            f"{ops:.0f} message(s) exceeds the "
                            f"{self.max_retry_rate:.0%} SLO"
                        ),
                        value=rate,
                        threshold=self.max_retry_rate,
                    )
                )
        giveups = m.value("conduit.giveups")
        if giveups > self.max_giveups:
            findings.append(
                Finding(
                    rule=self.name,
                    severity="critical",
                    subject="cluster",
                    message=f"{giveups:.0f} conduit operation(s) exhausted retries",
                    value=giveups,
                    threshold=self.max_giveups,
                )
            )
        injected = m.value("faults.injected")
        if injected > 0:
            findings.append(
                Finding(
                    rule=self.name,
                    severity="info",
                    subject="cluster",
                    message=f"{injected:.0f} fault(s) injected by the active plan",
                    value=injected,
                    threshold=0.0,
                )
            )
        return findings


class DroppedSeriesRule(AnomalyRule):
    """Telemetry self-check: the cardinality guard dropped writes."""

    name = "dropped_series"

    def __init__(self, severity: str = "info") -> None:
        self.severity = severity

    def evaluate(self, inputs: AnomalyInputs) -> List[Finding]:
        dropped = inputs.metrics.dropped_series()
        if dropped <= 0:
            return []
        return [
            Finding(
                rule=self.name,
                severity=self.severity,
                subject="telemetry",
                message=(
                    f"{dropped:.0f} metric write(s) dropped by the "
                    "cardinality guard; per-rank series are incomplete "
                    "(use rollups at this scale)"
                ),
                value=dropped,
                threshold=0.0,
            )
        ]


class EngineThroughputRule(AnomalyRule):
    """Engine-speed floor; disabled until given a threshold."""

    name = "engine_throughput"

    def __init__(
        self,
        min_events_per_sec: Optional[float] = None,
        severity: str = "warning",
    ) -> None:
        self.min_events_per_sec = min_events_per_sec
        self.severity = severity

    def evaluate(self, inputs: AnomalyInputs) -> List[Finding]:
        if self.min_events_per_sec is None:
            return []
        eps = inputs.metrics.value("sim.events_per_sec")
        if eps <= 0 or eps >= self.min_events_per_sec:
            return []
        return [
            Finding(
                rule=self.name,
                severity=self.severity,
                subject="engine",
                message=(
                    f"engine retired {eps:,.0f} events/s, below the "
                    f"{self.min_events_per_sec:,.0f} floor"
                ),
                value=eps,
                threshold=self.min_events_per_sec,
            )
        ]


def default_rules() -> List[AnomalyRule]:
    return [
        BarrierSkewRule(),
        WaitImbalanceRule(),
        RetrySloRule(),
        DroppedSeriesRule(),
        EngineThroughputRule(),
    ]


@dataclasses.dataclass
class AnomalyReport:
    """The findings of one detection pass."""

    findings: List[Finding]
    rules: List[str]

    @property
    def ok(self) -> bool:
        """True when nothing at warning severity or above was found."""
        return not any(f.severity in ("warning", "critical") for f in self.findings)

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "rules": self.rules,
            "findings": [f.to_dict() for f in self.findings],
        }

    def render(self) -> str:
        from repro.bench.report import Table

        title = "Anomaly findings"
        if not self.findings:
            rules = ", ".join(self.rules)
            return f"{title}: none ({len(self.rules)} rule(s) ran: {rules})"
        t = Table(title, ["severity", "rule", "subject", "finding"])
        for f in self.findings:
            t.add_row(f.severity, f.rule, f.subject, f.message)
        return t.render()


def detect(
    spans: Sequence[SpanRecord] = (),
    registry: Optional[MetricsRegistry] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    rules: Optional[Sequence[AnomalyRule]] = None,
) -> AnomalyReport:
    """Run the rules over one run's telemetry.

    ``spans`` may be the live profiler store or records loaded from an
    exported trace; metrics come from a live ``registry`` or a loaded
    snapshot dict.  Findings are ordered most severe first.
    """
    chosen = list(rules) if rules is not None else default_rules()
    inputs = AnomalyInputs(
        spans=list(spans),
        metrics=MetricsView(registry=registry, snapshot=snapshot),
    )
    findings: List[Finding] = []
    for rule in chosen:
        findings.extend(rule.evaluate(inputs))
    order = {s: i for i, s in enumerate(reversed(SEVERITIES))}
    findings.sort(key=lambda f: (order.get(f.severity, len(order)), f.rule, f.subject))
    return AnomalyReport(findings=findings, rules=[r.name for r in chosen])


__all__ = [
    "SEVERITIES",
    "Finding",
    "MetricsView",
    "AnomalyInputs",
    "AnomalyRule",
    "BarrierSkewRule",
    "WaitImbalanceRule",
    "RetrySloRule",
    "DroppedSeriesRule",
    "EngineThroughputRule",
    "AnomalyReport",
    "default_rules",
    "detect",
]
