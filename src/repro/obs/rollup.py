"""Cross-rank metric rollups: cluster summaries with flat cardinality.

Per-rank label sets are what make metric exports grow linearly with
rank count — a 1024-rank run carries 1024 series per family.  A
*rollup* collapses every group of series that differ only in their
``rank`` label into one summary — ``ranks`` / ``min`` / ``mean`` /
``max`` / ``p99`` / ``sum`` — computed from the **exact** per-rank
values, so cluster-level exports stay O(label-combinations), not
O(ranks).

Two entry points:

* :func:`rollup_registry` — the rollup document alone
  (family -> groups), attached to :class:`~repro.cluster.spmd.SpmdResult`.
* :func:`rollup_snapshot` — a full snapshot-shaped document where
  rank-labeled series are *replaced* by their rollups (series without a
  rank label pass through verbatim); drop-in for
  ``registry.snapshot()`` when exporting at scale.

Percentiles are exact (linear interpolation over the sorted per-rank
values, numpy-style), unlike the bucket-estimated histogram quantiles.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.util.errors import PercentileError


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Exact ``q``-quantile of ``values`` (linear interpolation).

    ``q`` in [0, 1]; empty input returns 0.0, a single value returns
    itself.  This matches ``numpy.percentile(..., method="linear")``.

    Raises :class:`~repro.util.errors.PercentileError` — a subclass of
    both :class:`ConfigurationError` and :class:`ValueError`, the one
    taxonomy every percentile surface shares (see also
    ``ServiceResult.queue_wait_percentile``).
    """
    if not (0.0 <= q <= 1.0):
        raise PercentileError(f"percentile q must be in [0, 1], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def _summary(values: Sequence[float]) -> Dict[str, float]:
    """The rollup statistics block over exact per-rank values."""
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
        "p99": exact_percentile(values, 0.99),
        "sum": sum(values),
    }


def _split_label(
    labels: Dict[str, str], label: str
) -> Tuple[Optional[str], Tuple[Tuple[str, str], ...]]:
    """(rank value or None, remaining labels as a hashable key)."""
    rank = labels.get(label)
    rest = tuple(sorted((k, v) for k, v in labels.items() if k != label))
    return rank, rest


def rollup_metric(metric, label: str = "rank") -> List[Dict[str, Any]]:
    """Collapse one family's rank-labeled series into summary groups.

    Each group is one combination of the non-rank labels.  Counter and
    gauge groups summarize the per-rank values; histogram groups
    summarize the per-rank observation counts and per-rank means.
    Series without the rank label are not included (they are already
    cluster-level; :func:`rollup_snapshot` passes them through).
    """
    groups: Dict[Tuple[Tuple[str, str], ...], List[Dict[str, Any]]] = {}
    for entry in metric.snapshot():
        rank, rest = _split_label(entry["labels"], label)
        if rank is None:
            continue
        groups.setdefault(rest, []).append(entry)

    out: List[Dict[str, Any]] = []
    for rest, entries in sorted(groups.items()):
        group: Dict[str, Any] = {"labels": dict(rest), "ranks": len(entries)}
        if isinstance(metric, Histogram):
            counts = [float(e["count"]) for e in entries]
            means = [float(e["mean"]) for e in entries]
            group["count"] = _summary(counts)
            group["mean"] = _summary(means)
        else:
            group.update(_summary([float(e["value"]) for e in entries]))
        out.append(group)
    return out


def rollup_registry(
    registry: MetricsRegistry, label: str = "rank", include_empty: bool = True
) -> Dict[str, Any]:
    """Every family's rollup groups: ``{name: {kind, groups}}``.

    A registered family with no ``label``-bearing series contributes an
    explicit ``{"kind": ..., "groups": []}`` entry rather than silently
    vanishing: downstream availability math must see "no data", which
    is *not* the same thing as "100% good".  Pass
    ``include_empty=False`` for the old omit-empty document shape.
    """
    out: Dict[str, Any] = {}
    for metric in registry:
        groups = rollup_metric(metric, label)
        if groups or include_empty:
            out[metric.name] = {"kind": metric.kind, "groups": groups}
    return out


def rollup_snapshot(
    registry: MetricsRegistry, label: str = "rank"
) -> Dict[str, Any]:
    """A snapshot-shaped export with rank series collapsed to rollups.

    Shaped like ``registry.snapshot()`` — same top-level kind buckets
    and health block — but each family carries ``series`` holding only
    its non-rank series plus a ``rollup`` list of groups, keeping the
    document size flat in rank count.
    """
    out: Dict[str, Any] = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "rollup_label": label,
    }
    for metric in registry:
        keep = [
            e for e in metric.snapshot() if label not in e["labels"]
        ]
        entry: Dict[str, Any] = {
            "help": metric.help,
            "series": keep,
            "rollup": rollup_metric(metric, label),
        }
        if isinstance(metric, Histogram):
            entry["bounds"] = list(metric.bounds)
        out[metric.kind + "s"][metric.name] = entry
    out["health"] = registry.health()
    return out


__all__ = [
    "exact_percentile",
    "rollup_metric",
    "rollup_registry",
    "rollup_snapshot",
]
