"""Span profiling on the virtual clock, with causal links.

A :class:`SpanProfiler` records nested timed regions::

    with obs.span("rma.put", rank=r):
        ...

Each span captures the virtual start/end times, its nesting depth, and
a *track* — the timeline it renders on in a Chrome trace (per-rank by
convention: passing ``rank=3`` selects track ``rank3``).  Nesting is
maintained **per track**: two ranks' tasks interleave freely in an
SPMD run, yet each rank's spans nest against that rank's own open
spans, never a sibling's.

Causal tracing
--------------
Every span carries a unique ``span_id``; a :class:`TraceContext`
``(trace_id, span_id)`` names one span so it can travel on a simulated
message.  The send side captures the context of its innermost open
span (:meth:`SpanProfiler.capture`) and attaches it to the message; at
delivery time the receive side either links the context into its own
open span (:meth:`SpanProfiler.link`) or records a standalone delivery
span carrying the link (:meth:`SpanProfiler.record`).  The resulting
``links`` tuples are what the Chrome-trace exporter turns into
Perfetto flow arrows and the critical-path analyzer turns into
cross-rank DAG edges.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """A reference to one span, small enough to ride every message."""

    trace_id: str
    span_id: int


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One completed span on the virtual timeline."""

    name: str
    track: str
    start: float
    end: float
    depth: int
    args: Dict[str, Any]
    #: unique id within the profiler's trace
    span_id: int = 0
    #: span_id of the enclosing span on the same track (None at depth 0)
    parent_id: Optional[int] = None
    #: span_ids of causal predecessors on *other* tracks (message sends
    #: whose delivery this span observed)
    links: Tuple[int, ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        """Dotted-name prefix ("rma.put" -> "rma")."""
        return self.name.split(".", 1)[0]

    def to_dict(self) -> Dict[str, Any]:
        """JSONL-friendly form (used by the spill writer and CLI)."""
        return {
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
            "args": {k: str(v) for k, v in self.args.items()},
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "links": list(self.links),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=doc["name"],
            track=doc["track"],
            start=float(doc["start"]),
            end=float(doc["end"]),
            depth=int(doc.get("depth", 0)),
            args=dict(doc.get("args", {})),
            span_id=int(doc.get("span_id", 0)),
            parent_id=doc.get("parent_id"),
            links=tuple(doc.get("links", ())),
        )

    def __str__(self) -> str:
        return (
            f"[{self.start:.9f}..{self.end:.9f}] {'  ' * self.depth}{self.name} "
            f"({self.track})"
        )


class _NullSpan:
    """Shared no-op context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into the profiler."""

    __slots__ = (
        "profiler",
        "name",
        "track",
        "args",
        "start",
        "depth",
        "span_id",
        "parent_id",
        "links",
    )

    def __init__(self, profiler: "SpanProfiler", name: str, track: str, args: Dict[str, Any]) -> None:
        self.profiler = profiler
        self.name = name
        self.track = track
        self.args = args
        self.links: List[int] = []

    def __enter__(self) -> "_ActiveSpan":
        prof = self.profiler
        stack = prof._stack(self.track)
        self.depth = len(stack)
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = prof._next_id()
        self.start = prof._clock()
        stack.append(self)
        return self

    def __exit__(self, *exc: Any) -> bool:
        prof = self.profiler
        stack = prof._stack(self.track)
        # Remove *this* span, not blindly the top: concurrent tasks on
        # one rank (e.g. multi-device OMPCCL slot tasks) may interleave
        # enter/exit order on a shared track.
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - interleaved same-track tasks
            try:
                stack.remove(self)
            except ValueError:
                pass
        prof.records.append(
            SpanRecord(
                name=self.name,
                track=self.track,
                start=self.start,
                end=prof._clock(),
                depth=self.depth,
                args=self.args,
                span_id=self.span_id,
                parent_id=self.parent_id,
                links=tuple(self.links),
            )
        )
        return False

    @property
    def context(self) -> TraceContext:
        """This span's :class:`TraceContext` (while it is open)."""
        return TraceContext(self.profiler.trace_id, self.span_id)


class SpanProfiler:
    """Collects :class:`SpanRecord` objects from ``span()`` regions."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        trace_id: str = "trace0",
        store: Optional[Any] = None,
    ) -> None:
        from repro.obs.sampling import SpanStore

        self.enabled = enabled
        self.trace_id = trace_id
        self._clock = clock or (lambda: 0.0)
        #: completed spans — a budgeted, list-like
        #: :class:`~repro.obs.sampling.SpanStore` (lossless append order
        #: until its memory budget is hit, then per-track sampling)
        self.records: Any = store if store is not None else SpanStore()
        #: per-track stacks of currently open spans
        self._stacks: Dict[str, List[_ActiveSpan]] = {}
        self._ids = itertools.count(1)

    def set_budget(self, budget: Any) -> None:
        """Install a :class:`~repro.obs.sampling.SpanBudget` on the
        store (existing spans are re-admitted under it)."""
        self.records.set_budget(budget)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done once by the world)."""
        self._clock = clock

    def _next_id(self) -> int:
        return next(self._ids)

    def _stack(self, track: str) -> List[_ActiveSpan]:
        stack = self._stacks.get(track)
        if stack is None:
            stack = self._stacks[track] = []
        return stack

    @staticmethod
    def _resolve_track(track: Optional[str], args: Dict[str, Any]) -> str:
        if track is not None:
            return track
        return f"rank{args['rank']}" if "rank" in args else "main"

    def span(self, name: str, track: Optional[str] = None, **args: Any):
        """A context manager timing one region.

        ``track`` names the Chrome-trace timeline; when omitted, a
        ``rank`` argument selects ``rank<r>``, else ``main``.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, self._resolve_track(track, args), args)

    # -- causal tracing --------------------------------------------------------

    def capture(self, track: Optional[str] = None, **args: Any) -> Optional[TraceContext]:
        """The context of the innermost open span on a track.

        This is what a message *sender* attaches to an outgoing
        operation.  Returns None when the profiler is disabled or no
        span is open on the track (nothing to point an arrow at).
        """
        if not self.enabled:
            return None
        stack = self._stacks.get(self._resolve_track(track, args))
        if not stack:
            return None
        return stack[-1].context

    def link(self, ctx: Optional[TraceContext], track: Optional[str] = None, **args: Any) -> bool:
        """Attach an incoming causal link to the innermost open span.

        Called at message *delivery* time on the receiving track.
        Returns True when a span was open to receive the link; False
        otherwise (caller may then :meth:`record` a standalone delivery
        span instead).  Self-links are dropped.
        """
        if not self.enabled or ctx is None or ctx.trace_id != self.trace_id:
            return False
        stack = self._stacks.get(self._resolve_track(track, args))
        if not stack:
            return False
        target = stack[-1]
        if target.span_id != ctx.span_id and ctx.span_id not in target.links:
            target.links.append(ctx.span_id)
        return True

    def link_span(
        self,
        target: Optional[TraceContext],
        link: Optional[TraceContext],
        track: Optional[str] = None,
        **args: Any,
    ) -> bool:
        """Attach ``link`` to a *specific* still-open span.

        Unlike :meth:`link` (which targets the innermost open span),
        this addresses the target by its own context — used by
        collective rendezvous, where a later-arriving rank must link
        itself into the earlier arrivals' still-open collective spans,
        whatever those tracks are doing now.  Returns False when the
        target span already closed (the link is then dropped; the
        reverse edge recorded by the later arrival still captures the
        dependency).
        """
        if (
            not self.enabled
            or target is None
            or link is None
            or target.trace_id != self.trace_id
            or link.trace_id != self.trace_id
            or target.span_id == link.span_id
        ):
            return False
        stack = self._stacks.get(self._resolve_track(track, args))
        for open_span in stack or ():
            if open_span.span_id == target.span_id:
                if link.span_id not in open_span.links:
                    open_span.links.append(link.span_id)
                return True
        return False

    def record(
        self,
        name: str,
        start: float,
        end: float,
        track: Optional[str] = None,
        links: Sequence[TraceContext] = (),
        **args: Any,
    ) -> Optional[SpanRecord]:
        """Append one completed span directly (no context manager).

        Used for receiver-side *delivery* spans emitted from scheduler
        context (transfer completion callbacks), where no task is
        running and no span is open.  ``links`` are the sender contexts
        the delivery observed.
        """
        if not self.enabled:
            return None
        resolved = self._resolve_track(track, args)
        stack = self._stacks.get(resolved)
        rec = SpanRecord(
            name=name,
            track=resolved,
            start=start,
            end=end,
            depth=len(stack) if stack else 0,
            args=args,
            span_id=self._next_id(),
            parent_id=stack[-1].span_id if stack else None,
            links=tuple(
                c.span_id
                for c in links
                if c is not None and c.trace_id == self.trace_id
            ),
        )
        self.records.append(rec)
        return rec

    # -- queries -------------------------------------------------------------

    def select(self, name: Optional[str] = None, track: Optional[str] = None) -> List[SpanRecord]:
        return [
            r
            for r in self.records
            if (name is None or r.name == name)
            and (track is None or r.track == track)
        ]

    def count(self, name: Optional[str] = None) -> int:
        return len(self.select(name))

    def total_time(self, name: str) -> float:
        """Summed duration of every span with the given name."""
        return sum(r.duration for r in self.select(name))

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
