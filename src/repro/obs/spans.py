"""Span profiling on the virtual clock.

A :class:`SpanProfiler` records nested timed regions::

    with obs.span("rma.put", rank=r):
        ...

Each span captures the virtual start/end times, its nesting depth, and
a *track* — the timeline it renders on in a Chrome trace (per-rank by
convention: passing ``rank=3`` selects track ``rank3``).  Nesting is
maintained per OS thread, which in the simulator means per simulated
task, since every task is a real thread and exactly one runs at a
time.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One completed span on the virtual timeline."""

    name: str
    track: str
    start: float
    end: float
    depth: int
    args: Dict[str, Any]

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        """Dotted-name prefix ("rma.put" -> "rma")."""
        return self.name.split(".", 1)[0]

    def __str__(self) -> str:
        return (
            f"[{self.start:.9f}..{self.end:.9f}] {'  ' * self.depth}{self.name} "
            f"({self.track})"
        )


class _NullSpan:
    """Shared no-op context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into the profiler."""

    __slots__ = ("profiler", "name", "track", "args", "start", "depth")

    def __init__(self, profiler: "SpanProfiler", name: str, track: str, args: Dict[str, Any]) -> None:
        self.profiler = profiler
        self.name = name
        self.track = track
        self.args = args

    def __enter__(self) -> "_ActiveSpan":
        prof = self.profiler
        stack = prof._stack()
        self.depth = len(stack)
        self.start = prof._clock()
        stack.append(self.name)
        return self

    def __exit__(self, *exc: Any) -> bool:
        prof = self.profiler
        prof._stack().pop()
        prof.records.append(
            SpanRecord(
                name=self.name,
                track=self.track,
                start=self.start,
                end=prof._clock(),
                depth=self.depth,
                args=self.args,
            )
        )
        return False


class SpanProfiler:
    """Collects :class:`SpanRecord` objects from ``span()`` regions."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        self.records: List[SpanRecord] = []
        self._stacks: Dict[int, List[str]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done once by the world)."""
        self._clock = clock

    def _stack(self) -> List[str]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    def span(self, name: str, track: Optional[str] = None, **args: Any):
        """A context manager timing one region.

        ``track`` names the Chrome-trace timeline; when omitted, a
        ``rank`` argument selects ``rank<r>``, else ``main``.
        """
        if not self.enabled:
            return _NULL_SPAN
        if track is None:
            track = f"rank{args['rank']}" if "rank" in args else "main"
        return _ActiveSpan(self, name, track, args)

    # -- queries -------------------------------------------------------------

    def select(self, name: Optional[str] = None, track: Optional[str] = None) -> List[SpanRecord]:
        return [
            r
            for r in self.records
            if (name is None or r.name == name)
            and (track is None or r.track == track)
        ]

    def count(self, name: Optional[str] = None) -> int:
        return len(self.select(name))

    def total_time(self, name: str) -> float:
        """Summed duration of every span with the given name."""
        return sum(r.duration for r in self.select(name))

    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()
