"""Cross-rank critical-path and wait-state analysis.

Given the spans of one run — each carrying per-track nesting
(``parent_id``) and cross-track causal ``links`` from message
deliveries — this module reconstructs the span DAG and walks the
**critical path**: the single causal chain of work that determined the
run's makespan.  Scalasca-style, the path is reported as a time
*breakdown by category* (network / device / host / wait) whose parts
tile the interval ``[0, T]`` exactly, so they always sum to the
critical-path length.

Alongside the path itself, :func:`critical_path` computes per-track
(per-rank) busy/wait statistics and a load-imbalance factor — the
tables a user reads to decide whether the run is communication-bound,
compute-bound, or simply lopsided.

Typical use::

    summary = result.critical_path          # SpmdResult property
    print(summary.render())                 # text tables
    summary.breakdown["network"]            # seconds on the path
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord

#: span-name prefixes -> breakdown category; longest dotted prefix wins.
#: Anything unmatched is "host" (CPU-side runtime work).
DEFAULT_CATEGORIES: Dict[str, str] = {
    "conduit": "network",
    "gaspi": "network",
    "am": "network",
    "rma.put": "network",
    "rma.get": "network",
    "rma.deliver": "network",
    "rma.notify": "network",
    "rma.fence": "wait",
    "barrier": "wait",
    "fence": "wait",
    "wait": "wait",
    "stream": "device",
    "kernel": "device",
    "device": "device",
    "ompccl": "device",
    "xccl": "device",
}

#: the four categories, in dashboard display order
CATEGORY_ORDER: Tuple[str, ...] = ("network", "device", "host", "wait")


def categorize(name: str, categories: Optional[Dict[str, str]] = None) -> str:
    """Map a span name to a breakdown category by longest dotted prefix."""
    table = DEFAULT_CATEGORIES if categories is None else categories
    prefix = name
    while True:
        if prefix in table:
            return table[prefix]
        if "." not in prefix:
            return "host"
        prefix = prefix.rsplit(".", 1)[0]


@dataclasses.dataclass(frozen=True)
class PathSegment:
    """One contiguous stretch of the critical path."""

    start: float
    end: float
    category: str
    #: span name charged for this stretch ("(idle)" for wait gaps)
    name: str
    #: track the stretch ran on
    track: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TrackStats:
    """Busy/wait accounting for one track over the whole run."""

    track: str
    #: union of span intervals on this track (overlaps counted once)
    busy: float
    #: makespan minus busy
    wait: float
    spans: int


@dataclasses.dataclass
class CriticalPathSummary:
    """The critical path of one run, plus per-track wait statistics."""

    #: critical-path length == trace makespan (last span end)
    total: float
    #: path segments in time order; they tile [0, total] exactly
    segments: List[PathSegment]
    #: category -> seconds on the path; values sum to ``total``
    breakdown: Dict[str, float]
    #: per-track busy/wait, sorted by track
    tracks: List[TrackStats]
    #: max busy / mean busy across tracks (1.0 = perfectly balanced)
    imbalance: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the regression harness)."""
        return {
            "total": self.total,
            "breakdown": {c: self.breakdown.get(c, 0.0) for c in CATEGORY_ORDER},
            "imbalance": self.imbalance,
            "tracks": [dataclasses.asdict(t) for t in self.tracks],
            "segments": len(self.segments),
        }

    def render(self) -> str:
        """The dashboard tables: breakdown, per-track waits, hot spans."""
        from repro.bench.report import Table

        out = []
        breakdown = Table(
            "Critical path breakdown", ["category", "seconds", "share"]
        )
        for cat in CATEGORY_ORDER:
            sec = self.breakdown.get(cat, 0.0)
            share = sec / self.total if self.total else 0.0
            breakdown.add_row(cat, f"{sec:.9f}", f"{share * 100:5.1f}%")
        breakdown.add_row("total", f"{self.total:.9f}", "100.0%")
        out.append(breakdown.render())

        waits = Table(
            "Per-track wait states", ["track", "busy s", "wait s", "busy %", "spans"]
        )
        for t in self.tracks:
            pct = t.busy / self.total * 100 if self.total else 0.0
            waits.add_row(t.track, f"{t.busy:.9f}", f"{t.wait:.9f}", f"{pct:5.1f}", t.spans)
        waits.add_row("imbalance", f"{self.imbalance:.3f}x", "", "", "")
        out.append(waits.render())

        hot = Table("Hottest path spans", ["name", "track", "seconds", "share"])
        by_name: Dict[Tuple[str, str], float] = {}
        for seg in self.segments:
            key = (seg.name, seg.track)
            by_name[key] = by_name.get(key, 0.0) + seg.duration
        top = sorted(by_name.items(), key=lambda kv: (-kv[1], kv[0]))[:8]
        for (name, track), sec in top:
            share = sec / self.total if self.total else 0.0
            hot.add_row(name, track, f"{sec:.9f}", f"{share * 100:5.1f}%")
        out.append(hot.render())
        return "\n\n".join(out)


def track_stats(spans: Sequence[SpanRecord], total: float) -> List[TrackStats]:
    """Per-track busy/wait accounting (union of span intervals).

    Public entry point shared with the anomaly rules; ``total`` is the
    run makespan the wait time is measured against.
    """
    return _track_stats(spans, total)


def _track_stats(spans: Sequence[SpanRecord], total: float) -> List[TrackStats]:
    by_track: Dict[str, List[Tuple[float, float]]] = {}
    counts: Dict[str, int] = {}
    for r in spans:
        by_track.setdefault(r.track, []).append((r.start, r.end))
        counts[r.track] = counts.get(r.track, 0) + 1
    stats = []
    for track in sorted(by_track, key=_track_key):
        busy = 0.0
        cur_s = cur_e = None
        for s, e in sorted(by_track[track]):
            if cur_e is None or s > cur_e:
                if cur_e is not None:
                    busy += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_e is not None:
            busy += cur_e - cur_s
        stats.append(
            TrackStats(
                track=track,
                busy=busy,
                wait=max(0.0, total - busy),
                spans=counts[track],
            )
        )
    return stats


def _track_key(track: str) -> Tuple[int, object]:
    if track.startswith("rank") and track[4:].isdigit():
        return (0, int(track[4:]))
    return (1, track)


def critical_path(
    spans: Iterable[SpanRecord],
    categories: Optional[Dict[str, str]] = None,
    categorizer: Optional[Callable[[str], str]] = None,
) -> CriticalPathSummary:
    """Walk the cross-rank span DAG backward from the last span to end.

    The walk starts at the globally last-ending span and moves backward
    through time, at each step charging the current stretch to the
    active span's category and then jumping to the most recent causal
    predecessor:

    * an incoming cross-track **link** whose sender span ended while the
      current span was running (a message delivery the span waited on),
    * else the **parent** span on the same track (nesting),
    * else the latest earlier span — same-track sibling or linked
      sender — with any gap in between charged as ``wait``.

    Because each hop continues exactly where the previous stretch
    began, the emitted segments tile ``[0, T]`` and the category
    breakdown sums to the critical-path length by construction.
    """
    cat = categorizer or (lambda name: categorize(name, categories))
    records = [r for r in spans if r.end >= r.start]
    if not records:
        return CriticalPathSummary(0.0, [], {}, [], 0.0)

    by_id = {r.span_id: r for r in records}
    by_track: Dict[str, List[SpanRecord]] = {}
    for r in records:
        by_track.setdefault(r.track, []).append(r)
    for track_spans in by_track.values():
        track_spans.sort(key=lambda r: (r.end, r.span_id))

    root = max(records, key=lambda r: (r.end, r.span_id))
    total = root.end
    segments: List[PathSegment] = []
    visited = set()
    cur = root
    t = cur.end

    def emit(start: float, end: float, rec: Optional[SpanRecord]) -> None:
        if end <= start:
            return
        if rec is None:
            segments.append(PathSegment(start, end, "wait", "(idle)", track))
        else:
            segments.append(
                PathSegment(start, end, cat(rec.name), rec.name, rec.track)
            )

    # Bounded by construction (each iteration marks a span visited or
    # terminates), but keep an explicit fuse against pathological input.
    for _ in range(2 * len(records) + 2):
        track = cur.track
        # A message arriving mid-span: jump across tracks at its arrival.
        arriving = [
            by_id[link]
            for link in cur.links
            if link in by_id
            and link not in visited
            and cur.start < by_id[link].end <= t
        ]
        if arriving:
            pred = max(arriving, key=lambda r: (r.end, r.span_id))
            emit(pred.end, t, cur)
            visited.add(cur.span_id)
            cur, t = pred, pred.end
            continue

        emit(cur.start, t, cur)
        visited.add(cur.span_id)
        t = cur.start

        # Nesting: time before a child began belongs to its parent.
        parent = by_id.get(cur.parent_id) if cur.parent_id is not None else None
        if parent is not None and parent.span_id not in visited:
            cur = parent
            continue

        # Latest earlier predecessor: same-track sibling or linked sender.
        candidates: List[SpanRecord] = []
        for r in reversed(by_track[track]):
            if r.end <= t and r.span_id not in visited:
                candidates.append(r)
                break
        for link in cur.links:
            r = by_id.get(link)
            if r is not None and r.end <= t and r.span_id not in visited:
                candidates.append(r)
        if not candidates:
            break
        pred = max(candidates, key=lambda r: (r.end, r.span_id))
        emit(pred.end, t, None)
        cur, t = pred, pred.end

    if t > 0:
        track = cur.track
        emit(0.0, t, None)

    segments.reverse()
    breakdown: Dict[str, float] = {}
    for seg in segments:
        breakdown[seg.category] = breakdown.get(seg.category, 0.0) + seg.duration

    tracks = _track_stats(records, total)
    busies = [s.busy for s in tracks]
    mean_busy = sum(busies) / len(busies) if busies else 0.0
    imbalance = (max(busies) / mean_busy) if mean_busy > 0 else 1.0

    return CriticalPathSummary(
        total=total,
        segments=segments,
        breakdown=breakdown,
        tracks=tracks,
        imbalance=imbalance,
    )
