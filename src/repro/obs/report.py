"""``python -m repro.obs`` — offline telemetry reports.

``report`` runs the :mod:`repro.obs.anomaly` rules over telemetry
*files* — an exported Chrome trace (plus, optionally, a metrics
snapshot and a span spill) — so straggler detection works after the
fact, in CI, or on a trace somebody mailed you::

    python -m repro.obs report TRACE.json --metrics METRICS.json
    python -m repro.obs report --spill SPANS.jsonl --json report.json
    python -m repro.obs report --demo --ranks 16 --straggler 5

``--demo`` runs a built-in put-ring workload (optionally with a
fault-stalled rank) and reports on it directly — the quickest way to
see the detector fire.

``slo`` replays a cluster-service run exported by
:meth:`~repro.cluster.service.ServiceResult.export` through the SLO
burn-rate machinery and prints the error-budget report, the incident
timeline, and the per-tenant chargeback table::

    python -m repro.obs slo RUN.json
    python -m repro.obs slo RUN.json --json timeline.json --strict

The replay recomputes alerts from the job records alone and
cross-checks them against the timeline recorded live, so a stale or
edited export is flagged instead of trusted.

Exit codes (both subcommands): **0** — clean; **1** — ``--strict`` and
findings at warning severity or above exist (``report``) / alerts
fired or the replay disagrees with the export (``slo``); **2** — usage
error (no input given, or the export lacks the needed sections).
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord

#: virtual stall injected on the demo straggler (seconds)
DEMO_STALL = 300e-6


def load_trace(path: str) -> Tuple[List[SpanRecord], Dict[str, Any]]:
    """Reconstruct spans from an exported Chrome trace document.

    Complete (``"ph": "X"``) events become :class:`SpanRecord` objects;
    ``thread_name`` metadata recovers the track names.  Flow/instant
    events are ignored (links are not needed by the detection rules).
    Returns ``(spans, otherData)``.
    """
    with open(path) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    tracks: Dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[ev.get("tid", 0)] = ev.get("args", {}).get("name", "")
    spans: List[SpanRecord] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        start = ev.get("ts", 0.0) / 1e6
        spans.append(
            SpanRecord(
                name=ev.get("name", ""),
                track=tracks.get(ev.get("tid", 0), f"tid{ev.get('tid', 0)}"),
                start=start,
                end=start + ev.get("dur", 0.0) / 1e6,
                depth=0,
                args=dict(ev.get("args", {})),
                span_id=len(spans) + 1,
            )
        )
    other = doc.get("otherData", {}) if isinstance(doc, dict) else {}
    return spans, other


def load_metrics(path: str) -> Dict[str, Any]:
    """Load a metrics snapshot JSON (bare or ``{"metrics": ...}``)."""
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("metrics", doc) if isinstance(doc, dict) else {}


def straggler_workload(ctx, iters: int = 4, payload: int = 1024):
    """Put-ring demo program: each rank puts to its right neighbor,
    fences, and barriers, ``iters`` times.

    Per-rank conduit traffic is what makes rank-targeted fault
    injection *visible*: a stalled rank arrives late at every barrier,
    which is exactly the signature
    :class:`~repro.obs.anomaly.BarrierSkewRule` detects.
    """
    import numpy as np

    from repro.cluster import MemRef

    g = ctx.diomp.alloc(payload)
    g.typed(np.uint8)[:] = 0
    ctx.diomp.barrier()
    right = (ctx.rank + 1) % ctx.world.nranks
    src = np.full(payload, (ctx.rank + 1) % 256, dtype=np.uint8)
    for _ in range(iters):
        ctx.diomp.put(right, g, MemRef.host(ctx.node, src))
        ctx.diomp.fence()
        ctx.diomp.barrier()
    return ctx.rank


def run_demo(
    ranks: int = 8,
    straggler: Optional[int] = None,
    iters: int = 4,
    span_budget: Optional[Any] = None,
):
    """Run the demo workload; returns the :class:`SpmdResult` (with
    rollups and the anomaly report attached)."""
    from repro.cluster import World, run_spmd
    from repro.cluster.spmd import SpmdConfig, TelemetryConfig
    from repro.core import DiompRuntime
    from repro.faults import FaultPlan, FaultSpec
    from repro.hardware import platform_a

    ranks_per_node = 4  # platform_a GPUs per node
    num_nodes = max(1, (ranks + ranks_per_node - 1) // ranks_per_node)
    world = World(
        platform_a(),
        num_nodes=num_nodes,
        ranks_per_node=min(ranks, ranks_per_node),
    )
    DiompRuntime(world)
    faults = None
    if straggler is not None:
        # site="*" catches the straggler's transfers wherever they
        # route (conduit issue or the fabric path for intra-node RMA).
        faults = FaultPlan(
            [
                FaultSpec(
                    site="*",
                    rank=straggler,
                    kind="stall",
                    latency=DEMO_STALL,
                )
            ]
        )
    config = SpmdConfig(
        faults=faults,
        telemetry=TelemetryConfig(
            span_budget=span_budget, rollups=True, anomalies=True
        ),
    )
    return run_spmd(world, straggler_workload, iters, config=config)


def replay_service_export(doc: Dict[str, Any]):
    """Re-run the SLO burn-rate evaluation from an exported service run.

    Rebuilds the SLOs and the windowed time series from the export's
    own declarations, replays each job record's metric writes at their
    recorded sim times (queue-wait sample at launch, outcome count at
    finish, rejection count at submit), and evaluates the burn rules
    after every event — the same write-then-evaluate sequence the live
    service performed.  Returns the finished
    :class:`~repro.obs.slo.SloTracker`.
    """
    from repro.obs.slo import SloTracker, slo_from_dict
    from repro.obs.timeseries import TimeSeries, WindowSpec

    slos = [slo_from_dict(s) for s in doc.get("slos", ())]
    windows = doc.get("windows") or {}
    spec_doc = windows.get("spec") or {}
    spec = WindowSpec(
        width=spec_doc.get("width", 100e-6),
        slide=spec_doc.get("slide"),
        history=spec_doc.get("history", 64),
        max_samples=spec_doc.get("max_samples", 256),
    )
    group_by = tuple(windows.get("group_by") or ("kind", "outcome", "tenant"))
    clock = [0.0]
    series = TimeSeries(
        clock=lambda: clock[0],
        spec=spec,
        group_by=group_by,
        metrics=("service.",),
    )
    tracker = SloTracker(slos, series)
    events = []
    for seq, rec in enumerate(doc.get("records", ())):
        labels = {"tenant": rec["tenant"], "kind": rec["kind"]}
        if rec["outcome"] == "rejected":
            events.append(
                (
                    rec["finished"],
                    seq,
                    "service.jobs",
                    1.0,
                    {**labels, "outcome": "rejected"},
                )
            )
        else:
            events.append(
                (
                    rec["started"],
                    seq,
                    "service.queue_wait_seconds",
                    rec["queue_wait"],
                    labels,
                )
            )
            events.append(
                (
                    rec["finished"],
                    seq,
                    "service.jobs",
                    1.0,
                    {**labels, "outcome": rec["outcome"]},
                )
            )
    events.sort(key=lambda e: (e[0], e[1]))
    for when, _seq, name, value, labels in events:
        clock[0] = when
        series.observe(name, value, labels, when=when)
        tracker.evaluate(when)
    tracker.finish(doc.get("elapsed", clock[0]))
    return tracker


def _timeline_key(entries) -> List[tuple]:
    """Comparable view of a timeline: (time, kind, slo) triples of the
    fire/resolve events (anomaly entries and burn magnitudes excluded —
    same-timestamp write ordering may legitimately differ offline)."""
    return [
        (round(e["time"], 12), e["kind"], e["slo"])
        for e in entries
        if e.get("kind") in ("fire", "resolve")
    ]


def run_slo_replay(
    path: str, json_out: Optional[str] = None, strict: bool = False
) -> int:
    """The ``slo`` subcommand body (returns the process exit code)."""
    from repro.obs.accounting import report_from_dict
    from repro.obs.slo import incident_timeline

    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read export {path!r}: {exc}")
        return 2
    if not doc.get("slos"):
        print(f"error: {path!r} has no SLO declarations (run exported "
              "with ServiceConfig(slos=())?)")
        return 2
    tracker = replay_service_export(doc)
    elapsed = doc.get("elapsed", 0.0)
    print(
        f"replayed {len(doc.get('records', ()))} job record(s), "
        f"elapsed {elapsed * 1e6:.1f} us, "
        f"{len(tracker.alerts)} alert(s)"
    )
    print()
    print(tracker.render(elapsed))
    chargeback = doc.get("chargeback")
    if chargeback:
        print()
        print(report_from_dict(chargeback).render())
    recorded = _timeline_key(doc.get("timeline", ()))
    replayed = _timeline_key(tracker.timeline)
    matches = recorded == replayed
    print()
    if matches:
        print(f"replay matches the recorded timeline ({len(replayed)} event(s))")
    else:
        print(
            f"WARNING: replay disagrees with the recorded timeline "
            f"(recorded {len(recorded)} event(s), replayed {len(replayed)})"
        )
    if json_out:
        with open(json_out, "w") as fh:
            json.dump(
                {
                    "elapsed": elapsed,
                    "alerts": [a.to_dict() for a in tracker.alerts],
                    "timeline": incident_timeline(tracker.timeline, end=elapsed),
                    "slo_report": [s.to_dict() for s in tracker.report(elapsed)],
                    "matches_export": matches,
                },
                fh,
                indent=1,
            )
        print(f"wrote {json_out}")
    if strict and (tracker.alerts or not matches):
        return 1
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Offline telemetry reports (anomaly/straggler detection).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="detect anomalies in exported telemetry")
    rep.add_argument(
        "trace",
        nargs="?",
        help="Chrome trace JSON exported by write_chrome_trace()",
    )
    rep.add_argument(
        "--metrics", help="metrics snapshot JSON (write_metrics_snapshot output)"
    )
    rep.add_argument(
        "--spill",
        help="span spill JSONL (SpanBudget.spill_path) — full-fidelity "
        "alternative to the sampled trace",
    )
    rep.add_argument("--json", dest="json_out", help="also write the report as JSON")
    rep.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when findings at warning severity or above exist",
    )
    rep.add_argument(
        "--demo",
        action="store_true",
        help="run the built-in put-ring demo instead of reading files",
    )
    rep.add_argument("--ranks", type=int, default=8, help="demo: world size")
    rep.add_argument(
        "--straggler",
        type=int,
        default=None,
        help="demo: stall this rank so the detector fires",
    )
    rep.add_argument("--iters", type=int, default=4, help="demo: put-ring rounds")
    slo = sub.add_parser(
        "slo",
        help="replay an exported service run's SLO alerts and chargeback",
    )
    slo.add_argument("export", help="JSON written by ServiceResult.export()")
    slo.add_argument(
        "--json", dest="json_out", help="also write the replayed timeline as JSON"
    )
    slo.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when alerts fired or the replay disagrees with the export",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "slo":
        return run_slo_replay(args.export, json_out=args.json_out, strict=args.strict)
    from repro.obs.anomaly import detect

    if args.demo:
        result = run_demo(
            ranks=args.ranks, straggler=args.straggler, iters=args.iters
        )
        report = result.anomalies
        print(
            f"demo: {args.ranks} rank(s), {args.iters} round(s), "
            f"elapsed {result.elapsed * 1e6:.1f} us"
            + (
                f", rank {args.straggler} stalled {DEMO_STALL * 1e6:.0f} us/op"
                if args.straggler is not None
                else ""
            )
        )
    else:
        spans: List[SpanRecord] = []
        if args.spill:
            from repro.obs.sampling import read_spill

            spans = read_spill(args.spill)
        elif args.trace:
            spans, _ = load_trace(args.trace)
        else:
            print("error: give a trace file, --spill, or --demo")
            return 2
        snapshot = load_metrics(args.metrics) if args.metrics else None
        report = detect(spans=spans, snapshot=snapshot)
        print(f"analyzed {len(spans)} span(s)")

    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.json_out}")
    if args.strict and not report.ok:
        return 1
    return 0


__all__ = [
    "DEMO_STALL",
    "load_trace",
    "load_metrics",
    "straggler_workload",
    "run_demo",
    "replay_service_export",
    "run_slo_replay",
    "main",
]
