"""``python -m repro.obs report`` — offline anomaly reports.

Runs the :mod:`repro.obs.anomaly` rules over telemetry *files* — an
exported Chrome trace (plus, optionally, a metrics snapshot and a span
spill) — so straggler detection works after the fact, in CI, or on a
trace somebody mailed you::

    python -m repro.obs report TRACE.json --metrics METRICS.json
    python -m repro.obs report --spill SPANS.jsonl --json report.json
    python -m repro.obs report --demo --ranks 16 --straggler 5

``--demo`` runs a built-in put-ring workload (optionally with a
fault-stalled rank) and reports on it directly — the quickest way to
see the detector fire.  Exit status is 0 unless ``--strict`` is given
and findings at warning severity or above exist.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord

#: virtual stall injected on the demo straggler (seconds)
DEMO_STALL = 300e-6


def load_trace(path: str) -> Tuple[List[SpanRecord], Dict[str, Any]]:
    """Reconstruct spans from an exported Chrome trace document.

    Complete (``"ph": "X"``) events become :class:`SpanRecord` objects;
    ``thread_name`` metadata recovers the track names.  Flow/instant
    events are ignored (links are not needed by the detection rules).
    Returns ``(spans, otherData)``.
    """
    with open(path) as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc if isinstance(doc, list) else [])
    tracks: Dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            tracks[ev.get("tid", 0)] = ev.get("args", {}).get("name", "")
    spans: List[SpanRecord] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        start = ev.get("ts", 0.0) / 1e6
        spans.append(
            SpanRecord(
                name=ev.get("name", ""),
                track=tracks.get(ev.get("tid", 0), f"tid{ev.get('tid', 0)}"),
                start=start,
                end=start + ev.get("dur", 0.0) / 1e6,
                depth=0,
                args=dict(ev.get("args", {})),
                span_id=len(spans) + 1,
            )
        )
    other = doc.get("otherData", {}) if isinstance(doc, dict) else {}
    return spans, other


def load_metrics(path: str) -> Dict[str, Any]:
    """Load a metrics snapshot JSON (bare or ``{"metrics": ...}``)."""
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("metrics", doc) if isinstance(doc, dict) else {}


def straggler_workload(ctx, iters: int = 4, payload: int = 1024):
    """Put-ring demo program: each rank puts to its right neighbor,
    fences, and barriers, ``iters`` times.

    Per-rank conduit traffic is what makes rank-targeted fault
    injection *visible*: a stalled rank arrives late at every barrier,
    which is exactly the signature
    :class:`~repro.obs.anomaly.BarrierSkewRule` detects.
    """
    import numpy as np

    from repro.cluster import MemRef

    g = ctx.diomp.alloc(payload)
    g.typed(np.uint8)[:] = 0
    ctx.diomp.barrier()
    right = (ctx.rank + 1) % ctx.world.nranks
    src = np.full(payload, (ctx.rank + 1) % 256, dtype=np.uint8)
    for _ in range(iters):
        ctx.diomp.put(right, g, MemRef.host(ctx.node, src))
        ctx.diomp.fence()
        ctx.diomp.barrier()
    return ctx.rank


def run_demo(
    ranks: int = 8,
    straggler: Optional[int] = None,
    iters: int = 4,
    span_budget: Optional[Any] = None,
):
    """Run the demo workload; returns the :class:`SpmdResult` (with
    rollups and the anomaly report attached)."""
    from repro.cluster import World, run_spmd
    from repro.cluster.spmd import SpmdConfig, TelemetryConfig
    from repro.core import DiompRuntime
    from repro.faults import FaultPlan, FaultSpec
    from repro.hardware import platform_a

    ranks_per_node = 4  # platform_a GPUs per node
    num_nodes = max(1, (ranks + ranks_per_node - 1) // ranks_per_node)
    world = World(
        platform_a(),
        num_nodes=num_nodes,
        ranks_per_node=min(ranks, ranks_per_node),
    )
    DiompRuntime(world)
    faults = None
    if straggler is not None:
        # site="*" catches the straggler's transfers wherever they
        # route (conduit issue or the fabric path for intra-node RMA).
        faults = FaultPlan(
            [
                FaultSpec(
                    site="*",
                    rank=straggler,
                    kind="stall",
                    latency=DEMO_STALL,
                )
            ]
        )
    config = SpmdConfig(
        faults=faults,
        telemetry=TelemetryConfig(
            span_budget=span_budget, rollups=True, anomalies=True
        ),
    )
    return run_spmd(world, straggler_workload, iters, config=config)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Offline telemetry reports (anomaly/straggler detection).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="detect anomalies in exported telemetry")
    rep.add_argument(
        "trace",
        nargs="?",
        help="Chrome trace JSON exported by write_chrome_trace()",
    )
    rep.add_argument(
        "--metrics", help="metrics snapshot JSON (write_metrics_snapshot output)"
    )
    rep.add_argument(
        "--spill",
        help="span spill JSONL (SpanBudget.spill_path) — full-fidelity "
        "alternative to the sampled trace",
    )
    rep.add_argument("--json", dest="json_out", help="also write the report as JSON")
    rep.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when findings at warning severity or above exist",
    )
    rep.add_argument(
        "--demo",
        action="store_true",
        help="run the built-in put-ring demo instead of reading files",
    )
    rep.add_argument("--ranks", type=int, default=8, help="demo: world size")
    rep.add_argument(
        "--straggler",
        type=int,
        default=None,
        help="demo: stall this rank so the detector fires",
    )
    rep.add_argument("--iters", type=int, default=4, help="demo: put-ring rounds")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.obs.anomaly import detect

    if args.demo:
        result = run_demo(
            ranks=args.ranks, straggler=args.straggler, iters=args.iters
        )
        report = result.anomalies
        print(
            f"demo: {args.ranks} rank(s), {args.iters} round(s), "
            f"elapsed {result.elapsed * 1e6:.1f} us"
            + (
                f", rank {args.straggler} stalled {DEMO_STALL * 1e6:.0f} us/op"
                if args.straggler is not None
                else ""
            )
        )
    else:
        spans: List[SpanRecord] = []
        if args.spill:
            from repro.obs.sampling import read_spill

            spans = read_spill(args.spill)
        elif args.trace:
            spans, _ = load_trace(args.trace)
        else:
            print("error: give a trace file, --spill, or --demo")
            return 2
        snapshot = load_metrics(args.metrics) if args.metrics else None
        report = detect(spans=spans, snapshot=snapshot)
        print(f"analyzed {len(spans)} span(s)")

    print(report.render())
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote {args.json_out}")
    if args.strict and not report.ok:
        return 1
    return 0


__all__ = [
    "DEMO_STALL",
    "load_trace",
    "load_metrics",
    "straggler_workload",
    "run_demo",
    "main",
]
