"""Unified observability: metrics, span profiling, and trace export.

One :class:`Observability` object serves a whole simulated world (the
:class:`~repro.cluster.world.World` creates it and binds the virtual
clock; the DiOMP runtime and every instrumented subsystem share it).
It bundles

* a :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms labeled by rank/device/path,
* a :class:`~repro.obs.spans.SpanProfiler` — ``with obs.span(...)``
  timed regions on the virtual clock,
* exporters — Chrome trace-event JSON (``chrome://tracing`` and
  Perfetto loadable), JSONL event dumps, and a plain-text dashboard.

Disable it (``Observability(enabled=False)``, or
``World(..., obs=Observability(enabled=False))``) and every
instrumentation call collapses to an attribute check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    dashboard_tables,
    events_jsonl,
    render_dashboard,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    size_class,
)
from repro.obs.spans import SpanProfiler, SpanRecord


class Observability:
    """The per-world observability facade."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(enabled=enabled)
        self.profiler = SpanProfiler(clock=clock, enabled=enabled)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done by the world at construction)."""
        self.profiler.bind_clock(clock)

    # -- metrics passthrough ---------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.registry.gauge(name, help)

    def histogram(
        self, name: str, help: str = "", bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self.registry.histogram(name, help, bounds)

    def value(self, name: str, **labels: Any) -> float:
        return self.registry.value(name, **labels)

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, track: Optional[str] = None, **args: Any):
        """Time a region: ``with obs.span("rma.put", rank=r): ...``"""
        return self.profiler.span(name, track=track, **args)

    @property
    def spans(self):
        return self.profiler.records

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every metric family."""
        return self.registry.snapshot()

    def chrome_trace(self, tracer=None, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return chrome_trace(self.profiler.records, tracer, metadata)

    def write_chrome_trace(self, path: str, tracer=None, metadata: Optional[Dict[str, Any]] = None) -> int:
        return write_chrome_trace(path, self.profiler.records, tracer, metadata)

    def dashboard(self, title: str = "Observability dashboard") -> str:
        return render_dashboard(self.registry, title)


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanProfiler",
    "SpanRecord",
    "size_class",
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "events_jsonl",
    "render_dashboard",
    "dashboard_tables",
]
