"""Unified observability: metrics, span profiling, and trace export.

One :class:`Observability` object serves a whole simulated world (the
:class:`~repro.cluster.world.World` creates it and binds the virtual
clock; the DiOMP runtime and every instrumented subsystem share it).
It bundles

* a :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms labeled by rank/device/path,
* a :class:`~repro.obs.spans.SpanProfiler` — ``with obs.span(...)``
  timed regions on the virtual clock,
* exporters — Chrome trace-event JSON (``chrome://tracing`` and
  Perfetto loadable), JSONL event dumps, and a plain-text dashboard.

Disable it (``Observability(enabled=False)``, or
``World(..., obs=Observability(enabled=False))``) and every
instrumentation call collapses to an attribute check.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.obs.accounting import (
    ChargebackReport,
    CostRates,
    TenantUsage,
    chargeback_report,
)
from repro.obs.anomaly import (
    AnomalyReport,
    AnomalyRule,
    BarrierSkewRule,
    DroppedSeriesRule,
    EngineThroughputRule,
    Finding,
    RetrySloRule,
    WaitImbalanceRule,
    detect,
)
from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    dashboard_tables,
    events_jsonl,
    flow_events,
    health_table,
    iter_chrome_trace_events,
    render_dashboard,
    windows_table,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    size_class,
)
from repro.obs.rollup import (
    exact_percentile,
    rollup_metric,
    rollup_registry,
    rollup_snapshot,
)
from repro.obs.sampling import SpanBudget, SpanStore, SpanStoreStats, read_spill
from repro.obs.selfprof import EngineProfiler
from repro.obs.slo import (
    SLO,
    Alert,
    BurnRateRule,
    SloStatus,
    SloTracker,
    availability_slo,
    incident_timeline,
    latency_slo,
    slo_from_dict,
)
from repro.obs.spans import SpanProfiler, SpanRecord, TraceContext
from repro.obs.timeseries import TimeSeries, WindowedSeries, WindowSpec, WindowStats


class Observability:
    """The per-world observability facade."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        span_budget: Optional[SpanBudget] = None,
        max_series_per_metric: int = 1000,
    ) -> None:
        self.enabled = enabled
        self.registry = MetricsRegistry(
            enabled=enabled, max_series_per_metric=max_series_per_metric
        )
        self.profiler = SpanProfiler(
            clock=clock,
            enabled=enabled,
            store=SpanStore(span_budget) if span_budget is not None else None,
        )
        #: host wall-clock engine self-profiler; the world hands this to
        #: its Simulator, and run_spmd publishes it into the registry
        self.engine = EngineProfiler(enabled=enabled)
        #: per-(kind, ident, rank) rendezvous sequence numbers
        self._rdv_seq: Dict[Any, int] = {}
        #: (kind, ident, seq) -> {rank: TraceContext} arrival registry
        self._rdv_ctxs: Dict[Any, Dict[int, TraceContext]] = {}
        #: rendezvous groups up to this size cross-link all pairs
        #: (exact dependency DAG); larger groups link each arrival to
        #: its predecessor only — O(P) instead of O(P^2) links, with
        #: the same transitive ordering (see :meth:`rendezvous`)
        self.rendezvous_dense_limit: int = 64

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock (done by the world at construction)."""
        self.profiler.bind_clock(clock)

    # -- metrics passthrough ---------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self.registry.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.registry.gauge(name, help)

    def histogram(
        self, name: str, help: str = "", bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self.registry.histogram(name, help, bounds)

    def value(self, name: str, **labels: Any) -> float:
        return self.registry.value(name, **labels)

    # -- spans -----------------------------------------------------------------

    def span(self, name: str, track: Optional[str] = None, **args: Any):
        """Time a region: ``with obs.span("rma.put", rank=r): ...``"""
        return self.profiler.span(name, track=track, **args)

    @property
    def spans(self):
        return self.profiler.records

    # -- causal tracing --------------------------------------------------------

    def capture(self, track: Optional[str] = None, **args: Any) -> Optional[TraceContext]:
        """Context of the innermost open span (sender side of a message)."""
        return self.profiler.capture(track=track, **args)

    def link(self, ctx: Optional[TraceContext], track: Optional[str] = None, **args: Any) -> bool:
        """Attach an incoming link to the innermost open span (receiver side)."""
        return self.profiler.link(ctx, track=track, **args)

    def deliver(
        self,
        name: str,
        ctx: Optional[TraceContext],
        when: float,
        track: Optional[str] = None,
        **args: Any,
    ) -> Optional[TraceContext]:
        """Record a message delivery on the receiving track.

        Links into the receiver's open span when one exists (a blocking
        fence/wait); otherwise records a standalone zero-duration
        delivery span carrying the causal link, so the arrow always has
        somewhere to land.  ``when`` is the simulated delivery time
        (the caller usually runs in scheduler context, after the clock
        already advanced past it).  Returns the context of the span
        that received the link, so multi-hop flows (request → handler →
        reply) can chain.
        """
        if not self.enabled or ctx is None:
            return None
        if self.profiler.link(ctx, track=track, **args):
            return self.profiler.capture(track=track, **args)
        rec = self.profiler.record(name, when, when, track=track, links=(ctx,), **args)
        return TraceContext(self.profiler.trace_id, rec.span_id) if rec else None

    def rendezvous(self, kind: str, ident: Any, rank: int) -> None:
        """Cross-link this rank's open span with peers at a rendezvous.

        Barriers and collectives are all-to-all synchronization: no
        member leaves before the last arrival.  Each arriving rank
        registers its innermost open span under the point's
        ``(kind, ident, sequence)`` identity and links bidirectionally
        with the members already registered — earlier arrivals into
        this span, and this span into the earlier arrivals' still-open
        spans — so the span DAG records that everyone's completion
        depended on the last arriver.  Sequence numbers are counted
        per rank, so the Nth barrier on a group pairs across ranks.

        All-pairs linking is quadratic in the group size and dominated
        1024-rank sweeps, so groups beyond
        :attr:`rendezvous_dense_limit` arrivals fall back to *chain*
        linking: each arrival pairs with its predecessor only.  The
        dependency ordering is preserved transitively through the
        chain (the critical-path walker follows links hop by hop), at
        2 links per arrival instead of ``2(P-1)``.
        """
        mine = self.capture(track=f"rank{rank}")
        if mine is None:
            return
        seq_key = (kind, ident, rank)
        seq = self._rdv_seq.get(seq_key, 0)
        self._rdv_seq[seq_key] = seq + 1
        peers = self._rdv_ctxs.setdefault((kind, ident, seq), {})
        if len(peers) < self.rendezvous_dense_limit:
            pairs = peers.items()
        else:
            pairs = (next(reversed(peers.items())),)  # predecessor only
        for peer_rank, peer_ctx in pairs:
            self.profiler.link(peer_ctx, track=f"rank{rank}")
            self.profiler.link_span(peer_ctx, mine, track=f"rank{peer_rank}")
        peers[rank] = mine

    # -- retention and rollups -------------------------------------------------

    def set_span_budget(self, budget: SpanBudget) -> None:
        """Install a memory budget on the span store (see
        :mod:`repro.obs.sampling`); existing spans are re-admitted."""
        self.profiler.set_budget(budget)

    def span_stats(self) -> SpanStoreStats:
        """Retention accounting of the span store."""
        return self.profiler.records.stats()

    def publish_engine(self) -> None:
        """Export the engine profiler's numbers as ``sim.*`` gauges."""
        self.engine.publish(self.registry)

    def rollup(self, label: str = "rank") -> Dict[str, Any]:
        """Cross-rank rollups of every rank-labeled family."""
        return rollup_registry(self.registry, label)

    def rollup_snapshot(self, label: str = "rank") -> Dict[str, Any]:
        """Snapshot-shaped export with rank series collapsed to rollups."""
        return rollup_snapshot(self.registry, label)

    def detect_anomalies(self, rules: Optional[Sequence[AnomalyRule]] = None) -> AnomalyReport:
        """Run the anomaly rules over this world's spans and metrics."""
        return detect(
            spans=self.profiler.records, registry=self.registry, rules=rules
        )

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of every metric family."""
        return self.registry.snapshot()

    def chrome_trace(self, tracer=None, metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        return chrome_trace(self.profiler.records, tracer, metadata)

    def write_chrome_trace(self, path: str, tracer=None, metadata: Optional[Dict[str, Any]] = None) -> int:
        return write_chrome_trace(path, self.profiler.records, tracer, metadata)

    def dashboard(
        self,
        title: str = "Observability dashboard",
        with_spans: bool = False,
        with_anomalies: bool = False,
    ) -> str:
        """The plain-text dashboard; ``with_spans=True`` appends the
        critical-path breakdown and wait-state tables,
        ``with_anomalies=True`` the anomaly findings section."""
        spans = self.profiler.records if (with_spans or with_anomalies) else None
        return render_dashboard(
            self.registry,
            title,
            spans=spans if with_spans else None,
            anomalies=self.detect_anomalies() if with_anomalies else None,
        )


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanProfiler",
    "SpanRecord",
    "TraceContext",
    "EngineProfiler",
    "SpanBudget",
    "SpanStore",
    "SpanStoreStats",
    "read_spill",
    "size_class",
    "exact_percentile",
    "rollup_metric",
    "rollup_registry",
    "rollup_snapshot",
    "AnomalyReport",
    "AnomalyRule",
    "BarrierSkewRule",
    "WaitImbalanceRule",
    "RetrySloRule",
    "DroppedSeriesRule",
    "EngineThroughputRule",
    "Finding",
    "detect",
    "chrome_trace",
    "chrome_trace_events",
    "iter_chrome_trace_events",
    "flow_events",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "events_jsonl",
    "write_events_jsonl",
    "render_dashboard",
    "dashboard_tables",
    "health_table",
    "windows_table",
    "TimeSeries",
    "WindowSpec",
    "WindowStats",
    "WindowedSeries",
    "SLO",
    "Alert",
    "BurnRateRule",
    "SloStatus",
    "SloTracker",
    "latency_slo",
    "availability_slo",
    "slo_from_dict",
    "incident_timeline",
    "CostRates",
    "TenantUsage",
    "ChargebackReport",
    "chargeback_report",
]
