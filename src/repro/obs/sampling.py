"""Bounded-memory span collection: budgets, sampling, and spill.

The original profiler kept every :class:`~repro.obs.spans.SpanRecord`
in one unbounded Python list — at 1024 ranks the observer itself
becomes the memory bottleneck.  :class:`SpanStore` replaces that list
with a drop-in sequence that enforces a **hard memory budget**:

* While the total stays under the budget, every span is kept and
  iteration order is exactly the old append order — small runs are
  lossless and bit-identical to the unbounded behavior.
* When the budget would be exceeded, the store switches to **per-track
  head + reservoir sampling**: the first ``per_track_head`` spans of
  each track are pinned (startup structure), and the remainder of each
  track is a fixed-size uniform reservoir (Algorithm R with a seeded
  RNG, so sampling is deterministic).  The total never exceeds the
  budget again — if a new track appears after saturation, room is made
  by shrinking the largest reservoir.
* Optionally every completed span is **spilled** to a JSONL file as it
  closes (``spill_path``), so full fidelity lives on disk while RAM
  holds the bounded sample.

Memory accounting uses a flat per-span estimate
(:data:`SPAN_COST_BYTES`); the budget is therefore a span-count cap
expressed in bytes, which is what operators actually configure.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.spans import SpanRecord
from repro.util.errors import ConfigurationError

#: estimated resident cost of one kept SpanRecord (object header,
#: dataclass fields, small args dict) — deliberately a round, documented
#: figure so budgets translate predictably to span counts
SPAN_COST_BYTES = 512


@dataclasses.dataclass(frozen=True)
class SpanBudget:
    """Retention policy for one :class:`SpanStore`.

    ``max_bytes`` is the hard cap; ``per_track_head`` and
    ``per_track_reservoir`` shape what survives once sampling starts.
    """

    #: hard memory budget for kept spans (estimated, see SPAN_COST_BYTES)
    max_bytes: int = 64 * 1024 * 1024
    #: first N spans of each track are always kept once sampling starts
    per_track_head: int = 32
    #: reservoir size per track once sampling starts
    per_track_reservoir: int = 192
    #: JSONL path receiving every span as it completes (None = no spill)
    spill_path: Optional[str] = None
    #: seed for the deterministic sampling RNG
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_bytes < SPAN_COST_BYTES:
            raise ConfigurationError(
                f"span budget must be >= {SPAN_COST_BYTES} bytes, "
                f"got {self.max_bytes}"
            )
        if self.per_track_head < 0 or self.per_track_reservoir < 1:
            raise ConfigurationError(
                "per_track_head must be >= 0 and per_track_reservoir >= 1"
            )

    @property
    def max_spans(self) -> int:
        """The budget expressed as a kept-span cap."""
        return max(1, self.max_bytes // SPAN_COST_BYTES)


@dataclasses.dataclass
class SpanStoreStats:
    """Retention accounting of one store."""

    recorded: int
    kept: int
    dropped: int
    spilled: int
    memory_bytes: int
    sampling: bool

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class _TrackSample:
    """Head + reservoir sample of one track (sampling mode only)."""

    __slots__ = ("head", "reservoir", "tail_seen")

    def __init__(self) -> None:
        self.head: List[SpanRecord] = []
        self.reservoir: List[SpanRecord] = []
        #: tail (non-head) spans observed so far, kept or not
        self.tail_seen = 0

    def __len__(self) -> int:
        return len(self.head) + len(self.reservoir)


class SpanStore:
    """A budgeted, list-like container of completed spans.

    Supports the exact surface the profiler and exporters use on the
    old plain list — ``append``, iteration, ``len``, truthiness,
    ``clear`` — plus retention statistics and budget control.
    """

    def __init__(self, budget: Optional[SpanBudget] = None) -> None:
        self.budget = budget or SpanBudget()
        #: lossless mode storage (append order)
        self._all: List[SpanRecord] = []
        #: sampling mode storage, keyed by track
        self._tracks: Dict[str, _TrackSample] = {}
        self._sampling = False
        self._kept = 0
        self.recorded = 0
        self.spilled = 0
        self._rng = random.Random(self.budget.seed)
        self._spill_fh = None

    # -- list-like surface ------------------------------------------------------

    def append(self, rec: SpanRecord) -> None:
        self.recorded += 1
        if self.budget.spill_path is not None:
            self._spill(rec)
        if not self._sampling:
            if self._kept < self.budget.max_spans:
                self._all.append(rec)
                self._kept += 1
                return
            self._enter_sampling()
        self._admit(rec)

    def __iter__(self) -> Iterator[SpanRecord]:
        if not self._sampling:
            return iter(self._all)
        kept = [
            r
            for sample in self._tracks.values()
            for r in (*sample.head, *sample.reservoir)
        ]
        kept.sort(key=lambda r: (r.start, r.span_id))
        return iter(kept)

    def __len__(self) -> int:
        return self._kept

    def __bool__(self) -> bool:
        return self._kept > 0

    def clear(self) -> None:
        """Drop every kept span and reset the retention counters."""
        self._all.clear()
        self._tracks.clear()
        self._sampling = False
        self._kept = 0
        self.recorded = 0
        self.spilled = 0
        self._rng = random.Random(self.budget.seed)

    # -- budget control ---------------------------------------------------------

    def set_budget(self, budget: SpanBudget) -> None:
        """Install a new budget; existing spans are re-admitted under it."""
        kept = list(self)
        self._close_spill()
        recorded, spilled = self.recorded, self.spilled
        self.budget = budget
        self.clear()
        for rec in kept:
            self.append(rec)
        # Counters describe the whole run, not just the re-admission.
        self.recorded = recorded
        self.spilled = spilled

    @property
    def sampling(self) -> bool:
        """True once the budget forced the store into sampling mode."""
        return self._sampling

    @property
    def dropped(self) -> int:
        """Spans recorded but no longer resident (evicted or never kept)."""
        return self.recorded - self._kept

    @property
    def memory_bytes(self) -> int:
        """Estimated resident memory of the kept spans."""
        return self._kept * SPAN_COST_BYTES

    def stats(self) -> SpanStoreStats:
        return SpanStoreStats(
            recorded=self.recorded,
            kept=self._kept,
            dropped=self.dropped,
            spilled=self.spilled,
            memory_bytes=self.memory_bytes,
            sampling=self._sampling,
        )

    # -- sampling internals -----------------------------------------------------

    def _enter_sampling(self) -> None:
        """Downsample the lossless list into per-track head+reservoir."""
        self._sampling = True
        head_n = self.budget.per_track_head
        res_n = self.budget.per_track_reservoir
        for rec in self._all:
            sample = self._tracks.setdefault(rec.track, _TrackSample())
            if len(sample.head) < head_n:
                sample.head.append(rec)
            else:
                sample.tail_seen += 1
                if len(sample.reservoir) < res_n:
                    sample.reservoir.append(rec)
                else:
                    j = self._rng.randrange(sample.tail_seen)
                    if j < res_n:
                        sample.reservoir[j] = rec
        self._all = []
        self._kept = sum(len(s) for s in self._tracks.values())
        self._shrink_to_budget()

    def _admit(self, rec: SpanRecord) -> None:
        sample = self._tracks.get(rec.track)
        if sample is None:
            sample = self._tracks[rec.track] = _TrackSample()
        if len(sample.head) < self.budget.per_track_head:
            if self._make_room(exempt=sample):
                sample.head.append(rec)
                self._kept += 1
            return
        sample.tail_seen += 1
        if len(sample.reservoir) < self.budget.per_track_reservoir:
            if self._make_room(exempt=sample):
                sample.reservoir.append(rec)
                self._kept += 1
            return
        # Algorithm R replacement: uniform over the track's tail.
        j = self._rng.randrange(sample.tail_seen)
        if j < len(sample.reservoir):
            sample.reservoir[j] = rec

    def _make_room(self, exempt: Optional[_TrackSample] = None) -> bool:
        """Ensure one admission slot exists under ``max_spans``.

        Evicts one element from the largest other reservoir when
        saturated.  Returns False when no room can be made (every other
        track is down to its pinned head), in which case the span is
        dropped.
        """
        if self._kept < self.budget.max_spans:
            return True
        victim = None
        for sample in self._tracks.values():
            if sample is exempt or not sample.reservoir:
                continue
            if victim is None or len(sample.reservoir) > len(victim.reservoir):
                victim = sample
        if victim is None:
            return False
        victim.reservoir.pop(self._rng.randrange(len(victim.reservoir)))
        self._kept -= 1
        return True

    def _shrink_to_budget(self) -> None:
        while self._kept > self.budget.max_spans:
            if self._make_room():
                continue  # freed one reservoir slot; loop until under cap
            # Last resort — every reservoir is empty (many tracks, tiny
            # budget): trim the largest pinned head so the hard cap holds.
            victim = max(
                (s for s in self._tracks.values() if s.head),
                key=lambda s: len(s.head),
                default=None,
            )
            if victim is None:
                break
            victim.head.pop()
            self._kept -= 1

    # -- spill ------------------------------------------------------------------

    def _spill(self, rec: SpanRecord) -> None:
        if self._spill_fh is None:
            self._spill_fh = open(self.budget.spill_path, "a")
        self._spill_fh.write(json.dumps(rec.to_dict()) + "\n")
        self.spilled += 1

    def flush(self) -> None:
        """Flush the spill file (if any) to disk."""
        if self._spill_fh is not None:
            self._spill_fh.flush()

    def _close_spill(self) -> None:
        if self._spill_fh is not None:
            self._spill_fh.close()
            self._spill_fh = None

    def close(self) -> None:
        """Close the spill file handle (kept spans stay readable)."""
        self._close_spill()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self._close_spill()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpanStore kept={self._kept}/{self.budget.max_spans} "
            f"recorded={self.recorded} sampling={self._sampling}>"
        )


def read_spill(path: str) -> List[SpanRecord]:
    """Load spans back from a spill JSONL file."""
    out: List[SpanRecord] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(SpanRecord.from_dict(json.loads(line)))
    return out


__all__ = [
    "SPAN_COST_BYTES",
    "SpanBudget",
    "SpanStore",
    "SpanStoreStats",
    "read_spill",
]
