"""Service-level objectives, error budgets, and burn-rate alerts.

An :class:`SLO` declares what "good" means for one metric family over
a compliance window — a latency objective ("99% of job queue waits
under 250 µs") or an availability objective ("99.9% of jobs reach
``outcome=completed``").  The error *budget* is the allowed bad
fraction, ``1 - target``; the *burn rate* over a lookback window is
the measured bad fraction divided by the budget — burn 1.0 spends the
budget exactly at the sustainable pace, burn 10 exhausts a
window-sized budget ten times over.

Alerting follows the Google-SRE multi-window pattern: a
:class:`BurnRateRule` fires only when the burn rate exceeds its factor
over **both** a long window (sustained damage, not a blip) and a short
window (still happening *now*, so the alert resolves promptly when the
condition clears).  :class:`SloTracker` evaluates the rules against
the windowed time series (:mod:`repro.obs.timeseries`) every time it
is poked, maintains active-alert state, and appends fire/resolve
events to an incident timeline stamped in simulated time.

No data is never treated as 100 % good: a lookback holding fewer than
:attr:`SLO.min_events` total events abstains instead of evaluating
(see ``bad_fraction`` returning ``None``).

:func:`incident_timeline` merges the alert events with end-of-run
:mod:`repro.obs.anomaly` findings into one ordered incident record —
what the ``python -m repro.obs slo`` replay prints.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.timeseries import TimeSeries
from repro.util.errors import ConfigurationError

#: alert severities, most urgent first (page = wake a human,
#: ticket = fix within the budget window)
ALERT_SEVERITIES: Tuple[str, ...] = ("page", "ticket")


@dataclasses.dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert condition."""

    #: sustained-damage lookback (seconds of sim time)
    long_window: float
    #: still-happening-now lookback; must not exceed the long window
    short_window: float
    #: burn-rate threshold both lookbacks must exceed
    factor: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.long_window <= 0 or self.short_window <= 0:
            raise ConfigurationError("burn-rate windows must be positive")
        if self.short_window > self.long_window:
            raise ConfigurationError(
                f"short window {self.short_window} exceeds long window "
                f"{self.long_window}"
            )
        if self.factor <= 0:
            raise ConfigurationError(f"burn factor must be > 0, got {self.factor}")
        if self.severity not in ALERT_SEVERITIES:
            raise ConfigurationError(
                f"unknown severity {self.severity!r} (one of {ALERT_SEVERITIES})"
            )


@dataclasses.dataclass(frozen=True)
class SLO:
    """One objective over one metric family.

    Two kinds, selected by which fields are set:

    * **latency** — ``threshold`` is set: every observation of
      ``metric`` (a histogram/gauge family, e.g. queue-wait seconds)
      at or under the threshold is a good event.  ``target`` is the
      required good fraction (0.99 ≙ "p99 under the threshold").
    * **availability** — ``good`` is set: events are counter
      increments of ``metric``; those whose labels match ``good``
      (e.g. ``{"outcome": "completed"}``) are good, those matching
      ``total`` (default: all) are the denominator.
    """

    name: str
    metric: str
    #: required good-event fraction in [0, 1), e.g. 0.999
    target: float
    #: compliance window the budget is defined over (seconds; the
    #: whole-run budget report also uses it as its unit)
    window: float
    #: latency objective: good  ≙  observation <= threshold
    threshold: Optional[float] = None
    #: availability objective: label subset selecting good events
    good: Optional[Tuple[Tuple[str, str], ...]] = None
    #: availability objective: label subset selecting the denominator
    total: Tuple[Tuple[str, str], ...] = ()
    #: burn-rate alert conditions
    rules: Tuple[BurnRateRule, ...] = ()
    #: lookbacks holding fewer total events than this abstain
    min_events: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not (0.0 < self.target < 1.0):
            raise ConfigurationError(
                f"SLO {self.name}: target must be in (0, 1), got {self.target}"
            )
        if self.window <= 0:
            raise ConfigurationError(f"SLO {self.name}: window must be positive")
        if (self.threshold is None) == (self.good is None):
            raise ConfigurationError(
                f"SLO {self.name}: set exactly one of threshold (latency) "
                "or good (availability)"
            )
        if self.min_events < 1:
            raise ConfigurationError(f"SLO {self.name}: min_events must be >= 1")

    @property
    def kind(self) -> str:
        return "latency" if self.threshold is not None else "availability"

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad fraction."""
        return 1.0 - self.target

    def required_labels(self) -> Tuple[str, ...]:
        """Label keys the time series must group by for this SLO."""
        keys = set()
        for pair in (self.good or ()) + self.total:
            keys.add(pair[0])
        return tuple(sorted(keys))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "kind": self.kind,
            "target": self.target,
            "window": self.window,
            "threshold": self.threshold,
            "good": dict(self.good) if self.good is not None else None,
            "total": dict(self.total),
            "min_events": self.min_events,
            "rules": [dataclasses.asdict(r) for r in self.rules],
            "description": self.description,
        }


def latency_slo(
    name: str,
    metric: str,
    threshold: float,
    target: float = 0.99,
    window: float = 1e-3,
    rules: Sequence[BurnRateRule] = (),
    min_events: int = 1,
    description: str = "",
) -> SLO:
    """Convenience constructor for a latency-quantile objective."""
    return SLO(
        name=name,
        metric=metric,
        target=target,
        window=window,
        threshold=threshold,
        rules=tuple(rules),
        min_events=min_events,
        description=description,
    )


def availability_slo(
    name: str,
    metric: str,
    good: Dict[str, str],
    total: Optional[Dict[str, str]] = None,
    target: float = 0.999,
    window: float = 1e-3,
    rules: Sequence[BurnRateRule] = (),
    min_events: int = 1,
    description: str = "",
) -> SLO:
    """Convenience constructor for an availability-ratio objective."""
    return SLO(
        name=name,
        metric=metric,
        target=target,
        window=window,
        good=tuple(sorted((k, str(v)) for k, v in good.items())),
        total=tuple(sorted((k, str(v)) for k, v in (total or {}).items())),
        rules=tuple(rules),
        min_events=min_events,
        description=description,
    )


def slo_from_dict(doc: Dict[str, Any]) -> SLO:
    """Rebuild an :class:`SLO` from :meth:`SLO.to_dict` output (the
    offline-replay path)."""
    rules = tuple(
        BurnRateRule(
            long_window=r["long_window"],
            short_window=r["short_window"],
            factor=r["factor"],
            severity=r.get("severity", "page"),
        )
        for r in doc.get("rules", ())
    )
    good = doc.get("good")
    return SLO(
        name=doc["name"],
        metric=doc["metric"],
        target=doc["target"],
        window=doc["window"],
        threshold=doc.get("threshold"),
        good=tuple(sorted((k, str(v)) for k, v in good.items()))
        if good is not None
        else None,
        total=tuple(sorted((k, str(v)) for k, v in doc.get("total", {}).items())),
        rules=rules,
        min_events=doc.get("min_events", 1),
        description=doc.get("description", ""),
    )


@dataclasses.dataclass
class Alert:
    """One burn-rate alert's life (fired, possibly resolved)."""

    slo: str
    severity: str
    fired_at: float
    resolved_at: Optional[float]
    #: burn rates measured when the alert fired
    burn_long: float
    burn_short: float
    factor: float
    long_window: float
    short_window: float
    message: str

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def alert_from_dict(doc: Dict[str, Any]) -> Alert:
    return Alert(**doc)


@dataclasses.dataclass(frozen=True)
class SloStatus:
    """End-of-run error-budget accounting for one SLO."""

    slo: str
    kind: str
    target: float
    #: total events observed over the whole run
    events: float
    #: measured bad fraction over the whole run (None: no data)
    bad_fraction: Optional[float]
    #: fraction of the error budget consumed (bad_fraction / budget;
    #: None when there was no data — explicitly *not* 0.0)
    budget_consumed: Optional[float]
    alerts: int

    @property
    def met(self) -> Optional[bool]:
        """True/False when measurable, None when there was no data."""
        if self.bad_fraction is None:
            return None
        return self.bad_fraction <= (1.0 - self.target)

    def to_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["met"] = self.met
        return doc


class SloTracker:
    """Evaluates SLO burn-rate rules against live windowed series.

    Poke :meth:`evaluate` whenever the underlying metrics may have
    changed (the cluster service does so at every admission, launch,
    and teardown); each call is pure computation on the window ring —
    no simulated time passes.  Fire/resolve transitions accumulate in
    :attr:`timeline`; currently-active and historical alerts in
    :attr:`alerts`.
    """

    def __init__(self, slos: Sequence[SLO], series: TimeSeries) -> None:
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO names: {names}")
        self.slos = tuple(slos)
        self.series = series
        self.alerts: List[Alert] = []
        #: ordered fire/resolve events: dicts with time/kind/slo/...
        self.timeline: List[Dict[str, Any]] = []
        self._active: Dict[Tuple[str, int], Alert] = {}

    # -- measurement -------------------------------------------------------

    def counts(self, slo: SLO, since: float, until: float) -> Tuple[float, float]:
        """(good, total) event counts over ``[since, until)``."""
        good = 0.0
        total = 0.0
        if slo.kind == "latency":
            for series in self.series.matching(slo.metric):
                for w in series.range(since, until):
                    total += w.count
                    good += w.count - w.count_above(slo.threshold)
        else:
            for series in self.series.matching(slo.metric, **dict(slo.total)):
                for w in series.range(since, until):
                    total += w.count
            for series in self.series.matching(slo.metric, **dict(slo.good)):
                for w in series.range(since, until):
                    good += w.count
        return good, total

    def bad_fraction(
        self, slo: SLO, since: float, until: float
    ) -> Optional[float]:
        """Measured bad fraction, or ``None`` when the lookback holds
        fewer than ``slo.min_events`` events (no data ≠ all good)."""
        good, total = self.counts(slo, since, until)
        if total < slo.min_events:
            return None
        return max(0.0, min(1.0, 1.0 - good / total))

    def burn_rate(self, slo: SLO, since: float, until: float) -> Optional[float]:
        """Bad fraction over the lookback, in error-budget units."""
        bad = self.bad_fraction(slo, since, until)
        if bad is None:
            return None
        return bad / slo.budget

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float) -> List[Alert]:
        """Evaluate every rule at sim time ``now``; returns newly fired
        alerts (resolves are recorded on the timeline)."""
        fired: List[Alert] = []
        for slo in self.slos:
            for index, rule in enumerate(slo.rules):
                burn_long = self.burn_rate(slo, now - rule.long_window, now)
                burn_short = self.burn_rate(slo, now - rule.short_window, now)
                breaching = (
                    burn_long is not None
                    and burn_short is not None
                    and burn_long > rule.factor
                    and burn_short > rule.factor
                )
                key = (slo.name, index)
                active = self._active.get(key)
                if breaching and active is None:
                    alert = Alert(
                        slo=slo.name,
                        severity=rule.severity,
                        fired_at=now,
                        resolved_at=None,
                        burn_long=burn_long,
                        burn_short=burn_short,
                        factor=rule.factor,
                        long_window=rule.long_window,
                        short_window=rule.short_window,
                        message=(
                            f"{slo.name}: burn rate {burn_long:.1f}x budget "
                            f"over {rule.long_window * 1e3:.2f} ms "
                            f"(and {burn_short:.1f}x over "
                            f"{rule.short_window * 1e3:.2f} ms), "
                            f"threshold {rule.factor:.1f}x"
                        ),
                    )
                    self._active[key] = alert
                    self.alerts.append(alert)
                    fired.append(alert)
                    self.timeline.append(
                        {
                            "time": now,
                            "kind": "fire",
                            "slo": slo.name,
                            "severity": rule.severity,
                            "burn_long": burn_long,
                            "burn_short": burn_short,
                            "factor": rule.factor,
                            "message": alert.message,
                        }
                    )
                elif not breaching and active is not None:
                    # The short window clearing is what resolves —
                    # that's the point of the multi-window pattern.
                    active.resolved_at = now
                    del self._active[key]
                    self.timeline.append(
                        {
                            "time": now,
                            "kind": "resolve",
                            "slo": slo.name,
                            "severity": rule.severity,
                            "message": f"{slo.name}: burn back under "
                            f"{rule.factor:.1f}x budget",
                        }
                    )
        return fired

    def finish(self, now: float) -> None:
        """End-of-run: resolve anything still active at ``now``."""
        for key in list(self._active):
            alert = self._active.pop(key)
            alert.resolved_at = now
            self.timeline.append(
                {
                    "time": now,
                    "kind": "resolve",
                    "slo": alert.slo,
                    "severity": alert.severity,
                    "message": f"{alert.slo}: run ended with alert active",
                }
            )

    # -- reporting ---------------------------------------------------------

    def status(self, slo: SLO, until: float) -> SloStatus:
        bad = self.bad_fraction(slo, 0.0, until)
        _good, total = self.counts(slo, 0.0, until)
        return SloStatus(
            slo=slo.name,
            kind=slo.kind,
            target=slo.target,
            events=total,
            bad_fraction=bad,
            budget_consumed=None if bad is None else bad / slo.budget,
            alerts=sum(1 for a in self.alerts if a.slo == slo.name),
        )

    def report(self, until: float) -> List[SloStatus]:
        return [self.status(slo, until) for slo in self.slos]

    def render(self, until: float) -> str:
        """The SLO / burn-rate dashboard section."""
        return render_slo(self.report(until), self.timeline)


def render_slo(
    report: Sequence[SloStatus], timeline: Sequence[Dict[str, Any]] = ()
) -> str:
    """Render the error-budget table and incident timeline — works on a
    live tracker's output or on fields recovered from an export."""
    from repro.bench.report import Table

    t = Table(
        "SLO error budgets",
        ["slo", "kind", "target", "events", "bad", "budget burned", "alerts", "met"],
    )
    for status in report:
        no_data = status.bad_fraction is None
        t.add_row(
            status.slo,
            status.kind,
            f"{status.target:.3%}",
            f"{status.events:.0f}",
            "no data" if no_data else f"{status.bad_fraction:.2%}",
            "no data" if no_data else f"{status.budget_consumed:.2f}x",
            status.alerts,
            {True: "yes", False: "NO", None: "no data"}[status.met],
        )
    parts = [t.render()]
    if timeline:
        tl = Table(
            "Incident timeline", ["time (us)", "event", "severity", "slo", "detail"]
        )
        for entry in timeline:
            tl.add_row(
                f"{entry['time'] * 1e6:.1f}",
                entry["kind"],
                entry.get("severity", ""),
                entry["slo"],
                entry["message"],
            )
        parts.append(tl.render())
    return "\n\n".join(parts)


def incident_timeline(
    alerts_timeline: Sequence[Dict[str, Any]],
    findings: Sequence[Any] = (),
    end: float = 0.0,
) -> List[Dict[str, Any]]:
    """Merge burn-rate alert events with anomaly findings into one
    time-ordered incident record.

    Anomaly findings (:class:`repro.obs.anomaly.Finding`) come from an
    end-of-run detection pass, so they are stamped at ``end`` — the
    correlation is "this run also showed these", not a mid-run time.
    """
    merged = [dict(entry) for entry in alerts_timeline]
    for f in findings:
        merged.append(
            {
                "time": end,
                "kind": "anomaly",
                "slo": getattr(f, "rule", "anomaly"),
                "severity": getattr(f, "severity", "info"),
                "message": getattr(f, "message", str(f)),
            }
        )
    merged.sort(key=lambda e: (e["time"], e["kind"] != "fire", e.get("slo", "")))
    return merged


__all__ = [
    "ALERT_SEVERITIES",
    "BurnRateRule",
    "SLO",
    "latency_slo",
    "availability_slo",
    "slo_from_dict",
    "Alert",
    "alert_from_dict",
    "SloStatus",
    "SloTracker",
    "render_slo",
    "incident_timeline",
]
