"""Engine self-profiling: how fast is the simulator itself?

Everything else in ``repro.obs`` measures *virtual* time — what the
simulated hardware would do.  This module measures *host wall-clock*:
how many scheduler events the discrete-event core retires per real
second, and how much real time one simulated second costs.  These are
the numbers that gate engine-speed regressions (the ROADMAP's
1000+-rank scaling item) — a change that doubles per-event Python work
shows up here long before any virtual-time figure moves.

An :class:`EngineProfiler` is attached to the
:class:`~repro.sim.core.Simulator` at construction (the
:class:`~repro.cluster.world.World` wires ``world.obs.engine`` in).
The simulator calls the three accounting hooks from its scheduler
loop; the cost per event is two ``perf_counter()`` calls.  Disabled,
the hooks are never invoked at all (the simulator keeps a ``None``
profiler).

Exported metrics (see :meth:`EngineProfiler.publish`):

=========================  ==================================================
``sim.events``             scheduler events retired (deterministic per run)
``sim.events_per_sec``     events / host wall-clock second inside ``run()``
``sim.wall_per_simsec``    host seconds per simulated second
``sim.wall_seconds``       wall inside ``run()``, labeled by phase
                           (``task`` / ``callback`` / ``scheduler``)
=========================  ==================================================
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict


class EngineProfiler:
    """Wall-clock accounting of the discrete-event scheduler loop.

    Counts retired events and splits the wall time spent inside
    :meth:`~repro.sim.core.Simulator.run` into three phases:

    * ``task`` — simulated task execution (between handing a task
      control and getting it back),
    * ``callback`` — scheduler-context ``call_later`` callbacks,
    * ``scheduler`` — everything else (heap operations, dispatch).

    Accumulates across multiple ``run(until=...)`` slices.
    """

    __slots__ = (
        "enabled",
        "events",
        "task_events",
        "callback_events",
        "task_wall",
        "callback_wall",
        "run_wall",
        "sim_elapsed",
        "runs",
    )

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: scheduler events retired (task resumes + callbacks)
        self.events = 0
        self.task_events = 0
        self.callback_events = 0
        #: host seconds inside task execution / callbacks / run() total
        self.task_wall = 0.0
        self.callback_wall = 0.0
        self.run_wall = 0.0
        #: virtual seconds covered by the profiled run() slices
        self.sim_elapsed = 0.0
        #: completed run() slices
        self.runs = 0

    # -- simulator hooks (hot path) -------------------------------------------

    def account_task(self, wall: float) -> None:
        """One task-resume event took ``wall`` host seconds."""
        self.events += 1
        self.task_events += 1
        self.task_wall += wall

    def account_callback(self, wall: float) -> None:
        """One scheduler callback took ``wall`` host seconds."""
        self.events += 1
        self.callback_events += 1
        self.callback_wall += wall

    def finish_run(self, run_wall: float, sim_now: float) -> None:
        """One ``run()`` slice ended: ``run_wall`` host seconds, clock
        at ``sim_now`` virtual seconds."""
        self.run_wall += run_wall
        self.sim_elapsed = max(self.sim_elapsed, sim_now)
        self.runs += 1

    # -- derived figures --------------------------------------------------------

    @property
    def scheduler_wall(self) -> float:
        """Wall spent on dispatch/heap work (run minus task/callback)."""
        return max(0.0, self.run_wall - self.task_wall - self.callback_wall)

    @property
    def events_per_sec(self) -> float:
        """Scheduler events retired per host second (0.0 before run)."""
        return self.events / self.run_wall if self.run_wall > 0 else 0.0

    @property
    def wall_per_simsec(self) -> float:
        """Host seconds per simulated second (0.0 when no virtual time
        elapsed — e.g. a zero-latency run)."""
        return self.run_wall / self.sim_elapsed if self.sim_elapsed > 0 else 0.0

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (attached to metric snapshots)."""
        return {
            "events": self.events,
            "task_events": self.task_events,
            "callback_events": self.callback_events,
            "events_per_sec": self.events_per_sec,
            "wall_per_simsec": self.wall_per_simsec,
            "run_wall_seconds": self.run_wall,
            "task_wall_seconds": self.task_wall,
            "callback_wall_seconds": self.callback_wall,
            "scheduler_wall_seconds": self.scheduler_wall,
            "sim_elapsed_seconds": self.sim_elapsed,
            "runs": self.runs,
        }

    def publish(self, registry) -> None:
        """Export the engine figures as gauges on ``registry``."""
        if not self.enabled or not getattr(registry, "enabled", False):
            return
        registry.gauge("sim.events", "scheduler events retired").set(self.events)
        registry.gauge(
            "sim.events_per_sec", "scheduler events per host wall-clock second"
        ).set(self.events_per_sec)
        registry.gauge(
            "sim.wall_per_simsec", "host seconds per simulated second"
        ).set(self.wall_per_simsec)
        wall = registry.gauge("sim.wall_seconds", "run() wall by engine phase")
        wall.set(self.task_wall, phase="task")
        wall.set(self.callback_wall, phase="callback")
        wall.set(self.scheduler_wall, phase="scheduler")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EngineProfiler events={self.events} "
            f"events_per_sec={self.events_per_sec:.0f} "
            f"wall_per_simsec={self.wall_per_simsec:.1f}>"
        )


__all__ = ["EngineProfiler", "perf_counter"]
