"""Exporters: Chrome trace-event JSON, JSONL, and the text dashboard.

The Chrome trace output follows the Trace Event Format and loads
directly in ``chrome://tracing`` or Perfetto (https://ui.perfetto.dev):
spans become complete (``"ph": "X"``) events on one timeline per
track, tracer records become instant (``"ph": "i"``) events, and
metadata events name the timelines.  All timestamps are virtual time
in microseconds.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer

#: path kinds always reported in the RMA dashboard, even when unused
RMA_PATH_KINDS = ("conduit", "ipc", "p2p", "local")


def _track_order(track: str) -> tuple:
    """Sort ranks numerically, then everything else alphabetically."""
    if track.startswith("rank") and track[4:].isdigit():
        return (0, int(track[4:]), track)
    return (1, 0, track)


def flow_events(
    spans: Optional[Sequence[SpanRecord]] = None,
    tids: Optional[Dict[str, int]] = None,
    pid: int = 0,
) -> List[Dict[str, Any]]:
    """Perfetto flow events (``"ph": "s"/"t"/"f"``) from span links.

    Each causal edge — a receiver span whose ``links`` name a sender
    span — becomes a flow arrow from the sender's end to the point the
    message lands inside the receiver.  Edges that chain through
    *interior* spans (exactly one incoming and one outgoing link) merge
    into a single multi-hop flow with ``"t"`` step events, so e.g.
    put → delivery → downstream-wait renders as one arrowed path.
    """
    spans = spans or ()
    if tids is None:
        tids = {
            track: tid
            for tid, track in enumerate(
                sorted({s.track for s in spans}, key=_track_order)
            )
        }
    by_id = {s.span_id: s for s in spans if s.span_id}
    incoming: Dict[int, List[int]] = {}
    outgoing: Dict[int, List[int]] = {}
    for s in spans:
        for link in s.links:
            if link == s.span_id or link not in by_id:
                continue
            incoming.setdefault(s.span_id, []).append(link)
            outgoing.setdefault(link, []).append(s.span_id)
    for targets in outgoing.values():
        targets.sort()

    def interior(n: int) -> bool:
        return len(incoming.get(n, ())) == 1 and len(outgoing.get(n, ())) == 1

    def land_ts(prev: SpanRecord, node: SpanRecord) -> float:
        # Arrive inside the receiving slice, never before departure.
        return min(max(prev.end, node.start), node.end) * 1e6

    def flow(ph: str, fid: int, name: str, rec: SpanRecord, ts: float) -> Dict[str, Any]:
        ev = {
            "ph": ph,
            "id": fid,
            "name": name,
            "cat": "flow",
            "pid": pid,
            "tid": tids[rec.track],
            "ts": ts,
        }
        if ph == "f":
            ev["bp"] = "e"  # bind to the enclosing receiver slice
        return ev

    events: List[Dict[str, Any]] = []
    emitted = set()
    next_id = 1
    for head in sorted(outgoing):
        if interior(head):
            continue  # reached mid-chain from its upstream head
        for first in outgoing[head]:
            if (head, first) in emitted:
                continue
            emitted.add((head, first))
            chain = [by_id[head], by_id[first]]
            node = first
            while interior(node) and (node, outgoing[node][0]) not in emitted:
                nxt = outgoing[node][0]
                emitted.add((node, nxt))
                chain.append(by_id[nxt])
                node = nxt
            fid, next_id = next_id, next_id + 1
            name = chain[0].name
            events.append(flow("s", fid, name, chain[0], chain[0].end * 1e6))
            for prev, mid in zip(chain, chain[1:-1]):
                events.append(flow("t", fid, name, mid, land_ts(prev, mid)))
            events.append(
                flow("f", fid, name, chain[-1], land_ts(chain[-2], chain[-1]))
            )
    return events


def iter_chrome_trace_events(
    spans: Optional[Sequence[SpanRecord]] = None,
    tracer: Optional["Tracer"] = None,
    pid: int = 0,
) -> Iterator[Dict[str, Any]]:
    """Yield ``traceEvents`` one at a time (streaming-writer friendly).

    Only the flow-arrow pass needs the whole span set at once; slice and
    instant events are produced incrementally, so a streaming writer
    never materializes the full event list.
    """
    tids: Dict[str, int] = {}
    tracks = sorted({s.track for s in spans or ()}, key=_track_order)
    if tracer is not None and len(tracer):
        tracks.append("events")
    for tid, track in enumerate(tracks):
        tids[track] = tid
        yield {
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": tid,
            "args": {"name": track},
        }
    for span in spans or ():
        yield {
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": tids[span.track],
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "args": {k: str(v) for k, v in span.args.items()},
        }
    yield from flow_events(spans, tids, pid)
    if tracer is not None:
        tid = tids.get("events", 0)
        for rec in tracer:
            yield {
                "ph": "i",
                "s": "t",
                "name": f"{rec.category}.{rec.name}",
                "cat": rec.category,
                "pid": pid,
                "tid": tid,
                "ts": rec.time * 1e6,
                "args": {k: str(v) for k, v in rec.payload.items()},
            }


def chrome_trace_events(
    spans: Optional[Sequence[SpanRecord]] = None,
    tracer: Optional["Tracer"] = None,
    pid: int = 0,
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for the given spans and trace records."""
    return list(iter_chrome_trace_events(spans, tracer, pid))


def chrome_trace(
    spans: Optional[Sequence[SpanRecord]] = None,
    tracer: Optional["Tracer"] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A complete JSON-object-format Chrome trace document."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(spans, tracer),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = {k: str(v) for k, v in metadata.items()}
    return doc


def write_chrome_trace(
    path: str,
    spans: Optional[Sequence[SpanRecord]] = None,
    tracer: Optional["Tracer"] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Stream the trace document to ``path``; returns the event count.

    Events are written one at a time as they are produced — the full
    ``traceEvents`` list is never materialized, so exporting a
    thousand-rank trace costs O(1) extra memory over the kept spans.
    The output is the same JSON-object-format document
    :func:`chrome_trace` builds.
    """
    count = 0
    with open(path, "w") as fh:
        fh.write('{"traceEvents": [')
        for ev in iter_chrome_trace_events(spans, tracer):
            if count:
                fh.write(",\n")
            fh.write(json.dumps(ev))
            count += 1
        fh.write('], "displayTimeUnit": "ms"')
        if metadata:
            fh.write(', "otherData": ')
            fh.write(json.dumps({k: str(v) for k, v in metadata.items()}))
        fh.write("}")
    return count


def _event_line(rec) -> str:
    return json.dumps(
        {
            "time": rec.time,
            "category": rec.category,
            "name": rec.name,
            "payload": {k: str(v) for k, v in rec.payload.items()},
        }
    )


def events_jsonl(tracer: "Tracer") -> str:
    """Tracer records as one JSON object per line."""
    return "\n".join(_event_line(rec) for rec in tracer)


def write_events_jsonl(path: str, tracer: "Tracer") -> int:
    """Stream tracer records to a JSONL file; returns the line count."""
    count = 0
    with open(path, "w") as fh:
        for rec in tracer:
            fh.write(_event_line(rec))
            fh.write("\n")
            count += 1
    return count


def write_metrics_snapshot(path: str, registry: MetricsRegistry, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write ``registry.snapshot()`` (plus ``extra`` keys) as JSON."""
    doc = dict(extra or {})
    doc["metrics"] = registry.snapshot()
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)
    return doc


# ---------------------------------------------------------------------------
# Text dashboard
# ---------------------------------------------------------------------------


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.3f}"


def _ranks_of(metric) -> List[str]:
    ranks = set()
    for key in metric.label_keys():
        for k, v in key:
            if k == "rank":
                ranks.add(v)
    return sorted(ranks, key=lambda r: (not r.isdigit(), int(r) if r.isdigit() else 0, r))


def dashboard_tables(registry: MetricsRegistry):
    """The dashboard as a list of :class:`repro.bench.report.Table`.

    Opinionated views first (RMA paths, pointer cache, stream pools),
    then a generic catalog of everything else in the registry.
    """
    # Imported lazily: repro.bench pulls in the world/apps stack, which
    # itself imports repro.obs at world construction.
    from repro.bench.report import Table

    tables = []

    if "rma.ops" in registry or "rma.bytes" in registry:
        t = Table("RMA traffic by path", ["path", "ops", "bytes"])
        for path in RMA_PATH_KINDS:
            t.add_row(
                path,
                _fmt(registry.value("rma.ops", path=path)),
                _fmt(registry.value("rma.bytes", path=path)),
            )
        tables.append(t)

        ops = registry.counter("rma.ops")
        ranks = _ranks_of(ops)
        if ranks:
            t = Table("RMA ops by rank", ["rank", "puts", "gets", "pointer fetches"])
            for rank in ranks:
                t.add_row(
                    rank,
                    _fmt(ops.value(op="put", rank=rank)),
                    _fmt(ops.value(op="get", rank=rank)),
                    _fmt(registry.value("rma.pointer_cache", event="miss", rank=rank)),
                )
            t.add_row(
                "all",
                _fmt(ops.value(op="put")),
                _fmt(ops.value(op="get")),
                _fmt(registry.value("rma.pointer_cache", event="miss")),
            )
            tables.append(t)

    if "rma.agg.batches" in registry:
        batches = registry.value("rma.agg.batches")
        batched = registry.value("rma.agg.batched_ops")
        t = Table(
            "RMA aggregation",
            ["op", "batches", "coalesced ops", "bytes", "ops/batch"],
        )
        for op in ("put", "get"):
            n = registry.value("rma.agg.batches", op=op)
            k = registry.value("rma.agg.batched_ops", op=op)
            t.add_row(
                op,
                _fmt(n),
                _fmt(k),
                _fmt(registry.value("rma.agg.bytes", op=op)),
                f"{k / n:.1f}" if n else "n/a",
            )
        t.add_row(
            "all",
            _fmt(batches),
            _fmt(batched),
            _fmt(registry.value("rma.agg.bytes")),
            f"{batched / batches:.1f}" if batches else "n/a",
        )
        tables.append(t)

    if "rma.pointer_cache" in registry:
        hits = registry.value("rma.pointer_cache", event="hit")
        misses = registry.value("rma.pointer_cache", event="miss")
        prefetched = registry.value("rma.pointer_cache", event="prefetch")
        total = hits + misses
        t = Table("Pointer cache", ["hits", "misses", "prefetched", "hit rate"])
        t.add_row(
            _fmt(hits),
            _fmt(misses),
            _fmt(prefetched),
            f"{hits / total:.1%}" if total else "n/a",
        )
        tables.append(t)

    if "streams.active" in registry:
        gauge = registry.gauge("streams.active")
        t = Table("Stream pools", ["device", "active", "high water"])
        for key in gauge.label_keys():
            labels = dict(key)
            dev = labels.get("device", "?")
            t.add_row(
                dev,
                _fmt(gauge.value(**labels)),
                _fmt(gauge.high_water(**labels)),
            )
        t.add_row("all", _fmt(gauge.value()), _fmt(gauge.high_water()))
        tables.append(t)

    hist_rows = []
    for metric in registry:
        if not isinstance(metric, Histogram):
            continue
        for entry in metric.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            hist_rows.append((metric.name, labels, entry))
    if hist_rows:
        t = Table(
            "Histogram quantiles",
            ["histogram", "labels", "n", "mean", "p50", "p95", "p99"],
        )
        for name, labels, entry in hist_rows:
            t.add_row(
                name,
                labels,
                entry["count"],
                f"{entry['mean']:.2f}",
                _fmt(entry["p50"]),
                _fmt(entry["p95"]),
                _fmt(entry["p99"]),
            )
        tables.append(t)

    catalog = Table("Metric catalog", ["metric", "kind", "labels", "value"])
    for metric in registry:
        for entry in metric.snapshot():
            labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
            if isinstance(metric, Histogram):
                value = (
                    f"n={entry['count']} mean={entry['mean']:.2f} "
                    f"max={_fmt(entry['max'])}"
                )
            elif metric.kind == "gauge":
                value = f"{_fmt(entry['value'])} (hw {_fmt(entry['high_water'])})"
            else:
                value = _fmt(entry["value"])
            catalog.add_row(metric.name, metric.kind, labels, value)
    tables.append(catalog)
    tables.append(health_table(registry))
    return tables


def health_table(registry: MetricsRegistry):
    """Registry self-check: per-family series counts and the guard.

    Shows each family's series count against the cardinality cap and
    the total number of writes the guard dropped, so an operator can
    see at a glance when per-rank views became incomplete.
    """
    from repro.bench.report import Table

    health = registry.health()
    t = Table("Telemetry health", ["metric", "kind", "series", "overflowed"])
    for name, fam in sorted(health["families"].items()):
        t.add_row(name, fam["kind"], fam["series"], "yes" if fam["overflowed"] else "")
    t.add_row(
        "total",
        "",
        health["total_series"],
        f"dropped {health['dropped_series']} write(s)"
        if health["dropped_series"]
        else "",
    )
    return t


def windows_table(snapshot: Dict[str, Any]):
    """Summarize a :meth:`~repro.obs.timeseries.TimeSeries.snapshot`
    doc: one row per (family, group) series with its latest window's
    count and p99 — the at-a-glance "what is happening *now*" view the
    end-of-run metric catalog cannot give.
    """
    from repro.bench.report import Table

    spec = snapshot.get("spec", {})
    width = spec.get("width", 0.0)
    t = Table(
        f"Windowed time series ({width * 1e6:.0f} us windows)",
        ["family", "labels", "total n", "windows", "last n", "last p99"],
    )
    for name, groups in sorted(snapshot.get("families", {}).items()):
        for group in groups:
            wins = group.get("windows", ())
            last = wins[-1] if wins else None
            labels = ",".join(f"{k}={v}" for k, v in sorted(group["labels"].items()))
            t.add_row(
                name,
                labels,
                _fmt(group.get("count", 0)),
                len(wins),
                _fmt(last["count"]) if last else "-",
                f"{last['p99']:.3g}" if last and last["count"] else "-",
            )
    dropped = snapshot.get("dropped", 0)
    if dropped:
        t.add_row("(dropped)", "over max_series cap", _fmt(dropped), "", "", "")
    return t


def render_dashboard(
    registry: MetricsRegistry,
    title: str = "Observability dashboard",
    spans: Optional[Sequence[SpanRecord]] = None,
    anomalies: Optional[Any] = None,
    windows: Optional[Dict[str, Any]] = None,
    slo: Optional[Any] = None,
    chargeback: Optional[Any] = None,
) -> str:
    """The full dashboard as one printable string.

    When ``spans`` is given, the cross-rank critical-path breakdown and
    per-track wait-state tables are appended (see
    :mod:`repro.obs.critical_path`).  ``anomalies`` may be an
    :class:`~repro.obs.anomaly.AnomalyReport` (rendered as a findings
    section) or ``True`` to run the default detection rules over the
    given spans and registry here.  ``windows`` (a
    ``TimeSeries.snapshot()`` doc), ``slo`` (a pre-rendered section
    string or anything with ``.render()``), and ``chargeback`` (a
    :class:`~repro.obs.accounting.ChargebackReport`) append the
    service-level sections.
    """
    parts = [title, "#" * len(title)]
    parts.extend(t.render() for t in dashboard_tables(registry))
    if windows:
        parts.append(windows_table(windows).render())
    if slo is not None:
        parts.append(slo if isinstance(slo, str) else slo.render())
    if chargeback is not None:
        parts.append(chargeback.render())
    if spans:
        from repro.obs.critical_path import critical_path

        parts.append(critical_path(spans).render())
    if anomalies is True:
        from repro.obs.anomaly import detect

        anomalies = detect(spans=spans or (), registry=registry)
    if anomalies is not None and anomalies is not False:
        parts.append(anomalies.render())
    return "\n\n".join(parts)
