"""The metrics registry: counters, gauges, and histograms.

Every metric is a *family* identified by name; within a family, values
are keyed by label sets (``rank``, ``device``, ``path`` ...), mirroring
the Prometheus data model.  Reads aggregate: ``counter.value(rank=0)``
sums every series whose labels include ``rank=0``, so per-rank and
cluster-wide views come from the same data.

When the registry is disabled every write is a single attribute check
and an early return — the runtime keeps its instrumentation call sites
unconditionally and pays (almost) nothing.

All label values are stringified on write, so ``rank=3`` and
``rank="3"`` address the same series.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.errors import ConfigurationError

#: label storage: sorted ((key, value), ...) tuples
LabelKey = Tuple[Tuple[str, str], ...]

#: default histogram bucket upper bounds (counts, iterations, sizes)
DEFAULT_BOUNDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)

#: message size-class labels used by the conduit instrumentation
_SIZE_CLASSES: Tuple[Tuple[int, str], ...] = (
    (4 * 1024, "<4KiB"),
    (64 * 1024, "<64KiB"),
    (1024 * 1024, "<1MiB"),
    (4 * 1024 * 1024, "<4MiB"),
)


def size_class(nbytes: int) -> str:
    """The conventional message size-class label for ``nbytes``."""
    for bound, label in _SIZE_CLASSES:
        if nbytes < bound:
            return label
    return ">=4MiB"


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _matches(key: LabelKey, query: LabelKey) -> bool:
    """True when every (k, v) of the query appears in the series key."""
    entries = dict(key)
    return all(entries.get(k) == v for k, v in query)


@dataclasses.dataclass
class HistogramStats:
    """Aggregate statistics of one histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")
    buckets: List[int] = dataclasses.field(default_factory=list)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def observe(self, value: float, bounds: Sequence[float]) -> None:
        if not self.buckets:
            self.buckets = [0] * (len(bounds) + 1)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1  # overflow bucket

    def percentile(self, q: float, bounds: Sequence[float]) -> float:
        """Bucket-estimated ``q``-quantile (``q`` in [0, 1]).

        Walks the cumulative bucket counts and interpolates linearly
        inside the bucket containing the target rank; the first bucket
        is anchored at the observed minimum, the overflow bucket at the
        observed maximum.  Exact when observations fall on bucket
        bounds; within one bucket width otherwise — the standard
        Prometheus ``histogram_quantile`` trade-off.

        Edge cases are pinned, never estimated:

        * ``q`` outside [0, 1] (including NaN) raises
          :class:`~repro.util.errors.ConfigurationError`;
        * an empty series returns 0.0;
        * a single observation returns that observation for every q;
        * ``q == 0`` returns the observed minimum, ``q == 1`` the
          observed maximum, exactly.
        """
        if not (0.0 <= q <= 1.0):  # also catches NaN (comparisons fail)
            raise ConfigurationError(f"percentile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if self.count == 1 or self.minimum == self.maximum:
            return self.minimum
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cumulative + n >= target:
                lo = self.minimum if i == 0 else float(bounds[i - 1])
                hi = float(bounds[i]) if i < len(bounds) else self.maximum
                lo = max(lo, self.minimum)
                hi = min(hi, self.maximum)
                if hi <= lo:
                    return lo
                frac = (target - cumulative) / n
                return lo + (hi - lo) * min(1.0, max(0.0, frac))
            cumulative += n
        return self.maximum  # pragma: no cover - target beyond all buckets


class Metric:
    """Base class: one named family of labeled series."""

    kind = "metric"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "") -> None:
        self.registry = registry
        self.name = name
        self.help = help
        #: True once this family hit the label-cardinality cap
        self.overflowed = False

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def _admit(self, series: Dict[LabelKey, Any], key: LabelKey) -> bool:
        """Label-cardinality guard: may ``key`` become a new series?

        Existing series always pass.  A new series passes while the
        family is below the registry's ``max_series_per_metric`` cap;
        beyond it the write is dropped (and counted) with a one-time
        warning, so one buggy instrumentation site — say a label
        carrying a message address — cannot grow snapshots unboundedly.
        """
        if key in series:
            return True
        if len(series) < self.registry.max_series_per_metric:
            return True
        if not self.overflowed:
            self.overflowed = True
            warnings.warn(
                f"metric {self.name!r} exceeded the label-cardinality cap "
                f"({self.registry.max_series_per_metric} series); further "
                "new label sets are dropped",
                RuntimeWarning,
                stacklevel=4,
            )
        self.registry.dropped_series += 1
        return False

    def label_keys(self) -> List[LabelKey]:
        raise NotImplementedError

    def series_count(self) -> int:
        """How many labeled series this family currently holds."""
        return len(self.label_keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class Counter(Metric):
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "") -> None:
        super().__init__(registry, name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise ConfigurationError(f"counter {self.name}: negative increment")
        key = _label_key(labels)
        if not self._admit(self._series, key):
            return
        self._series[key] = self._series.get(key, 0.0) + amount
        if self.registry._hooks:
            self.registry._notify(self, float(amount), labels)

    def value(self, **labels: Any) -> float:
        """Sum over every series matching the given label subset."""
        query = _label_key(labels)
        return sum(v for k, v in self._series.items() if _matches(k, query))

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(k), "value": v} for k, v in sorted(self._series.items())
        ]


class Gauge(Metric):
    """A labeled point-in-time value that also tracks its high-water mark."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = "") -> None:
        super().__init__(registry, name, help)
        self._series: Dict[LabelKey, float] = {}
        self._high: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        if not self._admit(self._series, key):
            return
        self._series[key] = value
        if value > self._high.get(key, float("-inf")):
            self._high[key] = value
        if self.registry._hooks:
            self.registry._notify(self, float(value), labels)

    def add(self, delta: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        self.set(self._series.get(key, 0.0) + delta, **labels)

    def value(self, **labels: Any) -> float:
        """Sum of current values over matching series (e.g. cluster
        occupancy = sum of per-rank occupancies)."""
        query = _label_key(labels)
        return sum(v for k, v in self._series.items() if _matches(k, query))

    def high_water(self, **labels: Any) -> float:
        """Max high-water mark over matching series (0.0 when unseen)."""
        query = _label_key(labels)
        marks = [v for k, v in self._high.items() if _matches(k, query)]
        return max(marks) if marks else 0.0

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)

    def snapshot(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(k), "value": v, "high_water": self._high[k]}
            for k, v in sorted(self._series.items())
        ]


class Histogram(Metric):
    """A labeled distribution with fixed bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(registry, name, help)
        self.bounds: Tuple[float, ...] = tuple(bounds) if bounds else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ConfigurationError(f"histogram {name}: bounds must be sorted")
        self._series: Dict[LabelKey, HistogramStats] = {}

    def observe(self, value: float, **labels: Any) -> None:
        if not self.registry.enabled:
            return
        key = _label_key(labels)
        stats = self._series.get(key)
        if stats is None:
            if not self._admit(self._series, key):
                return
            stats = self._series[key] = HistogramStats()
        stats.observe(value, self.bounds)
        if self.registry._hooks:
            self.registry._notify(self, float(value), labels)

    def stats(self, **labels: Any) -> HistogramStats:
        """Aggregate stats over every series matching the label subset."""
        query = _label_key(labels)
        merged = HistogramStats()
        for key, s in self._series.items():
            if not _matches(key, query):
                continue
            if not merged.buckets:
                merged.buckets = [0] * len(s.buckets)
            merged.count += s.count
            merged.total += s.total
            merged.minimum = min(merged.minimum, s.minimum)
            merged.maximum = max(merged.maximum, s.maximum)
            merged.buckets = [a + b for a, b in zip(merged.buckets, s.buckets)]
        return merged

    def count(self, **labels: Any) -> int:
        return self.stats(**labels).count

    def label_keys(self) -> List[LabelKey]:
        return sorted(self._series)

    def snapshot(self) -> List[Dict[str, Any]]:
        out = []
        for key, s in sorted(self._series.items()):
            out.append(
                {
                    "labels": dict(key),
                    "count": s.count,
                    "sum": s.total,
                    "min": s.minimum if s.count else 0.0,
                    "max": s.maximum if s.count else 0.0,
                    "mean": s.mean,
                    "p50": s.percentile(0.50, self.bounds),
                    "p95": s.percentile(0.95, self.bounds),
                    "p99": s.percentile(0.99, self.bounds),
                    "buckets": list(s.buckets),
                }
            )
        return out


class MetricsRegistry:
    """One world's metric families, get-or-create by name."""

    def __init__(self, enabled: bool = True, max_series_per_metric: int = 1000) -> None:
        if max_series_per_metric < 1:
            raise ConfigurationError(
                f"max_series_per_metric must be >= 1, got {max_series_per_metric}"
            )
        self.enabled = enabled
        #: label-cardinality cap applied per metric family
        self.max_series_per_metric = max_series_per_metric
        #: total writes dropped by the cardinality guard (all families)
        self.dropped_series = 0
        self._metrics: Dict[str, Metric] = {}
        #: write hooks: ``fn(metric, value, labels)`` called on every
        #: admitted counter inc / gauge set / histogram observe.  This
        #: is what feeds the windowed time-series layer
        #: (:mod:`repro.obs.timeseries`) without touching call sites.
        self._hooks: List[Callable[[Metric, float, Dict[str, Any]], None]] = []

    def add_write_hook(
        self, hook: Callable[[Metric, float, Dict[str, Any]], None]
    ) -> None:
        """Subscribe ``hook(metric, value, labels)`` to every admitted
        write.  Hooks must not write metrics themselves (no re-entry
        guard is taken; a writing hook would recurse)."""
        if hook not in self._hooks:
            self._hooks.append(hook)

    def remove_write_hook(
        self, hook: Callable[[Metric, float, Dict[str, Any]], None]
    ) -> None:
        """Unsubscribe a hook added with :meth:`add_write_hook`."""
        if hook in self._hooks:
            self._hooks.remove(hook)

    def _notify(self, metric: Metric, value: float, labels: Dict[str, Any]) -> None:
        for hook in self._hooks:
            hook(metric, value, labels)

    def _get(self, name: str, factory, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as a {metric.kind}, "
                f"requested as a {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, lambda: Counter(self, name, help), "counter")  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, lambda: Gauge(self, name, help), "gauge")  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(
            name, lambda: Histogram(self, name, help, bounds), "histogram"
        )  # type: ignore[return-value]

    def value(self, name: str, **labels: Any) -> float:
        """Aggregate read of a counter/gauge family (0.0 if absent)."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return 0.0
        return metric.value(**labels)  # type: ignore[union-attr]

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics[name] for name in sorted(self._metrics))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def health(self) -> Dict[str, Any]:
        """Cardinality-guard visibility: per-family series counts,
        which families overflowed the cap, and total dropped writes."""
        families = {
            m.name: {
                "kind": m.kind,
                "series": m.series_count(),
                "overflowed": m.overflowed,
            }
            for m in self
        }
        return {
            "dropped_series": self.dropped_series,
            "max_series_per_metric": self.max_series_per_metric,
            "total_series": sum(f["series"] for f in families.values()),
            "families": families,
        }

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable dump of every family and series.

        Each family entry carries ``series_count``/``overflowed``, and
        the top-level ``health`` block totals the cardinality-guard
        drops — so capped families are visible in the export, not just
        in a one-time warning.
        """
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for metric in self:
            entry: Dict[str, Any] = {
                "help": metric.help,
                "series": metric.snapshot(),  # type: ignore[attr-defined]
                "series_count": metric.series_count(),
                "overflowed": metric.overflowed,
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = list(metric.bounds)
            out[metric.kind + "s"][metric.name] = entry
        out["health"] = self.health()
        return out
