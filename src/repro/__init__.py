"""DiOMP-Offloading reproduction.

A full implementation of the system described in *DiOMP-Offloading:
Toward Portable Distributed Heterogeneous OpenMP* (Shan, Araya-Polo,
Chapman — SC 2025), built on a deterministic discrete-event cluster
simulator: PGAS global device memory over GASNet-EX/GPI-2-like
conduits, `ompx_*` one-sided RMA with hierarchical path selection,
OMPCCL collectives over NCCL/RCCL models, DiOMP groups, a
libomptarget layer with the DiOMP allocator plugin, a mini-MPI
baseline, and the paper's two evaluation applications.

Typical entry points::

    from repro.cluster import World, run_spmd
    from repro.core import DiompRuntime
    from repro.hardware import platform_a

    world = World(platform_a(), num_nodes=2)
    DiompRuntime(world)
    run_spmd(world, program)

See README.md for a tour, DESIGN.md for the architecture and
substitution table, EXPERIMENTS.md for paper-vs-measured results, and
``python -m repro.bench`` to regenerate the evaluation figures.
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "bench",
    "cluster",
    "core",
    "device",
    "faults",
    "gasnet",
    "gpi2",
    "hardware",
    "mpi",
    "network",
    "omptarget",
    "sim",
    "util",
    "xccl",
]
