"""Cluster world and SPMD launch harness.

:class:`~repro.cluster.world.World` instantiates everything a run
needs — simulator, topology, fabric, one :class:`~repro.device.Device`
per GPU, peer-access manager, tracer — and places *ranks* on nodes.
:func:`~repro.cluster.spmd.run_spmd` is the ``mpiexec`` analogue: it
spawns one simulated task per rank, runs the program to completion and
returns results plus the elapsed virtual time.

The paper's deployment flexibility (§3.3) maps to the launch
parameters: ``ranks_per_node`` and ``devices_per_rank`` express both
the conventional one-GPU-per-rank model and DiOMP's single-process
multi-GPU model.

Where a world is single-use (one program, one ``sim.run()``), the
:mod:`~repro.cluster.service` layer multiplexes a *stream* of tenant
jobs over one shared world: admission control, gang placement onto
free nodes, and per-tenant fault/metric isolation.
"""

from repro.cluster.world import World, RankContext
from repro.cluster.spmd import run_spmd, SpmdConfig, SpmdResult
from repro.cluster.memref import MemRef
from repro.cluster.jobs import JobRequest, poisson_jobs
from repro.cluster.service import (
    ClusterService,
    JobRecord,
    ServiceConfig,
    ServiceResult,
    TenantView,
    default_service_slos,
)

__all__ = [
    "World",
    "RankContext",
    "run_spmd",
    "SpmdConfig",
    "SpmdResult",
    "MemRef",
    "JobRequest",
    "poisson_jobs",
    "ClusterService",
    "JobRecord",
    "ServiceConfig",
    "ServiceResult",
    "TenantView",
    "default_service_slos",
]
