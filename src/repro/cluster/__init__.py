"""Cluster world and SPMD launch harness.

:class:`~repro.cluster.world.World` instantiates everything a run
needs — simulator, topology, fabric, one :class:`~repro.device.Device`
per GPU, peer-access manager, tracer — and places *ranks* on nodes.
:func:`~repro.cluster.spmd.run_spmd` is the ``mpiexec`` analogue: it
spawns one simulated task per rank, runs the program to completion and
returns results plus the elapsed virtual time.

The paper's deployment flexibility (§3.3) maps to the launch
parameters: ``ranks_per_node`` and ``devices_per_rank`` express both
the conventional one-GPU-per-rank model and DiOMP's single-process
multi-GPU model.
"""

from repro.cluster.world import World, RankContext
from repro.cluster.spmd import run_spmd, SpmdConfig, SpmdResult
from repro.cluster.memref import MemRef

__all__ = ["World", "RankContext", "run_spmd", "SpmdConfig", "SpmdResult", "MemRef"]
