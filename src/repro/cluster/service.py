"""Multi-tenant job scheduler over one shared simulated cluster.

A :class:`World` is single-use: one SPMD program, one ``sim.run()``.
The service layer lifts that to a *cluster*: a stream of
:class:`~repro.cluster.jobs.JobRequest`\\ s from different tenants is
admitted through a bounded queue, gang-placed onto free nodes, run as
an isolated :class:`TenantView` of the shared world, and torn down so
the nodes (and their device memory) go back into the pool.

Isolation model
===============

Gangs are whole nodes, so two concurrent jobs never share a GPU, a
NIC, or an intra-node link.  Each job gets:

* fresh :class:`~repro.cluster.world.RankContext`\\ s with tenant-local
  ranks ``0..k-1`` (the job's program is unchanged from standalone
  ``run_spmd`` use),
* its own conduit/runtime/collective state (a new
  :class:`~repro.core.runtime.DiompRuntime` per job),
* its own :class:`~repro.obs.Observability` per *tenant*, so one
  tenant's metrics/spans never mix into another's registry — the
  service's own ``service.*`` metrics live on the world registry with
  a ``tenant`` label for cross-tenant rollups,
* its own :class:`~repro.faults.FaultPlan` scope: the plan is armed on
  the gang's devices and consulted by the gang's conduits/fabric
  transfers only, so a chaos plan on tenant A cannot perturb tenant
  B's results *or timing* (the isolation property the tests assert
  bit-for-bit).

Scheduling is deterministic: admission order is (arrival, job_id),
placement takes the lowest free node indices, and the queue policy is
strict — the head job (FIFO) or the highest-priority job (priority
policy) blocks later jobs rather than being backfilled around.  With a
seeded job stream the whole service run replays exactly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.jobs import JobRequest, build_job
from repro.cluster.world import RankContext, World
from repro.device import PeerAccessManager
from repro.hardware.topology import DeviceId
from repro.obs import Observability
from repro.obs.accounting import ChargebackReport, CostRates, chargeback_report
from repro.obs.rollup import exact_percentile
from repro.obs.slo import (
    SLO,
    Alert,
    BurnRateRule,
    SloStatus,
    SloTracker,
    availability_slo,
    incident_timeline,
    latency_slo,
)
from repro.obs.timeseries import TimeSeries, WindowSpec
from repro.sim import Barrier, Future
from repro.util.errors import ConfigurationError, PercentileError
from repro.util.units import MiB


def default_service_slos() -> Tuple[SLO, ...]:
    """The stock service objectives (see ``docs/SLO.md``).

    Thresholds are calibrated to the saturation benchmark's offered-load
    sweep: an unsaturated service (every gang places immediately) emits
    zero alerts, while the saturated point breaches both objectives —
    queue waits blow through the latency budget and admission control
    starts shedding, burning the availability budget.
    """
    return (
        latency_slo(
            "queue-wait-p90",
            "service.queue_wait_seconds",
            threshold=250e-6,
            target=0.90,
            window=2e-3,
            rules=(
                BurnRateRule(
                    long_window=2e-3, short_window=5e-4, factor=2.0, severity="page"
                ),
            ),
            min_events=4,
            description="90% of admitted jobs wait < 250 us for placement",
        ),
        availability_slo(
            "job-success",
            "service.jobs",
            good={"outcome": "completed"},
            target=0.999,
            window=2e-3,
            rules=(
                BurnRateRule(
                    long_window=2e-3, short_window=5e-4, factor=10.0, severity="page"
                ),
            ),
            min_events=4,
            description="99.9% of submitted jobs complete (not rejected/failed)",
        ),
    )


class _TenantFabric:
    """The shared fabric, seen through one tenant's fault scope.

    ``Fabric.transfer`` draws its fault plan at issue time and never
    yields, so swapping the plan in around the call (and restoring it
    before returning) confines injected faults to this tenant's
    transfers without copying any fabric state.
    """

    def __init__(self, fabric, view: "TenantView") -> None:
        self._fabric = fabric
        self._view = view

    def transfer(self, *args: Any, **kwargs: Any):
        plan = self._view.fault_plan
        if plan is None:
            return self._fabric.transfer(*args, **kwargs)
        saved = self._fabric.faults
        self._fabric.faults = plan
        try:
            return self._fabric.transfer(*args, **kwargs)
        finally:
            self._fabric.faults = saved

    def __getattr__(self, name: str) -> Any:
        return getattr(self._fabric, name)


class TenantView:
    """One job's gang, duck-typing :class:`World` for the runtime stack.

    Shares the world's simulator, topology, platform, tracer, and
    device objects (hardware is real and shared); owns everything that
    must not leak across tenants — rank contexts, observability, peer
    access bookkeeping, the gang barrier, and the fault scope.
    """

    def __init__(
        self,
        world: World,
        nodes: Sequence[int],
        ranks_per_node: int,
        devices_per_rank: int = 1,
        obs: Optional[Observability] = None,
        tenant: str = "tenant",
    ) -> None:
        if not nodes:
            raise ConfigurationError("a tenant view needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ConfigurationError(f"duplicate nodes in gang: {nodes}")
        if ranks_per_node <= 0 or devices_per_rank <= 0:
            raise ConfigurationError("gang shape values must be positive")
        gpn = world.platform.gpus_per_node
        if ranks_per_node * devices_per_rank > gpn:
            raise ConfigurationError(
                f"{ranks_per_node} ranks x {devices_per_rank} devices "
                f"exceed {gpn} GPUs per node"
            )
        self.world = world
        self.tenant = tenant
        self.nodes = tuple(nodes)
        # Shared hardware and clocks.
        self.platform = world.platform
        self.sim = world.sim
        self.topology = world.topology
        self.tracer = world.tracer
        self.fabric = _TenantFabric(world.fabric, self)
        # Tenant-owned state.
        self.obs = obs if obs is not None else Observability()
        if obs is None:
            self.obs.bind_clock(lambda: self.sim.now)
        self.peer_access = PeerAccessManager(world.topology)
        self.ranks_per_node = ranks_per_node
        self.devices_per_rank = devices_per_rank
        self.devices: Dict[DeviceId, Any] = {}
        self.ranks: List[RankContext] = []
        for node in self.nodes:
            for lr in range(ranks_per_node):
                first = lr * devices_per_rank
                bound = [
                    world.devices[world.topology.gpu(node, first + d)]
                    for d in range(devices_per_rank)
                ]
                for dev in bound:
                    self.devices[dev.device_id] = dev
                self.ranks.append(RankContext(self, len(self.ranks), node, bound))
        self._device_owner: Dict[DeviceId, RankContext] = {
            dev.device_id: ctx for ctx in self.ranks for dev in ctx.devices
        }
        self.global_barrier = Barrier(
            self.sim, len(self.ranks), name=f"{tenant}-barrier"
        )
        #: this tenant's FaultPlan; conduits/streams/fabric consult it
        self.fault_plan = None

    # -- World duck-type surface -------------------------------------------

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    @property
    def analytic(self) -> bool:
        return self.world.analytic

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.ranks[rank_a].node == self.ranks[rank_b].node

    def device_owner(self, dev_id: DeviceId) -> RankContext:
        try:
            return self._device_owner[dev_id]
        except KeyError:
            raise ConfigurationError(
                f"device {dev_id} is not bound to any rank of tenant "
                f"{self.tenant!r}"
            ) from None

    # -- fault scoping -------------------------------------------------------

    def install_fault_plan(self, plan) -> None:
        """Arm ``plan`` on this gang only: the gang's devices (for the
        ``stream.sync`` site) and — via :class:`_TenantFabric` and the
        conduit's live ``fault_plan`` lookup — every transfer this
        tenant issues.  The rest of the world stays on its own plan."""
        plan.bind(self.obs)
        self.fault_plan = plan
        for dev in self.devices.values():
            dev.faults = plan

    def restore(self) -> None:
        """Detach the tenant scope, handing devices back to the world's
        plan (usually None).  Called at job teardown."""
        self.fault_plan = None
        for dev in self.devices.values():
            dev.faults = self.world.fault_plan

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TenantView {self.tenant} nodes={self.nodes} "
            f"ranks={self.nranks}>"
        )


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Scheduler knobs."""

    #: max jobs waiting; arrivals beyond it are rejected (admission
    #: control — the service degrades by shedding, not by unbounded
    #: queue growth)
    queue_limit: int = 16
    #: "fifo" (strict arrival order) or "priority" (highest
    #: :attr:`~repro.cluster.jobs.JobRequest.priority` first, FIFO ties)
    policy: str = "fifo"
    #: per-rank host segment for each job's runtime (jobs here use the
    #: device-side path; keep the host arena small)
    host_segment_size: int = 1 * MiB
    #: service-level objectives evaluated live while the service runs.
    #: ``None`` (the default) installs :func:`default_service_slos`;
    #: pass an empty tuple to disable SLO tracking entirely.
    slos: Optional[Tuple[SLO, ...]] = None
    #: windowing for the live ``service.*`` time series backing the
    #: SLO burn-rate math; ``None`` uses 100 us tumbling windows with a
    #: 64-deep ring (bounded memory regardless of run length)
    windows: Optional[WindowSpec] = None


@dataclasses.dataclass
class JobRecord:
    """One job's life, as the service saw it (all times virtual)."""

    job_id: int
    tenant: str
    kind: str
    #: "completed" | "failed" | "rejected"
    outcome: str
    submitted: float
    started: Optional[float]
    finished: float
    queue_wait: float
    service_time: float
    #: node indices the gang ran on (empty for rejections)
    nodes: Tuple[int, ...]
    #: per-rank program results ("completed" only)
    results: Optional[List[Any]] = None
    #: repr of the first rank error ("failed" only)
    error: Optional[str] = None
    #: why admission refused the job ("rejected" only)
    reason: Optional[str] = None


@dataclasses.dataclass
class ServiceResult:
    """Outcome of one service run over a job stream."""

    #: records in event order (rejections at submit, others at teardown)
    records: List[JobRecord]
    #: virtual seconds from service start to the last event
    elapsed: float
    world: World
    #: tenant -> that tenant's private Observability
    tenant_obs: Dict[str, Observability]
    #: the objectives that were live during the run (empty if disabled)
    slos: Tuple[SLO, ...] = ()
    #: every burn-rate alert that fired, in fire order (all resolved by
    #: end of run — an alert still breaching resolves at ``elapsed``)
    alerts: List[Alert] = dataclasses.field(default_factory=list)
    #: raw fire/resolve events, sim-timestamped, in event order
    timeline: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: end-of-run error-budget accounting per SLO
    slo_report: List[SloStatus] = dataclasses.field(default_factory=list)
    #: bounded windowed-series snapshot (``TimeSeries.snapshot()``)
    windows: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        # Build the job-id and outcome indexes once: ``record_of`` and
        # ``by_outcome`` were O(n) scans per call.  A duplicate id
        # between *admitted* records is bookkeeping corruption and
        # fails loudly at construction (it used to silently resolve to
        # whichever record came first); a rejection record may share
        # the id of an admitted job — that is the admission layer
        # refusing a duplicate submission — and ``record_of`` then
        # resolves to the admitted record.
        self._by_id: Dict[int, JobRecord] = {}
        self._by_outcome: Dict[str, List[JobRecord]] = {}
        for r in self.records:
            held = self._by_id.get(r.job_id)
            if held is None:
                self._by_id[r.job_id] = r
            elif r.outcome != "rejected":
                if held.outcome != "rejected":
                    raise ConfigurationError(
                        f"duplicate job id {r.job_id} in service records: "
                        f"{held.outcome!r} and {r.outcome!r} records both "
                        "claim it"
                    )
                self._by_id[r.job_id] = r
            self._by_outcome.setdefault(r.outcome, []).append(r)

    def by_outcome(self, outcome: str) -> List[JobRecord]:
        return list(self._by_outcome.get(outcome, ()))

    @property
    def completed(self) -> List[JobRecord]:
        return self.by_outcome("completed")

    @property
    def failed(self) -> List[JobRecord]:
        return self.by_outcome("failed")

    @property
    def rejected(self) -> List[JobRecord]:
        return self.by_outcome("rejected")

    @property
    def throughput(self) -> float:
        """Completed jobs per virtual second.

        A zero-duration run (every job rejected at t=0, or an empty
        stream) has no meaningful rate: returns 0.0 rather than
        dividing by zero.
        """
        if self.elapsed <= 0:
            return 0.0
        return len(self.completed) / self.elapsed

    def queue_wait_percentile(self, q: float) -> float:
        """Exact queue-wait percentile (``q`` in [0, 1]) over completed
        and failed jobs — the latency an *admitted* job experienced.

        Raises :class:`~repro.util.errors.PercentileError` (a subclass
        of both :class:`ConfigurationError` and :class:`ValueError` —
        the unified taxonomy shared with
        :func:`repro.obs.rollup.exact_percentile`) when ``q`` is
        outside [0, 1].  Returns 0.0 (by definition, not by
        measurement) when no job was admitted — an all-rejected or
        empty run has no wait samples.
        """
        if not 0.0 <= q <= 1.0:
            raise PercentileError(f"percentile q must be in [0, 1], got {q}")
        waits = [r.queue_wait for r in self.records if r.outcome != "rejected"]
        if not waits:
            return 0.0
        return exact_percentile(waits, q)

    def tenant_rollups(self) -> Dict[str, Any]:
        """Cross-tenant rollups of the ``service.*`` metrics."""
        return self.world.obs.rollup("tenant")

    def record_of(self, job_id: int) -> JobRecord:
        """The record for ``job_id`` (O(1) via the construction-time
        index).  When a duplicate submission was rejected, resolves to
        the admitted record, not the rejection stub."""
        try:
            return self._by_id[job_id]
        except KeyError:
            raise KeyError(f"no record for job {job_id}") from None

    # -- SLO / chargeback surface -------------------------------------------

    def incidents(self, findings: Optional[Sequence[Any]] = None) -> List[Dict[str, Any]]:
        """The incident timeline: burn-rate fire/resolve events merged
        with anomaly findings (``findings=None`` runs the stock anomaly
        rules over the world's spans and metrics)."""
        if findings is None:
            findings = self.world.obs.detect_anomalies().findings
        return incident_timeline(self.timeline, findings, end=self.elapsed)

    def chargeback(self, rates: Optional[CostRates] = None) -> ChargebackReport:
        """Per-tenant cost table from the metered ``service.*`` usage
        counters; rows sum to the whole-service totals row."""
        return chargeback_report(self.world.obs.registry, rates)

    def dashboard(
        self,
        title: str = "Cluster service dashboard",
        with_anomalies: bool = False,
        rates: Optional[CostRates] = None,
    ) -> str:
        """The world dashboard plus the service-level sections: live
        window summary, SLO error budgets with the incident timeline,
        and the per-tenant chargeback table."""
        from repro.obs.export import render_dashboard
        from repro.obs.slo import render_slo

        return render_dashboard(
            self.world.obs.registry,
            title,
            anomalies=self.world.obs.detect_anomalies() if with_anomalies else None,
            windows=self.windows,
            slo=render_slo(self.slo_report, self.timeline) if self.slos else None,
            chargeback=self.chargeback(rates),
        )

    def export(self, path: str, rates: Optional[CostRates] = None) -> Dict[str, Any]:
        """Write a JSON export that ``python -m repro.obs slo`` can
        replay offline; returns the exported document."""
        doc = {
            "elapsed": self.elapsed,
            "records": [
                {
                    "job_id": r.job_id,
                    "tenant": r.tenant,
                    "kind": r.kind,
                    "outcome": r.outcome,
                    "submitted": r.submitted,
                    "started": r.started,
                    "finished": r.finished,
                    "queue_wait": r.queue_wait,
                    "service_time": r.service_time,
                }
                for r in self.records
            ],
            "slos": [s.to_dict() for s in self.slos],
            "alerts": [a.to_dict() for a in self.alerts],
            "timeline": list(self.timeline),
            "slo_report": [s.to_dict() for s in self.slo_report],
            "chargeback": self.chargeback(rates).to_dict(),
            "windows": self.windows,
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
        return doc


@dataclasses.dataclass
class _Pending:
    """A queued job plus its resolved program."""

    req: JobRequest
    submitted: float
    #: admission sequence number — the FIFO/priority tiebreaker
    seq: int
    program: Any
    args: Tuple[Any, ...]
    segment_size: int


class _RunningJob:
    """Shared state between a job's rank tasks and its reaper."""

    def __init__(self, pend: _Pending, view: TenantView, runtime, started: float) -> None:
        self.pend = pend
        self.view = view
        self.runtime = runtime
        self.started = started
        self.queue_wait = started - pend.submitted
        self.expected = view.nranks
        self.results: Dict[int, Any] = {}
        self.finished = 0
        self.error: Optional[BaseException] = None
        self.done = Future(view.sim, description=f"job{pend.req.job_id}-done")
        self.tasks: List[Any] = []


class ClusterService:
    """Admission control + gang placement + per-tenant isolation.

    Single-use like the world it drives: :meth:`run` consumes the
    world's one simulation.  The scheduler is a simulated task; it
    wakes on arrivals and completions (a pending-kick flag makes the
    wakeup race-free under the one-runnable-task discipline) and
    dispatches strictly in policy order — no backfilling, so placement
    is a pure function of the admitted sequence.
    """

    def __init__(self, world: World, config: Optional[ServiceConfig] = None) -> None:
        self.world = world
        self.config = config or ServiceConfig()
        if self.config.policy not in ("fifo", "priority"):
            raise ConfigurationError(
                f"unknown policy {self.config.policy!r} (fifo | priority)"
            )
        if self.config.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1")
        self._total_nodes = world.topology.num_nodes
        self._free_nodes: List[int] = list(range(self._total_nodes))
        self._queue: List[_Pending] = []
        self._running: Dict[int, _RunningJob] = {}
        self._records: List[JobRecord] = []
        self._tenant_obs: Dict[str, Observability] = {}
        self._arrivals_done = False
        self._kick: Optional[Future] = None
        self._kick_pending = False
        self._seq = 0
        self._used = False
        obs = world.obs
        self._c_jobs = obs.counter(
            "service.jobs", "jobs by tenant/kind/outcome"
        )
        self._h_wait = obs.histogram(
            "service.queue_wait_seconds", "admission-to-start wait"
        )
        self._h_service = obs.histogram(
            "service.service_seconds", "start-to-teardown runtime"
        )
        self._g_depth = obs.gauge("service.queue_depth", "jobs waiting")
        self._g_busy = obs.gauge("service.nodes_busy", "nodes placed")
        self._c_leaked = obs.counter(
            "service.leaked_bytes", "segment bytes leaked by failed jobs"
        )
        self._c_gpu = obs.counter(
            "service.gpu_seconds", "device-seconds held per tenant/kind"
        )
        self._c_net = obs.counter(
            "service.net_bytes", "fabric bytes moved per tenant"
        )
        #: last seen cumulative rma.bytes per tenant registry, so each
        #: teardown meters only the delta since the tenant's previous
        #: teardown (tenant totals stay exact even with concurrent
        #: same-tenant gangs sharing one tenant registry)
        self._net_baseline: Dict[str, float] = {}
        slos = self.config.slos
        self.slos: Tuple[SLO, ...] = (
            default_service_slos() if slos is None else tuple(slos)
        )
        self._timeseries: Optional[TimeSeries] = None
        self._tracker: Optional[SloTracker] = None
        if self.slos:
            label_keys = {"tenant"}
            for slo in self.slos:
                label_keys.update(slo.required_labels())
            self._timeseries = TimeSeries(
                clock=lambda: world.sim.now,
                spec=self.config.windows or WindowSpec(width=100e-6, history=64),
                group_by=tuple(sorted(label_keys)),
                metrics=("service.",),
            )
            self._timeseries.attach(obs.registry)
            self._tracker = SloTracker(self.slos, self._timeseries)

    # -- entry point ---------------------------------------------------------

    def run(self, jobs: Sequence[JobRequest]) -> ServiceResult:
        """Run the job stream to completion and return the records."""
        if self._used:
            raise ConfigurationError("service is single-use (like its world)")
        self._used = True
        if self.world.sim.closed:
            raise ConfigurationError(
                "world is single-use and already consumed; build a fresh "
                "World for each ClusterService"
            )
        stream = sorted(jobs, key=lambda r: (r.arrival, r.job_id))
        self.world.sim.spawn(self._arrivals, tuple(stream), name="svc-arrivals")
        self.world.sim.spawn(self._scheduler, name="svc-scheduler")
        elapsed = self.world.sim.run()
        alerts: List[Alert] = []
        timeline: List[Dict[str, Any]] = []
        slo_report: List[SloStatus] = []
        windows: Optional[Dict[str, Any]] = None
        if self._tracker is not None:
            self._tracker.finish(elapsed)
            alerts = list(self._tracker.alerts)
            timeline = list(self._tracker.timeline)
            slo_report = self._tracker.report(elapsed)
            windows = self._timeseries.snapshot()
            self._timeseries.detach(self.world.obs.registry)
        return ServiceResult(
            records=list(self._records),
            elapsed=elapsed,
            world=self.world,
            tenant_obs=dict(self._tenant_obs),
            slos=self.slos,
            alerts=alerts,
            timeline=timeline,
            slo_report=slo_report,
            windows=windows,
        )

    # -- arrivals ------------------------------------------------------------

    def _arrivals(self, stream: Tuple[JobRequest, ...]) -> None:
        sim = self.world.sim
        for req in stream:
            if req.arrival > sim.now:
                sim.sleep(req.arrival - sim.now)
            self._submit(req)
        self._arrivals_done = True
        self._kick_scheduler()

    def _reject(self, req: JobRequest, reason: str) -> None:
        now = self.world.sim.now
        self._c_jobs.inc(tenant=req.tenant, kind=req.kind, outcome="rejected")
        self._records.append(
            JobRecord(
                job_id=req.job_id,
                tenant=req.tenant,
                kind=req.kind,
                outcome="rejected",
                submitted=now,
                started=None,
                finished=now,
                queue_wait=0.0,
                service_time=0.0,
                nodes=(),
                reason=reason,
            )
        )
        self._evaluate_slos()

    def _submit(self, req: JobRequest) -> None:
        if req.job_id in self._running or any(
            p.req.job_id == req.job_id for p in self._queue
        ):
            self._reject(req, "duplicate job_id")
            return
        if req.nodes > self._total_nodes:
            self._reject(req, "infeasible")
            return
        try:
            # Validates gang shape and problem size up front, so a bad
            # request bounces at admission instead of mid-placement.
            TenantView(
                self.world,
                range(req.nodes),
                req.ranks_per_node,
                req.devices_per_rank,
                obs=Observability(enabled=False),
                tenant=req.tenant,
            )
            program, args, segment_size = build_job(req, req.nranks)
        except ConfigurationError:
            self._reject(req, "infeasible")
            return
        if len(self._queue) >= self.config.queue_limit:
            self._reject(req, "queue_full")
            return
        self._queue.append(
            _Pending(
                req=req,
                submitted=self.world.sim.now,
                seq=self._seq,
                program=program,
                args=args,
                segment_size=segment_size,
            )
        )
        self._seq += 1
        self._g_depth.set(len(self._queue))
        self._kick_scheduler()

    # -- live SLO evaluation -------------------------------------------------

    def _evaluate_slos(self) -> None:
        """Poke the burn-rate tracker at the current sim time.  Pure
        computation on the window ring — no simulated events are
        created, so enabling SLOs never perturbs scheduling or timing
        (the regress gate holds bit-identical with SLOs on or off)."""
        if self._tracker is not None:
            self._tracker.evaluate(self.world.sim.now)

    # -- scheduler -----------------------------------------------------------

    def _kick_scheduler(self) -> None:
        self._kick_pending = True
        if self._kick is not None and not self._kick.fired:
            self._kick.fire()

    def _wait_kick(self) -> None:
        # The pending flag closes the classic lost-wakeup window: a
        # kick raised while the scheduler was dispatching (which can
        # yield inside runtime setup) is consumed here instead of lost.
        if self._kick_pending:
            self._kick_pending = False
            return
        self._kick = Future(self.world.sim, description="svc-kick")
        self._kick.wait()
        self._kick = None
        self._kick_pending = False

    def _scheduler(self) -> None:
        while True:
            self._dispatch_all()
            if self._arrivals_done and not self._queue and not self._running:
                return
            self._wait_kick()

    def _pick(self) -> int:
        if self.config.policy == "fifo":
            return 0
        return min(
            range(len(self._queue)),
            key=lambda i: (-self._queue[i].req.priority, self._queue[i].seq),
        )

    def _dispatch_all(self) -> None:
        while self._queue:
            index = self._pick()
            pend = self._queue[index]
            if pend.req.nodes > len(self._free_nodes):
                # Strict policy order: the chosen job waits for nodes
                # rather than being backfilled around, keeping
                # placement a pure function of the admitted sequence.
                break
            self._queue.pop(index)
            self._g_depth.set(len(self._queue))
            self._launch(pend)

    def _tenant_observability(self, tenant: str) -> Observability:
        if tenant not in self._tenant_obs:
            obs = Observability()
            obs.bind_clock(lambda: self.world.sim.now)
            self._tenant_obs[tenant] = obs
        return self._tenant_obs[tenant]

    def _launch(self, pend: _Pending) -> None:
        from repro.core.runtime import DiompParams, DiompRuntime

        req = pend.req
        sim = self.world.sim
        nodes = tuple(self._free_nodes[: req.nodes])
        del self._free_nodes[: req.nodes]
        self._g_busy.set(self._total_nodes - len(self._free_nodes))
        view = TenantView(
            self.world,
            nodes,
            req.ranks_per_node,
            req.devices_per_rank,
            obs=self._tenant_observability(req.tenant),
            tenant=req.tenant,
        )
        if req.faults is not None:
            view.install_fault_plan(req.faults)
        runtime = DiompRuntime(
            view,
            DiompParams(
                segment_size=pend.segment_size,
                host_segment_size=self.config.host_segment_size,
            ),
        )
        run = _RunningJob(pend, view, runtime, started=sim.now)
        self._running[req.job_id] = run
        self._h_wait.observe(run.queue_wait, tenant=req.tenant, kind=req.kind)
        self._evaluate_slos()
        run.tasks = [
            sim.spawn(
                self._rank_body,
                run,
                ctx,
                name=f"job{req.job_id}-{req.tenant}-r{ctx.rank}",
            )
            for ctx in view.ranks
        ]
        sim.spawn(self._reaper, run, name=f"job{req.job_id}-reaper")

    # -- job lifecycle -------------------------------------------------------

    def _rank_body(self, run: _RunningJob, ctx: RankContext) -> None:
        try:
            result = run.pend.program(ctx, *run.pend.args)
        except Exception as exc:  # noqa: BLE001 - contained, job marked failed
            # First error wins; the reaper kills the surviving gang
            # tasks (a partial gang would deadlock on its barriers).
            if run.error is None:
                run.error = exc
                if not run.done.fired:
                    run.done.fire()
            return
        run.results[ctx.rank] = result
        run.finished += 1
        if run.finished == run.expected and not run.done.fired:
            run.done.fire()

    def _reaper(self, run: _RunningJob) -> None:
        run.done.wait()
        if run.error is not None:
            for task in run.tasks:
                if not task.finished:
                    task.kill()
        self._teardown(run)

    def _teardown(self, run: _RunningJob) -> None:
        req = run.pend.req
        sim = self.world.sim
        run.view.restore()
        outcome = "completed" if run.error is None else "failed"
        if run.error is None:
            # Hand the gang's device memory back so the nodes are
            # genuinely reusable (reservation release, not address
            # recycling — see DeviceMemorySpace.release).
            for seg in run.runtime.segments.values():
                seg.release()
        else:
            # A killed gang may still have transfer completions in
            # flight; leaking the segments keeps those landings on
            # live (if freed-flagged) memory instead of corrupting a
            # successor's reservation.  Leaks are metered, not hidden.
            leaked = sum(
                seg.size for seg in run.runtime.segments.values() if not seg.released
            )
            self._c_leaked.inc(leaked, tenant=req.tenant)
        self._free_nodes.extend(run.view.nodes)
        self._free_nodes.sort()
        self._g_busy.set(self._total_nodes - len(self._free_nodes))
        service_time = sim.now - run.started
        self._h_service.observe(service_time, tenant=req.tenant, kind=req.kind)
        self._c_jobs.inc(tenant=req.tenant, kind=req.kind, outcome=outcome)
        # Chargeback metering: the gang held its devices for the whole
        # service time (success or failure), and the tenant registry's
        # cumulative fabric-byte counter advanced by this job's traffic
        # (delta since the tenant's previous teardown).
        self._c_gpu.inc(
            len(run.view.devices) * service_time, tenant=req.tenant, kind=req.kind
        )
        tenant_bytes = run.view.obs.value("rma.bytes")
        prev_bytes = self._net_baseline.get(req.tenant, 0.0)
        if tenant_bytes > prev_bytes:
            self._c_net.inc(tenant_bytes - prev_bytes, tenant=req.tenant)
            self._net_baseline[req.tenant] = tenant_bytes
        self._evaluate_slos()
        self._records.append(
            JobRecord(
                job_id=req.job_id,
                tenant=req.tenant,
                kind=req.kind,
                outcome=outcome,
                submitted=run.pend.submitted,
                started=run.started,
                finished=sim.now,
                queue_wait=run.queue_wait,
                service_time=service_time,
                nodes=run.view.nodes,
                results=(
                    [run.results.get(r) for r in range(run.expected)]
                    if run.error is None
                    else None
                ),
                error=repr(run.error) if run.error is not None else None,
            )
        )
        del self._running[req.job_id]
        self._kick_scheduler()
