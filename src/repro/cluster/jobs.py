"""Job requests and seeded job streams for the cluster service.

A :class:`JobRequest` names one tenant's program — a Cannon ring
multiply, a Minimod stencil propagation, or an OMPCCL allreduce loop —
plus its gang shape (nodes x ranks-per-node x devices-per-rank),
arrival time, priority, and an optional per-tenant
:class:`~repro.faults.FaultPlan`.  :func:`build_job` turns a request
into the ``(program, args, segment_size)`` triple the service launches
on a :class:`~repro.cluster.service.TenantView`.

:func:`poisson_jobs` generates the mixed workload every benchmark and
test uses: seeded exponential interarrival times over a kind/tenant/
gang-size mix.  The generator runs entirely *before* the simulation
(one host-side ``random.Random(seed)``), so the same seed always
yields the same stream — and, because the scheduler itself is
deterministic, the same placement, queue order, and elapsed times.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.world import RankContext
from repro.util.errors import ConfigurationError
from repro.util.units import KiB

#: job kinds the service knows how to build
JOB_KINDS: Tuple[str, ...] = ("cannon", "minimod", "allreduce")


@dataclasses.dataclass(frozen=True)
class JobRequest:
    """One tenant's job: what to run, when, and on how much hardware."""

    job_id: int
    tenant: str
    #: one of :data:`JOB_KINDS`
    kind: str
    #: virtual arrival time (seconds since service start)
    arrival: float = 0.0
    #: gang shape: whole nodes, ranks per node, devices per rank
    nodes: int = 1
    ranks_per_node: int = 2
    devices_per_rank: int = 1
    #: higher runs first under the "priority" policy; ties are FIFO
    priority: int = 0
    #: problem scale: Cannon matrix N / Minimod nx / allreduce bytes
    size: int = 0
    #: time steps (Minimod) or collective rounds (allreduce)
    steps: int = 2
    #: real numerics (verifiable results) vs virtual timing-only
    execute: bool = True
    #: per-tenant fault plan, armed on this job's gang only
    faults: Optional[Any] = None

    @property
    def nranks(self) -> int:
        return self.nodes * self.ranks_per_node


@dataclasses.dataclass(frozen=True)
class AllreduceJobConfig:
    """The collective job: ``rounds`` allreduces over one buffer."""

    nbytes: int = 64 * KiB
    rounds: int = 2
    execute: bool = True
    dtype: type = np.float32


def allreduce_job(ctx: RankContext, cfg: AllreduceJobConfig) -> Dict[str, object]:
    """Symmetric alloc + ``rounds`` OMPCCL allreduces + checksum."""
    diomp = ctx.diomp
    if diomp is None:
        raise ConfigurationError("allreduce_job needs a DiompRuntime installed")
    virtual = not cfg.execute
    send = diomp.alloc(cfg.nbytes, virtual=virtual)
    recv = diomp.alloc(cfg.nbytes, virtual=virtual)
    if cfg.execute:
        send.typed(cfg.dtype)[:] = float(ctx.rank + 1)
    diomp.barrier()
    t0 = ctx.sim.now
    for _round in range(cfg.rounds):
        diomp.allreduce(send, recv, dtype=cfg.dtype)
    out: Dict[str, object] = {"elapsed": ctx.sim.now - t0, "rank": ctx.rank}
    if cfg.execute:
        # sum of (r + 1) over the gang — the cross-rank checksum.
        out["sum"] = float(recv.typed(cfg.dtype)[0])
    diomp.barrier()
    return out


def default_size(kind: str, nranks: int) -> int:
    """A small valid problem size for ``kind`` on an ``nranks`` gang."""
    if kind == "cannon":
        return 4 * nranks  # N must divide by the gang size
    if kind == "minimod":
        return 4 * nranks  # local slab of 4 planes = the stencil radius
    if kind == "allreduce":
        return 64 * KiB
    raise ConfigurationError(f"unknown job kind {kind!r} (one of {JOB_KINDS})")


def build_job(
    req: JobRequest, nranks: int
) -> Tuple[Callable[..., Any], Tuple[Any, ...], int]:
    """Resolve a request into ``(program, args, segment_size)``.

    ``segment_size`` is the per-device global-segment reservation the
    job's :class:`~repro.core.runtime.DiompRuntime` needs (same sizing
    rule as the standalone app drivers).
    """
    size = req.size or default_size(req.kind, nranks)
    if req.kind == "cannon":
        from repro.apps.cannon import CannonConfig, cannon_diomp

        cfg = CannonConfig(n=size, execute=req.execute)
        stripe_bytes = cfg.stripe(nranks) * cfg.n * cfg.itemsize
        return cannon_diomp, (cfg,), 6 * stripe_bytes + (1 << 20)
    if req.kind == "minimod":
        from repro.apps.minimod import MinimodConfig, _field_bytes, minimod_diomp

        cfg = MinimodConfig(
            nx=size, ny=8, nz=8, steps=req.steps, execute=req.execute
        )
        field = _field_bytes(cfg, cfg.local_nx(nranks))
        return minimod_diomp, (cfg,), 6 * field + (1 << 20)
    if req.kind == "allreduce":
        cfg = AllreduceJobConfig(
            nbytes=size, rounds=req.steps, execute=req.execute
        )
        return allreduce_job, (cfg,), 4 * size + (1 << 20)
    raise ConfigurationError(f"unknown job kind {req.kind!r} (one of {JOB_KINDS})")


def poisson_jobs(
    seed: int,
    count: int,
    rate: float,
    kinds: Sequence[str] = JOB_KINDS,
    tenants: Sequence[str] = ("acme", "globex", "initech"),
    node_choices: Sequence[int] = (1, 2),
    ranks_per_node: int = 2,
    devices_per_rank: int = 1,
    priorities: Sequence[int] = (0,),
    execute: bool = True,
    steps: int = 2,
) -> Tuple[JobRequest, ...]:
    """A seeded Poisson job stream: ``count`` jobs at ``rate`` jobs/s.

    Interarrival times are exponential; kind, gang width, and priority
    are drawn uniformly; tenants rotate round-robin so every tenant
    appears.  All randomness comes from one ``random.Random(seed)``
    consumed *before* the simulation starts, so streams — and through
    the deterministic scheduler, whole service runs — replay exactly.
    """
    if rate <= 0:
        raise ConfigurationError(f"arrival rate must be positive, got {rate}")
    if count < 0:
        raise ConfigurationError(f"job count must be >= 0, got {count}")
    rng = random.Random(seed)
    now = 0.0
    jobs = []
    for job_id in range(count):
        now += rng.expovariate(rate)
        kind = rng.choice(list(kinds))
        nodes = rng.choice(list(node_choices))
        jobs.append(
            JobRequest(
                job_id=job_id,
                tenant=tenants[job_id % len(tenants)],
                kind=kind,
                arrival=now,
                nodes=nodes,
                ranks_per_node=ranks_per_node,
                devices_per_rank=devices_per_rank,
                priority=rng.choice(list(priorities)),
                size=default_size(kind, nodes * ranks_per_node),
                steps=steps,
                execute=execute,
            )
        )
    return tuple(jobs)
