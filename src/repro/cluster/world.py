"""World construction and rank placement."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.device import Device, PeerAccessManager
from repro.hardware.platforms import PlatformSpec
from repro.hardware.topology import ClusterTopology, DeviceId
from repro.network import Fabric
from repro.obs import Observability
from repro.sim import Barrier, Simulator, Tracer
from repro.util.errors import ConfigurationError


class RankContext:
    """Everything one rank sees: its placement and its devices.

    Communication layers attach their per-rank endpoints onto this
    object at world construction (``ctx.mpi``, ``ctx.diomp``, ...), so
    application code receives a single handle.
    """

    def __init__(self, world: "World", rank: int, node: int, devices: List[Device]) -> None:
        self.world = world
        self.rank = rank
        self.node = node
        self.devices = devices
        #: populated by the communication layers when installed
        self.mpi = None
        self.diomp = None

    @property
    def nranks(self) -> int:
        return len(self.world.ranks)

    @property
    def sim(self) -> Simulator:
        return self.world.sim

    @property
    def device(self) -> Device:
        """The rank's primary device (first bound GPU)."""
        return self.devices[0]

    @property
    def host(self) -> DeviceId:
        return self.world.topology.host(self.node)

    @property
    def host_threads(self) -> int:
        """CPU threads this rank's process may use (the node's cores
        split across its ranks — §3.3's deployment trade-off)."""
        cores = self.world.platform.node.cpu.cores
        return max(1, cores // self.world.ranks_per_node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        devs = ",".join(str(d.device_id) for d in self.devices)
        return f"<RankContext rank={self.rank} node={self.node} devices=[{devs}]>"


class World:
    """A fully wired simulated cluster plus rank placement.

    ``ranks_per_node`` ranks are placed on each node; each rank is
    bound to ``devices_per_rank`` consecutive GPUs.  The product must
    not exceed the node's GPU count — exactly the constraint a real
    job launcher enforces.
    """

    def __init__(
        self,
        platform: PlatformSpec,
        num_nodes: int,
        ranks_per_node: Optional[int] = None,
        devices_per_rank: int = 1,
        tracer: Optional[Tracer] = None,
        obs: Optional[Observability] = None,
        faults=None,
        analytic: bool = False,
    ) -> None:
        if devices_per_rank <= 0:
            raise ConfigurationError("devices_per_rank must be positive")
        gpn = platform.gpus_per_node
        if ranks_per_node is None:
            ranks_per_node = gpn // devices_per_rank
        if ranks_per_node <= 0:
            raise ConfigurationError("ranks_per_node must be positive")
        if ranks_per_node * devices_per_rank > gpn:
            raise ConfigurationError(
                f"{ranks_per_node} ranks x {devices_per_rank} devices "
                f"exceed {gpn} GPUs per node"
            )
        self.platform = platform
        self.sim = Simulator()
        # Note: `tracer or Tracer()` would discard a provided-but-empty
        # tracer (Tracer defines __len__), so test identity explicitly.
        self.tracer = tracer if tracer is not None else Tracer()
        self.tracer.bind_clock(lambda: self.sim.now)
        #: the world's observability layer (metrics + span profiler);
        #: pass Observability(enabled=False) to turn it off wholesale
        self.obs = obs if obs is not None else Observability()
        self.obs.bind_clock(lambda: self.sim.now)
        engine = getattr(self.obs, "engine", None)
        if engine is not None and engine.enabled:
            # Engine self-profiling: the simulator accounts host
            # wall-clock per dispatch into obs.engine (sim.* gauges).
            self.sim.profiler = engine
        self.topology: ClusterTopology = platform.cluster(num_nodes)
        self.fabric = Fabric(self.sim, self.topology, tracer=self.tracer)
        self.peer_access = PeerAccessManager(self.topology)
        #: one Device per physical GPU, keyed by DeviceId
        self.devices: Dict[DeviceId, Device] = {
            dev_id: Device(self.sim, dev_id, platform.node.gpu, tracer=self.tracer)
            for dev_id in self.topology.all_gpus()
        }
        self.ranks_per_node = ranks_per_node
        self.devices_per_rank = devices_per_rank
        self.ranks: List[RankContext] = []
        for node in range(num_nodes):
            for lr in range(ranks_per_node):
                first = lr * devices_per_rank
                bound = [
                    self.devices[self.topology.gpu(node, first + d)]
                    for d in range(devices_per_rank)
                ]
                self.ranks.append(RankContext(self, len(self.ranks), node, bound))
        #: device -> owning rank, built once (device_owner sits on the
        #: IPC bookkeeping path; a linear scan there is O(ranks*devices))
        self._device_owner: Dict[DeviceId, RankContext] = {
            dev.device_id: ctx for ctx in self.ranks for dev in ctx.devices
        }
        #: world-wide rendezvous used by runtimes for init/teardown
        self.global_barrier = Barrier(self.sim, len(self.ranks), name="world-barrier")
        #: the installed FaultPlan, or None (perfect hardware)
        self.fault_plan = None
        if faults is not None:
            self.install_fault_plan(faults)
        #: analytic-rank mode: allocations are timing-only (virtual)
        self.analytic = False
        if analytic:
            self.enable_analytic()

    def enable_analytic(self) -> None:
        """Switch the world to analytic-rank mode.

        Every device allocation — direct ``malloc`` or through the
        DiOMP symmetric/asymmetric allocators — becomes *virtual*:
        address-space bookkeeping and timing are exact, but no numpy
        backing is materialized and collective/RMA data application is
        skipped.  This is the data-free sweep mode for 1024-rank
        scaling runs, where real buffers would cost gigabytes without
        ever being inspected.  Idempotent; must be enabled before the
        program allocates.
        """
        self.analytic = True
        for dev in self.devices.values():
            dev.analytic = True

    def install_fault_plan(self, plan) -> None:
        """Arm a :class:`~repro.faults.FaultPlan` on every injection
        site: the fabric transfer path (which covers both conduits and
        intra-node RMA) and device stream synchronization.  Conduits
        check ``world.fault_plan`` at issue time to switch their
        retry/backoff recovery on."""
        plan.bind(self.obs)
        self.fault_plan = plan
        self.fabric.faults = plan
        for dev in self.devices.values():
            # Streams (default and created, past and future) read the
            # device's plan live at draw time — see Stream.faults.
            dev.faults = plan

    @property
    def nranks(self) -> int:
        return len(self.ranks)

    def device_owner(self, dev_id: DeviceId) -> RankContext:
        """The rank a GPU is bound to (for IPC-path bookkeeping)."""
        try:
            return self._device_owner[dev_id]
        except KeyError:
            raise ConfigurationError(
                f"device {dev_id} is not bound to any rank"
            ) from None

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        return self.ranks[rank_a].node == self.ranks[rank_b].node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<World platform={self.platform.name} nodes={self.topology.num_nodes} "
            f"ranks={self.nranks} devices_per_rank={self.devices_per_rank}>"
        )
