"""The ``mpiexec`` analogue: run one program on every rank.

``run_spmd(world, program, *args)`` spawns ``program(ctx, *args)`` as a
simulated task per rank, drives the simulation to completion, and
returns per-rank results together with the elapsed virtual time — the
number every benchmark reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.world import World


@dataclasses.dataclass
class SpmdConfig:
    """Per-run knobs orthogonal to the world's hardware shape."""

    #: fault-injection plan installed on the world before launch
    #: (:class:`~repro.faults.FaultPlan`); None = perfect hardware
    faults: Optional[Any] = None


@dataclasses.dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    #: per-rank return values, indexed by rank
    results: List[Any]
    #: virtual seconds from launch to the last rank finishing
    elapsed: float
    #: the world, for post-run inspection (fabric stats, traces)
    world: World
    #: metrics snapshot taken when the run finished (repro.obs)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def critical_path(self):
        """Cross-rank critical-path summary of this run (computed lazily).

        See :mod:`repro.obs.critical_path`; the breakdown's category
        times sum to the critical-path length.
        """
        from repro.obs.critical_path import critical_path

        return critical_path(self.world.obs.spans)


def run_spmd(
    world: World,
    program: Callable[..., Any],
    *args: Any,
    name: str = "rank",
    config: Optional[SpmdConfig] = None,
) -> SpmdResult:
    """Run ``program(ctx, *args)`` on every rank of ``world``.

    The program receives its :class:`RankContext` first.  Any exception
    in any rank aborts the run and propagates to the caller.  The world
    is single-use (its simulator cannot restart).
    """
    if config is not None and config.faults is not None:
        world.install_fault_plan(config.faults)
    tasks = [
        world.sim.spawn(program, ctx, *args, name=f"{name}{ctx.rank}")
        for ctx in world.ranks
    ]
    elapsed = world.sim.run()
    return SpmdResult(
        results=[t.result for t in tasks],
        elapsed=elapsed,
        world=world,
        metrics=world.obs.snapshot() if world.obs.registry.enabled else None,
    )
