"""The ``mpiexec`` analogue: run one program on every rank.

``run_spmd(world, program, *args)`` spawns ``program(ctx, *args)`` as a
simulated task per rank, drives the simulation to completion, and
returns per-rank results together with the elapsed virtual time — the
number every benchmark reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

from repro.cluster.world import World
from repro.util.errors import ConfigurationError


@dataclasses.dataclass
class TelemetryConfig:
    """What telemetry one SPMD run collects and attaches to its result.

    Defaults match the pre-telemetry behavior (engine stats published,
    nothing else): rollups and anomaly detection cost a pass over the
    registry/spans at run end, so they are opt-in per run.
    """

    #: span retention budget installed on the world's profiler before
    #: launch (:class:`~repro.obs.sampling.SpanBudget`); None keeps the
    #: store's existing budget
    span_budget: Optional[Any] = None
    #: export the engine profiler's numbers as ``sim.*`` gauges after
    #: the run (events/sec, wall per sim-second, per-phase wall)
    publish_engine: bool = True
    #: attach cross-rank metric rollups to the result
    rollups: bool = False
    #: run the anomaly rules and attach the report to the result;
    #: True runs the default rule set, a sequence of rules (possibly
    #: empty) overrides it, False/None disables detection
    anomalies: Any = False


@dataclasses.dataclass
class SpmdConfig:
    """Per-run knobs orthogonal to the world's hardware shape."""

    #: fault-injection plan installed on the world before launch
    #: (:class:`~repro.faults.FaultPlan`); None = perfect hardware
    faults: Optional[Any] = None
    #: telemetry collection knobs (:class:`TelemetryConfig`)
    telemetry: Optional[TelemetryConfig] = None
    #: analytic-rank mode: force every allocation virtual for data-free
    #: sweeps (see :meth:`~repro.cluster.world.World.enable_analytic`)
    analytic: bool = False


@dataclasses.dataclass
class SpmdResult:
    """Outcome of one SPMD run."""

    #: per-rank return values, indexed by rank
    results: List[Any]
    #: virtual seconds from launch to the last rank finishing
    elapsed: float
    #: the world, for post-run inspection (fabric stats, traces)
    world: World
    #: metrics snapshot taken when the run finished (repro.obs)
    metrics: Optional[Dict[str, Any]] = None
    #: cross-rank metric rollups (TelemetryConfig.rollups)
    rollups: Optional[Dict[str, Any]] = None
    #: anomaly report (TelemetryConfig.anomalies)
    anomalies: Optional[Any] = None

    @property
    def critical_path(self):
        """Cross-rank critical-path summary of this run (computed lazily).

        See :mod:`repro.obs.critical_path`; the breakdown's category
        times sum to the critical-path length.
        """
        from repro.obs.critical_path import critical_path

        return critical_path(self.world.obs.spans)


def run_spmd(
    world: World,
    program: Callable[..., Any],
    *args: Any,
    name: str = "rank",
    config: Optional[SpmdConfig] = None,
) -> SpmdResult:
    """Run ``program(ctx, *args)`` on every rank of ``world``.

    The program receives its :class:`RankContext` first.  Any exception
    in any rank aborts the run and propagates to the caller.  The world
    is single-use (its simulator cannot restart).
    """
    if world.sim.closed:
        raise ConfigurationError(
            "world is single-use; the service layer multiplexes jobs "
            "(see repro.cluster.service.ClusterService)"
        )
    if config is not None and config.faults is not None:
        world.install_fault_plan(config.faults)
    if config is not None and config.analytic:
        world.enable_analytic()
    telemetry = (config.telemetry if config is not None else None) or TelemetryConfig()
    if telemetry.span_budget is not None:
        world.obs.set_span_budget(telemetry.span_budget)
    tasks = [
        world.sim.spawn(program, ctx, *args, name=f"{name}{ctx.rank}")
        for ctx in world.ranks
    ]
    elapsed = world.sim.run()
    obs = world.obs
    if telemetry.publish_engine:
        obs.publish_engine()
    rollups = obs.rollup() if telemetry.rollups else None
    anomalies = None
    # Like the Tracer identity check in World.__init__: a truthiness
    # test would silently disable detection for an explicit-but-empty
    # rule sequence, so test against the sentinel values instead.
    if telemetry.anomalies is not False and telemetry.anomalies is not None:
        rules = telemetry.anomalies if telemetry.anomalies is not True else None
        anomalies = obs.detect_anomalies(rules=rules)
    return SpmdResult(
        results=[t.result for t in tasks],
        elapsed=elapsed,
        world=world,
        metrics=obs.snapshot() if obs.registry.enabled else None,
        rollups=rollups,
        anomalies=anomalies,
    )
