"""Uniform memory references for communication layers.

A :class:`MemRef` names a contiguous byte range living either in a
host's memory (a numpy array pinned to a node) or in device memory (a
:class:`~repro.device.DeviceBuffer` slice).  GASNet, GPI-2, mini-MPI
and OMPCCL all move data between MemRefs, so "CUDA-awareness" is
uniform: the fabric consults ``endpoint`` to pick the physical path
and ``gpu_memory`` to apply NIC quirks.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.device.memory import DeviceBuffer
from repro.hardware.topology import DeviceId
from repro.util.errors import CommunicationError


class MemRef:
    """A located, contiguous byte range (host or device)."""

    def __init__(
        self,
        endpoint: DeviceId,
        storage: Union[np.ndarray, DeviceBuffer],
        offset: int,
        nbytes: int,
    ) -> None:
        if offset < 0 or nbytes < 0:
            raise CommunicationError(f"bad memref range offset={offset} nbytes={nbytes}")
        total = storage.size if isinstance(storage, DeviceBuffer) else storage.nbytes
        if offset + nbytes > total:
            raise CommunicationError(
                f"memref range [{offset}, {offset + nbytes}) exceeds storage of {total} bytes"
            )
        self.endpoint = endpoint
        self.storage = storage
        self.offset = offset
        self.nbytes = nbytes

    # -- constructors -------------------------------------------------------

    @classmethod
    def host(cls, node: int, array: np.ndarray, offset: int = 0, nbytes: int = -1) -> "MemRef":
        """Reference into a host numpy array on ``node``."""
        if not isinstance(array, np.ndarray):
            raise CommunicationError(f"host memref needs a numpy array, got {type(array)}")
        if not array.flags["C_CONTIGUOUS"]:
            raise CommunicationError("host memref requires a C-contiguous array")
        if nbytes < 0:
            nbytes = array.nbytes - offset
        return cls(DeviceId("host", node, 0), array, offset, nbytes)

    @classmethod
    def device(cls, buffer: DeviceBuffer, offset: int = 0, nbytes: int = -1) -> "MemRef":
        """Reference into a device buffer."""
        dev_id = getattr(buffer.space, "device_id", None)
        if dev_id is None:
            raise CommunicationError(
                "device buffer's memory space is not bound to a DeviceId "
                "(allocate through a Device, not a bare DeviceMemorySpace)"
            )
        if nbytes < 0:
            nbytes = buffer.size - offset
        return cls(dev_id, buffer, offset, nbytes)

    # -- properties --------------------------------------------------------

    @property
    def is_device(self) -> bool:
        return self.endpoint.kind == "gpu"

    @property
    def is_virtual(self) -> bool:
        return isinstance(self.storage, DeviceBuffer) and self.storage.is_virtual

    def view(self) -> np.ndarray:
        """A uint8 numpy view of the referenced bytes (no copy)."""
        if isinstance(self.storage, DeviceBuffer):
            return self.storage.as_array(np.uint8, count=self.nbytes, offset=self.offset)
        flat = self.storage.reshape(-1).view(np.uint8)
        return flat[self.offset : self.offset + self.nbytes]

    def typed(self, dtype: np.dtype) -> np.ndarray:
        """A typed view of the referenced bytes."""
        dtype = np.dtype(dtype)
        if self.nbytes % dtype.itemsize:
            raise CommunicationError(
                f"range of {self.nbytes} bytes is not a multiple of {dtype} itemsize"
            )
        return self.view().view(dtype)

    def slice(self, offset: int, nbytes: int) -> "MemRef":
        """A sub-range of this reference."""
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise CommunicationError(
                f"slice [{offset}, {offset + nbytes}) exceeds memref of {self.nbytes} bytes"
            )
        return MemRef(self.endpoint, self.storage, self.offset + offset, nbytes)

    # -- data plane -----------------------------------------------------------

    def copy_from(self, src: "MemRef") -> None:
        """Copy ``src``'s bytes into this reference (sizes must match).

        Virtual/virtual copies are timing-only no-ops; mixing virtual
        and real endpoints is rejected so data is never silently lost.
        """
        if src.nbytes != self.nbytes:
            raise CommunicationError(
                f"size mismatch in copy: src={src.nbytes} dst={self.nbytes}"
            )
        if self.is_virtual and src.is_virtual:
            return
        if self.is_virtual or src.is_virtual:
            raise CommunicationError("cannot copy between real and virtual memory")
        self.view()[:] = src.view()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MemRef {self.endpoint} +{self.offset} {self.nbytes}B>"
