"""Lowering: one verified plan, three backends.

``lower_plan(plan, backend)`` returns a :class:`LoweredProgram` whose
``run(world)`` executes the plan on every rank of the world:

``"gasnet"`` / ``"gpi2"``
    The DiOMP runtime over the respective conduit.  Symmetric buffers
    become ``ompx_alloc`` allocations, puts/gets go through the
    one-sided RMA path and complete at ``ompx_fence``, notifies use
    ``gaspi_notify`` natively on GPI-2 and an active message on
    GASNet-EX, and ``plan.meta["pointer_prefetch"]`` (set by the
    prefetch pass) enables the runtime's bulk second-level-pointer
    prefetch.
``"mpi"``
    The MPI + OpenMP-target baseline.  Every one-sided op is rewritten
    into its two-sided SPMD mirror: an outgoing ``isend`` where this
    rank's guard holds, paired with an ``irecv`` posted wherever the
    *source* rank's guard holds (``Peer.source`` is the inverse rank
    expression — the verifier's cross-rank matching check is exactly
    the proof that this pairing is total).  Fences become ``Waitall``.

Lowering always verifies the plan first and refuses unsound plans with
:class:`~repro.util.errors.PlanVerificationError`.  Pass statistics
recorded by :func:`repro.plan.passes.optimize_plan` flow into the
world's metrics registry as ``plan.pass.rewrites`` counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.spmd import SpmdResult, run_spmd
from repro.plan.ir import Access, BufDecl, CommPlan, PlanOp, guard_holds
from repro.plan.verify import check_plan
from repro.util.errors import ConfigurationError

BACKENDS = ("gasnet", "gpi2", "mpi")

#: numpy reduction for CollSpec.op
_REDUCTIONS = {"sum": np.add, "max": np.maximum, "min": np.minimum}


class _Storage:
    """One allocated instance of a declared buffer, backend-agnostic."""

    def __init__(self, handle: Any, decl: BufDecl) -> None:
        self.handle = handle
        self.decl = decl

    def memref(self, offset: int, nbytes: int) -> MemRef:
        h = self.handle
        if hasattr(h, "memref"):  # GlobalBuffer
            return h.memref(offset, nbytes)
        if hasattr(h, "data"):  # AsymmetricBuffer
            return MemRef.device(h.data, offset=offset, nbytes=nbytes)
        return MemRef.device(h, offset=offset, nbytes=nbytes)  # DeviceBuffer

    def array(self, dtype) -> np.ndarray:
        h = self.handle
        if hasattr(h, "local"):  # GlobalBuffer
            return h.local.as_array(dtype)
        if hasattr(h, "data"):  # AsymmetricBuffer
            return h.data.as_array(dtype)
        return h.as_array(dtype)  # DeviceBuffer

    def rma_target(self) -> Any:
        """The handle shape the DiOMP RMA path addresses remotely."""
        return self.handle


class BufMap:
    """Per-rank mapping from plan buffer names to allocated storage."""

    def __init__(self, decls: Dict[str, BufDecl]) -> None:
        self._decls = decls
        self._storages: Dict[str, List[_Storage]] = {}

    def add(self, name: str, storages: List[_Storage]) -> None:
        self._storages[name] = storages

    def storage(self, name: str, rot: int = 0, step: int = 0) -> _Storage:
        decl = self._decls[name]
        return self._storages[name][decl.instance(rot, step)]

    def memref(self, acc: Access, step: int = 0) -> MemRef:
        return self.storage(acc.buf.name, acc.buf.rot, step).memref(
            acc.offset, acc.nbytes
        )

    def array(self, name: str, dtype, rot: int = 0, step: int = 0) -> np.ndarray:
        """Typed numpy view of one buffer instance (execute mode)."""
        return self.storage(name, rot, step).array(dtype)


class LoweredProgram:
    """A plan bound to one backend, ready to run on a world."""

    def __init__(self, plan: CommPlan, backend: str, nranks: int) -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown lowering backend {backend!r} (known: {BACKENDS})"
            )
        check_plan(plan, nranks)
        # Canonicalize: halo macros must become concrete puts whether
        # or not the optimization pipeline ran (no-op if it did).
        from repro.plan.passes import expand_halo

        plan, _ = expand_halo(plan)
        self.plan = plan
        self.backend = backend
        self.nranks = nranks

    # -- entry point ------------------------------------------------------

    def run(self, world, runtime=None, mpi=None) -> SpmdResult:
        """Execute the lowered plan on every rank of ``world``."""
        if world.nranks != self.nranks:
            raise ConfigurationError(
                f"plan {self.plan.name!r} was lowered for {self.nranks} "
                f"rank(s) but the world has {world.nranks}"
            )
        self._record_metrics(world)
        if self.backend == "mpi":
            from repro.mpi import MpiWorld

            mpi = mpi or MpiWorld(world)
            return run_spmd(world, self._mpi_program, mpi)
        if runtime is None:
            from repro.core.runtime import DiompParams, DiompRuntime

            runtime = DiompRuntime(
                world,
                DiompParams(
                    conduit=self.backend,
                    segment_size=self._segment_need(),
                    pointer_prefetch=bool(
                        self.plan.meta.get("pointer_prefetch", False)
                    ),
                ),
            )
        return run_spmd(world, self._diomp_program)

    def _segment_need(self) -> int:
        total = sum(b.nbytes * b.count for b in self.plan.buffers)
        return 3 * total + (1 << 20)

    def _record_metrics(self, world) -> None:
        stats = self.plan.meta.get("pass_stats") or {}
        if any(stats.values()):
            counter = world.obs.counter(
                "plan.pass.rewrites", "optimization-pass rewrites by plan/pass"
            )
            for key, val in sorted(stats.items()):
                if val:
                    counter.inc(val, plan=self.plan.name, rewrite=key)
        world.obs.gauge("plan.ops", "op count of the lowered plan").set(
            float(self.plan.op_count()), plan=self.plan.name, backend=self.backend
        )

    # -- shared per-rank helpers ------------------------------------------

    def _execute(self) -> bool:
        return bool(self.plan.meta.get("execute", False))

    def _compute(self, ctx, op: PlanOp, step: int, bufs: BufMap, state) -> None:
        if self._execute() and op.args_fn is not None:
            args = op.args_fn(ctx, bufs, step)
        else:
            args = ()
        stream = None
        if op.stream == "aux":
            if state.aux_stream is None:
                state.aux_stream = ctx.device.create_stream()
            stream = state.aux_stream
        fut = ctx.device.launch(op.kernel, *args, stream=stream, cost_args=())
        if op.sync:
            fut.wait()
        else:
            state.pending[op.op_id] = fut

    def _wait(self, op: PlanOp, state) -> None:
        fut = state.pending.pop(op.waits_for, None)
        if fut is not None:
            fut.wait()

    # -- DiOMP (GASNet-EX / GPI-2) lowering -------------------------------

    def _diomp_program(self, ctx) -> Dict[str, object]:
        plan = self.plan
        diomp = ctx.diomp
        if diomp is None:
            raise ConfigurationError(
                "plan lowering to a conduit needs a DiompRuntime installed"
            )
        execute = self._execute()
        virtual = not execute
        state = _RankState()
        has_notify = any(op.kind == "notify" for _, op in plan.all_ops())
        if has_notify and self.backend == "gasnet":
            diomp.client.register_handler("plan.notify", lambda _src, token: token)

        bufs = BufMap(plan.decls())
        for decl in plan.buffers:
            storages: List[_Storage] = []
            for _ in range(decl.count):
                if decl.kind == "symmetric":
                    handle = diomp.alloc(decl.nbytes, virtual=virtual)
                elif decl.kind == "asymmetric":
                    handle = diomp.alloc_asymmetric(decl.nbytes, virtual=virtual)
                else:
                    handle = diomp.segment(0).alloc_local(
                        decl.nbytes, virtual=virtual, label=decl.name
                    )
                storages.append(_Storage(handle, decl))
            bufs.add(decl.name, storages)
        if execute and plan.init_fn is not None:
            plan.init_fn(ctx, bufs)

        def run_op(op: PlanOp, step: int, steps: int) -> None:
            if op.kind == "fence":
                for fut in state.am_futures:
                    fut.wait()
                state.am_futures.clear()
                diomp.fence()
                return
            if op.kind == "barrier":
                diomp.barrier()
                return
            if op.kind == "wait":
                if guard_holds(op.guard, ctx.rank, ctx.nranks, step, steps):
                    self._wait(op, state)
                return
            if not guard_holds(op.guard, ctx.rank, ctx.nranks, step, steps):
                return
            if op.kind == "put":
                peer = op.peer.resolve(ctx.rank, ctx.nranks)
                target = bufs.storage(op.dst.buf.name, op.dst.buf.rot, step)
                diomp.put(
                    peer,
                    target.rma_target(),
                    bufs.memref(op.src, step),
                    target_offset=op.dst.offset,
                )
            elif op.kind == "get":
                peer = op.peer.resolve(ctx.rank, ctx.nranks)
                source = bufs.storage(op.src.buf.name, op.src.buf.rot, step)
                diomp.get(
                    peer,
                    source.rma_target(),
                    bufs.memref(op.dst, step),
                    target_offset=op.src.offset,
                )
            elif op.kind == "notify":
                peer = op.peer.resolve(ctx.rank, ctx.nranks)
                if self.backend == "gpi2":
                    diomp.client.notify(peer, op.token)
                else:
                    state.am_futures.append(
                        diomp.client.am_request(
                            peer, "plan.notify", op.token, payload_bytes=8
                        )
                    )
            elif op.kind == "allreduce":
                diomp.allreduce(
                    bufs.memref(op.coll.send, step),
                    bufs.memref(op.coll.recv, step),
                    dtype=op.coll.dtype,
                    op=_REDUCTIONS[op.coll.op],
                    algo=op.algo,
                )
            elif op.kind == "compute":
                self._compute(ctx, op, step, bufs, state)
            elif op.kind == "prefetch":
                pass  # realized at allocation time via pointer_prefetch
            else:  # pragma: no cover - verifier rejects unknown kinds
                raise ConfigurationError(f"cannot lower op kind {op.kind!r}")

        return self._drive(ctx, bufs, run_op)

    # -- MPI baseline lowering --------------------------------------------

    def _mpi_program(self, ctx, mpi) -> Dict[str, object]:
        from repro.mpi import collectives as mpi_coll
        from repro.mpi import waitall
        from repro.omptarget import OmpTargetRuntime

        plan = self.plan
        comm = mpi.comm_world(ctx.rank)
        rt = OmpTargetRuntime(ctx)
        execute = self._execute()
        virtual = not execute
        state = _RankState()
        scratch = None
        if any(op.kind == "notify" for _, op in plan.all_ops()):
            scratch = (
                rt.omp_target_alloc(8, virtual=virtual),
                rt.omp_target_alloc(8, virtual=virtual),
            )

        bufs = BufMap(plan.decls())
        for decl in plan.buffers:
            bufs.add(
                decl.name,
                [
                    _Storage(
                        rt.omp_target_alloc(decl.nbytes, virtual=virtual), decl
                    )
                    for _ in range(decl.count)
                ],
            )
        if execute and plan.init_fn is not None:
            plan.init_fn(ctx, bufs)

        def run_op(op: PlanOp, step: int, steps: int, tag: int = 0) -> None:
            rank, p = ctx.rank, ctx.nranks
            mine = guard_holds(op.guard, rank, p, step, steps)
            if op.kind == "fence":
                waitall(state.requests)
                state.requests.clear()
                return
            if op.kind == "barrier":
                mpi_coll.barrier(comm)
                return
            if op.kind == "wait":
                if mine:
                    self._wait(op, state)
                return
            if op.kind == "put":
                # Two-sided mirror: post the receive for the incoming
                # put first (hand-written apps' Irecv-before-Isend
                # order), then the send for the outgoing one.
                src_rank = op.peer.source(rank, p)
                if src_rank is not None and guard_holds(
                    op.guard, src_rank, p, step, steps
                ):
                    state.requests.append(
                        comm.irecv(bufs.memref(op.dst, step), source=src_rank, tag=tag)
                    )
                if mine:
                    peer = op.peer.resolve(rank, p)
                    state.requests.append(
                        comm.isend(bufs.memref(op.src, step), dest=peer, tag=tag)
                    )
                return
            if op.kind == "get":
                # A get issued here pulls from the peer; two-sided, the
                # peer must send its src range to us.
                if mine:
                    peer = op.peer.resolve(rank, p)
                    state.requests.append(
                        comm.irecv(bufs.memref(op.dst, step), source=peer, tag=tag)
                    )
                requester = op.peer.source(rank, p)
                if requester is not None and guard_holds(
                    op.guard, requester, p, step, steps
                ):
                    state.requests.append(
                        comm.isend(bufs.memref(op.src, step), dest=requester, tag=tag)
                    )
                return
            if op.kind == "notify":
                src_rank = op.peer.source(rank, p)
                if src_rank is not None and guard_holds(
                    op.guard, src_rank, p, step, steps
                ):
                    state.requests.append(
                        comm.irecv(MemRef.device(scratch[1]), source=src_rank, tag=tag)
                    )
                if mine:
                    peer = op.peer.resolve(rank, p)
                    state.requests.append(
                        comm.isend(MemRef.device(scratch[0]), dest=peer, tag=tag)
                    )
                return
            if not mine:
                return
            if op.kind == "allreduce":
                mpi_coll.allreduce(
                    comm,
                    bufs.memref(op.coll.send, step),
                    bufs.memref(op.coll.recv, step),
                    op.coll.dtype,
                    op=_REDUCTIONS[op.coll.op],
                )
            elif op.kind == "compute":
                self._compute(ctx, op, step, bufs, state)
            elif op.kind == "prefetch":
                pass  # no second-level pointers in the MPI baseline
            else:  # pragma: no cover - verifier rejects unknown kinds
                raise ConfigurationError(f"cannot lower op kind {op.kind!r}")

        return self._drive(ctx, bufs, run_op, tagged=True)

    # -- the shared driver -------------------------------------------------

    def _drive(self, ctx, bufs: BufMap, run_op, tagged: bool = False):
        """Prologue, timed body, epilogue; returns the rank result."""
        plan = self.plan

        def section(ops, step: int, steps: int) -> None:
            for idx, op in enumerate(ops):
                if tagged:
                    run_op(op, step, steps, tag=idx)
                else:
                    run_op(op, step, steps)

        section(plan.prologue, 0, 1)
        t0 = ctx.sim.now
        for step in range(plan.steps):
            section(plan.body, step, plan.steps)
        elapsed = ctx.sim.now - t0
        section(plan.epilogue, 0, 1)
        if plan.finish_fn is not None:
            return plan.finish_fn(ctx, bufs, elapsed)
        return {"elapsed": elapsed, "rank": ctx.rank}


class _RankState:
    """Mutable per-rank execution state."""

    def __init__(self) -> None:
        self.pending: Dict[str, Any] = {}
        self.requests: List[Any] = []
        self.am_futures: List[Any] = []
        self.aux_stream: Optional[Any] = None


def lower_plan(plan: CommPlan, backend: str, nranks: int) -> LoweredProgram:
    """Verify ``plan`` and bind it to ``backend`` for ``nranks`` ranks."""
    return LoweredProgram(plan, backend, nranks)
