"""Optimization passes over communication plans.

Every pass is a pure function ``plan -> (plan', stats_delta)`` and is
idempotent: running the pipeline twice yields the same plan and an
all-zero second stats delta (tested).  The pipeline, in order:

1. :func:`expand_halo` — canonicalization: halo macros become guarded
   per-plane puts (the form every later pass and every backend
   understands).
2. :func:`coalesce_messages` — adjacent puts to the same peer whose
   source *and* destination ranges are contiguous merge into one
   transfer: the compile-time generalization of the runtime
   small-message aggregation (PR 3), with zero per-op queueing cost.
3. :func:`overlap_schedule` — schedule reordering for
   compute/communication overlap: synchronous kernels whose declared
   effects are independent of the surrounding communication are
   hoisted to their earliest legal slot, launched asynchronously on
   the plan's dedicated stream, and awaited at the latest legal point
   (first conflicting op, else the step's terminal barrier) — the
   machine derivation of the hand-written overlap loop.
4. :func:`insert_prefetch` — second-level pointer prefetch: plans
   whose RMA touches asymmetric buffers get a prologue prefetch op per
   such buffer and the runtime's bulk allocation-time prefetch enabled.
5. :func:`preselect_collectives` — collective algorithm pre-selection:
   every un-pinned collective op gets its algorithm chosen at compile
   time via :func:`repro.xccl.algorithms.select_sweep`, so the runtime
   pays no per-launch selection and every rank provably agrees.

``optimize_plan`` runs all five and records the accumulated statistics
in ``plan.meta["pass_stats"]`` (exported to the metrics registry as
``plan.pass.rewrites`` when the lowered program runs).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.plan.ir import (
    Access,
    CommPlan,
    PlanOp,
    accesses_conflict,
    rewrite_deps,
)

#: stats keys every pass may contribute to
STAT_KEYS = (
    "halo_expanded",
    "ops_coalesced",
    "computes_overlapped",
    "prefetches_inserted",
    "collectives_preselected",
)


def _zero_stats() -> Dict[str, int]:
    return {k: 0 for k in STAT_KEYS}


# -- 1. halo expansion ------------------------------------------------------


def expand_halo(plan: CommPlan) -> Tuple[CommPlan, Dict[str, int]]:
    """Expand halo macro ops into guarded per-plane puts."""
    stats = _zero_stats()

    def expand(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        mapping: Dict[str, Tuple[str, ...]] = {}
        out: List[PlanOp] = []
        for op in ops:
            if op.kind != "halo":
                out.append(op)
                continue
            spec = op.halo
            new_ids: List[str] = []
            for s, side in enumerate(spec.sides):
                for i in range(spec.nplanes):
                    put_id = f"{op.op_id}.s{s}p{i}"
                    new_ids.append(put_id)
                    out.append(
                        PlanOp(
                            op_id=put_id,
                            kind="put",
                            guard=side.guard,
                            after=op.after,
                            peer=side.peer,
                            src=Access(
                                spec.buf,
                                side.src_offset + i * spec.plane_bytes,
                                spec.plane_bytes,
                            ),
                            dst=Access(
                                spec.buf,
                                side.dst_offset + i * spec.plane_bytes,
                                spec.plane_bytes,
                            ),
                        )
                    )
                    stats["halo_expanded"] += 1
            mapping[op.op_id] = tuple(new_ids)
        return rewrite_deps(tuple(out), mapping)

    return (
        plan.replace(
            prologue=expand(plan.prologue),
            body=expand(plan.body),
            epilogue=expand(plan.epilogue),
        ),
        stats,
    )


# -- 2. message coalescing --------------------------------------------------


def _mergeable(a: PlanOp, b: PlanOp) -> bool:
    """Can put ``b`` be appended to put ``a`` as one transfer?"""
    return (
        a.kind == "put"
        and b.kind == "put"
        and a.peer == b.peer
        and a.guard == b.guard
        and a.src.buf == b.src.buf
        and a.dst.buf == b.dst.buf
        and b.src.offset == a.src.end()
        and b.dst.offset == a.dst.end()
        and set(b.after) <= set(a.after) | {a.op_id}
    )


def coalesce_messages(plan: CommPlan) -> Tuple[CommPlan, Dict[str, int]]:
    """Merge adjacent contiguous puts into single transfers."""
    stats = _zero_stats()

    def coalesce(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        mapping: Dict[str, Tuple[str, ...]] = {}
        out: List[PlanOp] = []
        for op in ops:
            if out and _mergeable(out[-1], op):
                head = out[-1]
                out[-1] = dataclasses.replace(
                    head,
                    src=Access(
                        head.src.buf, head.src.offset, head.src.nbytes + op.src.nbytes
                    ),
                    dst=Access(
                        head.dst.buf, head.dst.offset, head.dst.nbytes + op.dst.nbytes
                    ),
                )
                mapping[op.op_id] = (head.op_id,)
                stats["ops_coalesced"] += 1
            else:
                out.append(op)
        return rewrite_deps(tuple(out), mapping)

    return (
        plan.replace(
            prologue=coalesce(plan.prologue),
            body=coalesce(plan.body),
            epilogue=coalesce(plan.epilogue),
        ),
        stats,
    )


# -- 3. overlap scheduling --------------------------------------------------


def _op_effects(op: PlanOp) -> Tuple[Tuple[Access, ...], Tuple[Access, ...]]:
    """(reads, writes) an op performs on the local rank, including the
    SPMD mirror of incoming one-sided traffic."""
    reads = op.local_reads() + op.incoming_reads()
    writes = op.local_writes() + op.incoming_writes()
    return reads, writes


def _conflicts(decls, a: PlanOp, b: PlanOp) -> bool:
    """Do two ops have a data hazard (RAW/WAR/WAW) on this rank?"""
    a_reads, a_writes = _op_effects(a)
    b_reads, b_writes = _op_effects(b)
    for aw in a_writes:
        for acc in b_reads + b_writes:
            if accesses_conflict(decls, aw, acc):
                return True
    for bw in b_writes:
        for acc in a_reads:
            if accesses_conflict(decls, bw, acc):
                return True
    return False


def _touches_incoming(decls, op: PlanOp, ops: List[PlanOp]) -> bool:
    """Does ``op`` touch bytes that any put's incoming mirror writes?"""
    for other in ops:
        for incoming in other.incoming_writes():
            for acc in op.local_reads() + op.local_writes():
                if accesses_conflict(decls, incoming, acc):
                    return True
    return False


def overlap_schedule(plan: CommPlan) -> Tuple[CommPlan, Dict[str, int]]:
    """Hoist independent kernels above communication and make them
    asynchronous, inserting waits at the latest legal point."""
    stats = _zero_stats()
    decls = plan.decls()

    def schedule(ops_in: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        ops = list(ops_in)
        for op in list(ops):
            if op.kind != "compute" or not op.sync:
                continue
            pinned = _touches_incoming(decls, op, ops)
            i = next(k for k, o in enumerate(ops) if o.op_id == op.op_id)

            def can_cross(prev: PlanOp) -> bool:
                if prev.op_id in op.after:
                    return False
                if prev.kind in ("barrier", "fence"):
                    # Crossing a sync point is only sound for kernels
                    # whose bytes no incoming one-sided write touches.
                    return not pinned
                if prev.kind in ("put", "get", "notify", "prefetch"):
                    return not _conflicts(decls, op, prev)
                # Keep kernels, waits and collectives in program order.
                return False

            j = i
            while j > 0 and can_cross(ops[j - 1]):
                j -= 1
            if j != i:
                ops.insert(j, ops.pop(i))
                i = j
            # Latest legal wait point: before the first later op that
            # conflicts with this kernel's effects, else before the
            # section's final barrier (or at the very end).
            deadline = len(ops)
            for k in range(i + 1, len(ops)):
                later = ops[k]
                if later.kind in ("fence", "wait"):
                    continue
                if later.kind == "barrier":
                    if k == len(ops) - 1:
                        deadline = k
                        break
                    continue
                if _conflicts(decls, op, later):
                    deadline = k
                    break
            if deadline <= i + 1:
                continue  # nothing to overlap with
            made_async = dataclasses.replace(op, sync=False, stream="aux")
            ops[i] = made_async
            ops.insert(
                deadline,
                PlanOp(
                    op_id=f"{op.op_id}.wait",
                    kind="wait",
                    guard=op.guard,
                    after=(op.op_id,),
                    waits_for=op.op_id,
                ),
            )
            stats["computes_overlapped"] += 1
        return tuple(ops)

    return (
        plan.replace(
            prologue=schedule(plan.prologue),
            body=schedule(plan.body),
            epilogue=schedule(plan.epilogue),
        ),
        stats,
    )


# -- 4. pointer-prefetch insertion ------------------------------------------


def insert_prefetch(plan: CommPlan) -> Tuple[CommPlan, Dict[str, int]]:
    """Insert prologue prefetch ops for asymmetric buffers used by RMA
    and enable the runtime's bulk allocation-time pointer prefetch."""
    stats = _zero_stats()
    decls = plan.decls()
    already = {
        op.prefetch_buf for _, op in plan.all_ops() if op.kind == "prefetch"
    }
    rma_bufs = set()
    for _, op in plan.all_ops():
        if op.kind in ("put", "get") and op.src is not None and op.dst is not None:
            rma_bufs.add(op.src.buf.name)
            rma_bufs.add(op.dst.buf.name)
    targets = sorted(
        name
        for name in rma_bufs
        if decls.get(name) is not None
        and decls[name].kind == "asymmetric"
        and name not in already
    )
    if not targets:
        return plan, stats
    new_ops = tuple(
        PlanOp(op_id=f"prefetch.{name}", kind="prefetch", prefetch_buf=name)
        for name in targets
    )
    stats["prefetches_inserted"] = len(new_ops)
    meta = dict(plan.meta)
    meta["pointer_prefetch"] = True
    return plan.replace(prologue=new_ops + plan.prologue, meta=meta), stats


# -- 5. collective pre-selection --------------------------------------------


def preselect_collectives(
    plan: CommPlan, world=None
) -> Tuple[CommPlan, Dict[str, int]]:
    """Pin every un-selected collective's algorithm at compile time.

    Uses :func:`repro.xccl.algorithms.select_sweep` over the world's
    communicator topology — the same policy gates and tie-breaking the
    runtime selector applies, so the pre-selected algorithm provably
    matches what ``select_algorithm`` would have picked per launch
    (:func:`~repro.xccl.algorithms.linear_cost` now verifies the
    affine-cost assumption both share).
    """
    stats = _zero_stats()
    has_coll = any(
        op.kind == "allreduce" and op.algo is None for _, op in plan.all_ops()
    )
    if not has_coll or world is None:
        return plan, stats

    from repro.xccl import params_for
    from repro.xccl.algorithms import select_sweep
    from repro.xccl.topo import analyze, build_ring

    params = params_for(world.platform.ccl)
    ring = build_ring([ctx.devices[0].device_id for ctx in world.ranks])
    ctopo = analyze(world.topology, ring, params)

    def select(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        out: List[PlanOp] = []
        for op in ops:
            if op.kind == "allreduce" and op.algo is None:
                algos, _seconds = select_sweep(
                    "all_reduce", [op.coll.send.nbytes], ctopo, params
                )
                op = dataclasses.replace(op, algo=str(algos[0]))
                stats["collectives_preselected"] += 1
            out.append(op)
        return tuple(out)

    return (
        plan.replace(
            prologue=select(plan.prologue),
            body=select(plan.body),
            epilogue=select(plan.epilogue),
        ),
        stats,
    )


# -- the pipeline -----------------------------------------------------------


def optimize_plan(
    plan: CommPlan, world=None
) -> Tuple[CommPlan, Dict[str, int]]:
    """Run the full pass pipeline; stats accumulate in
    ``plan.meta["pass_stats"]`` (merged with any previous run's)."""
    total = _zero_stats()
    for prior_key, prior_val in plan.meta.get("pass_stats", {}).items():
        total[prior_key] = total.get(prior_key, 0) + prior_val
    plan, s = expand_halo(plan)
    for k, v in s.items():
        total[k] += v
    plan, s = coalesce_messages(plan)
    for k, v in s.items():
        total[k] += v
    plan, s = overlap_schedule(plan)
    for k, v in s.items():
        total[k] += v
    plan, s = insert_prefetch(plan)
    for k, v in s.items():
        total[k] += v
    plan, s = preselect_collectives(plan, world=world)
    for k, v in s.items():
        total[k] += v
    meta = dict(plan.meta)
    meta["pass_stats"] = total
    return plan.replace(meta=meta), total


def explain_pipeline(plan: CommPlan, world=None) -> str:
    """Human-readable pass-by-pass account (the ``explain`` CLI verb)."""
    lines: List[str] = [f"plan {plan.name}: {plan.op_count()} op(s) before passes"]
    passes = [
        ("expand_halo", lambda p: expand_halo(p)),
        ("coalesce_messages", lambda p: coalesce_messages(p)),
        ("overlap_schedule", lambda p: overlap_schedule(p)),
        ("insert_prefetch", lambda p: insert_prefetch(p)),
        ("preselect_collectives", lambda p: preselect_collectives(p, world=world)),
    ]
    for name, fn in passes:
        plan, stats = fn(plan)
        moved = {k: v for k, v in stats.items() if v}
        detail = (
            ", ".join(f"{k}={v}" for k, v in sorted(moved.items()))
            if moved
            else "no rewrites"
        )
        lines.append(f"  {name:<24} -> {plan.op_count()} op(s) ({detail})")
    lines.append(plan.dump())
    return "\n".join(lines)


def pass_stats(plan: CommPlan) -> Optional[Dict[str, int]]:
    """The accumulated pipeline statistics, if the plan was optimized."""
    return plan.meta.get("pass_stats")
