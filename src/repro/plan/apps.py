"""Cannon and Minimod expressed as communication plans.

The builders here produce *naive* plans — the most direct declarative
transcription of the hand-written loops (one halo macro, synchronous
kernels, no overlap).  :func:`repro.plan.passes.optimize_plan` then
derives mechanically what the hand-written variants encode by hand:

* Cannon — the optimizer hoists the GEMM above the stripe forward and
  makes it asynchronous, reproducing the overlapped loop of
  :func:`repro.apps.cannon.cannon_diomp` (same put, same fence, same
  barrier; the wait lands at the latest legal slot).
* Minimod — the halo macro expands to per-plane puts, coalesces back
  to one contiguous put per neighbour, and the interior/boundary
  leapfrog kernels are scheduled exactly like
  :func:`repro.apps.minimod.minimod_diomp_overlap`.

Numerics are bit-identical to the hand-written paths on every backend:
the plan kernels are the same :class:`~repro.device.kernel.Kernel`
objects (leapfrog slab updates compute the same full-field Laplacian
and elementwise update as the in-place stencil, so even the naive
in-place path matches bitwise).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.cannon import CannonConfig, _gemm_kernel, _init_stripe
from repro.apps.minimod import (
    MinimodConfig,
    _field_shape,
    _field_bytes,
    _initial_field,
    _leapfrog_kernel,
    _plane_offset,
)
from repro.cluster.spmd import SpmdResult
from repro.plan.ir import (
    NOT_FIRST_RANK,
    NOT_LAST_RANK,
    NOT_LAST_STEP,
    Access,
    BufDecl,
    BufRef,
    CommPlan,
    HaloSide,
    HaloSpec,
    Peer,
    PlanOp,
)
from repro.plan.lower import lower_plan
from repro.plan.passes import optimize_plan
from repro.util.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Cannon
# ---------------------------------------------------------------------------


def cannon_plan(cfg: CannonConfig, nranks: int) -> CommPlan:
    """The declarative form of the Cannon ring loop."""
    p = nranks
    ns = cfg.stripe(p)
    stripe_bytes = ns * cfg.n * cfg.itemsize
    kernel = _gemm_kernel(cfg, ns)

    a_full = Access(BufRef("A"), 0, stripe_bytes)
    b_cur = Access(BufRef("B", 0), 0, stripe_bytes)
    b_nxt = Access(BufRef("B", 1), 0, stripe_bytes)
    c_full = Access(BufRef("C"), 0, stripe_bytes)

    def args_fn(ctx, bufs, step):
        owner = (ctx.rank + step) % p
        a_stripe = bufs.array("A", cfg.dtype).reshape(ns, cfg.n)
        return (
            np.ascontiguousarray(a_stripe[:, owner * ns : (owner + 1) * ns]),
            bufs.array("B", cfg.dtype, rot=0, step=step).reshape(ns, cfg.n),
            bufs.array("C", cfg.dtype).reshape(ns, cfg.n),
        )

    def init_fn(ctx, bufs):
        bufs.array("A", cfg.dtype)[:] = _init_stripe(cfg, ctx.rank, p, "A").reshape(-1)
        bufs.array("B", cfg.dtype, rot=0, step=0)[:] = _init_stripe(
            cfg, ctx.rank, p, "B"
        ).reshape(-1)

    def finish_fn(ctx, bufs, elapsed) -> Dict[str, object]:
        out: Dict[str, object] = {"elapsed": elapsed, "rank": ctx.rank}
        if cfg.execute:
            out["C"] = bufs.array("C", cfg.dtype).reshape(ns, cfg.n).copy()
        return out

    return CommPlan(
        name="cannon",
        steps=cfg.ring_steps(p),
        buffers=(
            BufDecl("B", stripe_bytes, kind="symmetric", count=2, rotating=True),
            BufDecl("A", stripe_bytes, kind="local"),
            BufDecl("C", stripe_bytes, kind="local"),
        ),
        prologue=(PlanOp(op_id="init-bar", kind="barrier"),),
        body=(
            PlanOp(
                op_id="fwd",
                kind="put",
                guard=NOT_LAST_STEP,
                peer=Peer(-1),
                src=b_cur,
                dst=b_nxt,
            ),
            PlanOp(op_id="fence", kind="fence", after=("fwd",)),
            PlanOp(
                op_id="gemm",
                kind="compute",
                kernel=kernel,
                args_fn=args_fn,
                reads=(a_full, b_cur, c_full),
                writes=(c_full,),
            ),
            PlanOp(op_id="bar", kind="barrier"),
        ),
        epilogue=(PlanOp(op_id="final-bar", kind="barrier"),),
        init_fn=init_fn,
        finish_fn=finish_fn,
        meta={"execute": cfg.execute, "app": "cannon", "n": cfg.n},
    )


# ---------------------------------------------------------------------------
# Minimod
# ---------------------------------------------------------------------------


def minimod_plan(cfg: MinimodConfig, nranks: int) -> CommPlan:
    """The declarative form of the Minimod halo-exchange loop."""
    p = nranks
    lnx = cfg.local_nx(p)
    r = cfg.radius
    field_bytes = _field_bytes(cfg, lnx)
    plane = cfg.plane_elems * cfg.itemsize
    shape = _field_shape(cfg, lnx)

    def off(i: int) -> int:
        return _plane_offset(cfg, i)

    def rd(rot: int, lo_plane: int, hi_plane: int) -> Access:
        return Access(BufRef("U", rot), off(lo_plane), off(hi_plane) - off(lo_plane))

    def args_fn(ctx, bufs, step):
        return (
            bufs.array("U", cfg.dtype, rot=0, step=step).reshape(shape),
            bufs.array("U", cfg.dtype, rot=1, step=step).reshape(shape),
        )

    def compute(op_id: str, lo: int, hi: int) -> PlanOp:
        # A leapfrog update of core planes [lo, hi): the result depends
        # on u planes [lo, hi + 2r) of the padded field and on prev
        # planes [lo + r, hi + r); it writes the latter range.
        return PlanOp(
            op_id=op_id,
            kind="compute",
            kernel=_leapfrog_kernel(cfg, lo, hi),
            args_fn=args_fn,
            reads=(rd(0, lo, hi + 2 * r), rd(1, lo + r, hi + r)),
            writes=(rd(1, lo + r, hi + r),),
        )

    if lnx > 2 * r:
        kernels = (
            compute("interior", r, lnx - r),
            compute("left-slab", 0, r),
            compute("right-slab", lnx - r, lnx),
        )
    else:
        kernels = (compute("full-slab", 0, lnx),)

    def init_fn(ctx, bufs):
        full = _initial_field(cfg)
        for rot in (0, 1):
            view = bufs.array("U", cfg.dtype, rot=rot, step=0).reshape(shape)
            view[r : r + lnx] = full[ctx.rank * lnx : (ctx.rank + 1) * lnx]

    def finish_fn(ctx, bufs, elapsed) -> Dict[str, object]:
        out: Dict[str, object] = {"elapsed": elapsed, "rank": ctx.rank}
        if cfg.execute:
            view = bufs.array("U", cfg.dtype, rot=0, step=cfg.steps).reshape(shape)
            out["u"] = view[r : r + lnx].copy()
        return out

    return CommPlan(
        name="minimod",
        steps=cfg.steps,
        buffers=(
            BufDecl("U", field_bytes, kind="symmetric", count=2, rotating=True),
        ),
        prologue=(PlanOp(op_id="init-bar", kind="barrier"),),
        body=(
            PlanOp(
                op_id="halo",
                kind="halo",
                halo=HaloSpec(
                    buf=BufRef("U", 0),
                    nplanes=r,
                    plane_bytes=plane,
                    sides=(
                        HaloSide(
                            peer=Peer(-1, wrap=False),
                            guard=NOT_FIRST_RANK,
                            src_offset=off(r),
                            dst_offset=off(r + lnx),
                        ),
                        HaloSide(
                            peer=Peer(+1, wrap=False),
                            guard=NOT_LAST_RANK,
                            src_offset=off(lnx),
                            dst_offset=off(0),
                        ),
                    ),
                ),
            ),
            PlanOp(op_id="fence", kind="fence", after=("halo",)),
            PlanOp(op_id="halo-bar", kind="barrier"),
        )
        + kernels
        + (PlanOp(op_id="bar", kind="barrier"),),
        epilogue=(PlanOp(op_id="final-bar", kind="barrier"),),
        init_fn=init_fn,
        finish_fn=finish_fn,
        meta={
            "execute": cfg.execute,
            "app": "minimod",
            "grid": (cfg.nx, cfg.ny, cfg.nz),
        },
    )


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def build_plan(app: str, cfg, nranks: int) -> CommPlan:
    """Build the named application plan ("cannon" | "minimod")."""
    if app == "cannon":
        return cannon_plan(cfg, nranks)
    if app == "minimod":
        return minimod_plan(cfg, nranks)
    raise ConfigurationError(f"unknown plan application {app!r}")


def run_cannon_plan(
    world,
    cfg: CannonConfig,
    backend: str = "gasnet",
    optimize: bool = True,
    runtime=None,
    mpi=None,
) -> SpmdResult:
    """Lower and run the (optionally optimized) Cannon plan."""
    plan = cannon_plan(cfg, world.nranks)
    if optimize:
        plan, _stats = optimize_plan(plan, world=world)
    return lower_plan(plan, backend, world.nranks).run(world, runtime=runtime, mpi=mpi)


def run_minimod_plan(
    world,
    cfg: MinimodConfig,
    backend: str = "gasnet",
    optimize: bool = True,
    runtime=None,
    mpi=None,
) -> SpmdResult:
    """Lower and run the (optionally optimized) Minimod plan."""
    plan = minimod_plan(cfg, world.nranks)
    if optimize:
        plan, _stats = optimize_plan(plan, world=world)
    return lower_plan(plan, backend, world.nranks).run(world, runtime=runtime, mpi=mpi)


_DEFAULT_CANNON = dict(n=4096, execute=False)
_DEFAULT_MINIMOD = dict(nx=256, ny=64, nz=64, steps=8, execute=False)


def default_config(app: str):
    """The CLI's default problem configuration for ``app``."""
    if app == "cannon":
        return CannonConfig(**_DEFAULT_CANNON)
    if app == "minimod":
        return MinimodConfig(**_DEFAULT_MINIMOD)
    raise ConfigurationError(f"unknown plan application {app!r}")
