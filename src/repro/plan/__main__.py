"""``python -m repro.plan`` — dump, verify, or explain application plans.

Exit codes: 0 success, 1 verification failure, 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import sys

from repro.plan.apps import build_plan, default_config
from repro.plan.passes import explain_pipeline, optimize_plan
from repro.plan.verify import verify_plan


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.plan",
        description="Inspect and verify communication plans.",
    )
    parser.add_argument("verb", choices=("dump", "verify", "explain"))
    parser.add_argument("app", choices=("cannon", "minimod"))
    parser.add_argument(
        "--nranks", type=int, default=4, help="world size to build/verify for"
    )
    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run the optimization pipeline before dump/verify",
    )
    args = parser.parse_args(argv)

    plan = build_plan(args.app, default_config(args.app), args.nranks)

    if args.verb == "explain":
        print(explain_pipeline(plan))
        return 0

    if args.optimize:
        plan, _stats = optimize_plan(plan)

    if args.verb == "dump":
        print(plan.dump())
        return 0

    issues = verify_plan(plan, args.nranks)
    if issues:
        print(f"plan {plan.name!r} FAILED verification ({len(issues)} issue(s)):")
        for issue in issues:
            print(f"  - {issue}")
        return 1
    print(
        f"plan {plan.name!r} OK for {args.nranks} rank(s): "
        f"{plan.op_count()} op(s), {len(plan.buffers)} buffer(s)"
    )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        sys.stderr.close()
        sys.exit(0)
