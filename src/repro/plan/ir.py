"""The communication-plan IR: declarative RMA/collective patterns.

A :class:`CommPlan` captures an application's per-rank communication
and compute pattern *symbolically*: one plan describes every rank of
an SPMD program.  Rank asymmetry is expressed with :class:`Peer`
(a relative rank expression) and guards (predicates over ``(rank,
nranks, step, steps)``), never with literal rank numbers — which is
what lets a single plan be verified for any world size and lowered to
any backend (GASNet-EX, GPI-2, or the MPI baseline; see
:mod:`repro.plan.lower`).

The op set mirrors the DiOMP API surface plus two conveniences:

``put`` / ``get``
    One-sided RMA against a peer's symmetric buffer; completes at the
    next ``fence`` (exactly the ``ompx_put``/``ompx_get`` contract).
``notify``
    A lightweight control-plane signal to a peer (``gaspi_notify`` on
    GPI-2, an active message on GASNet-EX, a tagged 8-byte message on
    MPI).
``allreduce``
    A device-side collective; the ``algo`` slot is filled in by the
    pre-selection pass (:func:`repro.plan.passes.preselect_collectives`).
``halo``
    A macro op: a per-plane halo exchange, expanded by the
    canonicalization pass into guarded puts (which the coalescing pass
    then merges back into one contiguous put per neighbour — the
    compile-time generalization of the runtime RMA aggregation).
``compute``
    A kernel launch with declared byte-range effects (``reads`` /
    ``writes``); the overlap pass uses the effects to hoist independent
    kernels above communication and run them asynchronously.
``wait`` / ``fence`` / ``barrier`` / ``prefetch``
    Synchronization and the second-level-pointer prefetch marker.

Ops carry explicit ``after`` dependency edges (true data/sync
dependencies only — *not* schedule order); the list order of
``prologue`` / ``body`` / ``epilogue`` is the schedule.  Optimization
passes may reorder the schedule freely as long as the dependency edges
and the declared effects stay satisfied; the verifier
(:mod:`repro.plan.verify`) checks both.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import ConfigurationError

# -- guards -----------------------------------------------------------------

#: guard names: predicates over (rank, nranks, step, steps)
ALWAYS = "always"
NOT_FIRST_RANK = "not_first_rank"
NOT_LAST_RANK = "not_last_rank"
NOT_LAST_STEP = "not_last_step"

GUARDS = (ALWAYS, NOT_FIRST_RANK, NOT_LAST_RANK, NOT_LAST_STEP)


def guard_holds(guard: str, rank: int, nranks: int, step: int, steps: int) -> bool:
    """Evaluate ``guard`` for one rank at one step."""
    if guard == ALWAYS:
        return True
    if guard == NOT_FIRST_RANK:
        return rank != 0
    if guard == NOT_LAST_RANK:
        return rank != nranks - 1
    if guard == NOT_LAST_STEP:
        return step < steps - 1
    raise ConfigurationError(f"unknown guard {guard!r} (known: {GUARDS})")


# -- symbolic ranks ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Peer:
    """A relative rank expression: ``rank + shift`` (wrapped or not)."""

    shift: int
    wrap: bool = True

    def resolve(self, rank: int, nranks: int) -> Optional[int]:
        """The concrete peer of ``rank``, or None if it falls off the
        edge of a non-wrapping topology."""
        target = rank + self.shift
        if self.wrap:
            return target % nranks
        return target if 0 <= target < nranks else None

    def source(self, rank: int, nranks: int) -> Optional[int]:
        """The inverse: which rank's op lands *on* ``rank``."""
        src = rank - self.shift
        if self.wrap:
            return src % nranks
        return src if 0 <= src < nranks else None

    def __str__(self) -> str:
        sign = f"{self.shift:+d}"
        return f"peer({sign}{'' if self.wrap else ', nowrap'})"


# -- buffers ----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BufDecl:
    """One logical buffer, allocated identically on every rank.

    ``count > 1`` declares a ring of instances (double buffering);
    with ``rotating=True`` references advance one instance per step,
    which is how time-level swaps (``cur, nxt = nxt, cur``) are
    expressed without mutable state.
    """

    name: str
    nbytes: int
    #: "symmetric" (remotely addressable), "local" (rank-private
    #: device memory), or "asymmetric" (second-level-pointer scheme)
    kind: str = "symmetric"
    count: int = 1
    rotating: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("symmetric", "local", "asymmetric"):
            raise ConfigurationError(f"unknown buffer kind {self.kind!r}")
        if self.nbytes <= 0 or self.count <= 0:
            raise ConfigurationError(
                f"buffer {self.name!r} needs positive size and count"
            )

    def instance(self, rot: int, step: int) -> int:
        """Which ring instance a ``rot`` reference denotes at ``step``."""
        if self.rotating:
            return (step + rot) % self.count
        return rot % self.count


@dataclasses.dataclass(frozen=True)
class BufRef:
    """A reference to one ring instance of a declared buffer.

    ``rot`` is the rotation offset: with a rotating 2-ring, ``rot=0``
    is "the current time level" and ``rot=1`` "the next/previous one".
    """

    name: str
    rot: int = 0

    def __str__(self) -> str:
        return f"%{self.name}" + (f"@{self.rot}" if self.rot else "")


@dataclasses.dataclass(frozen=True)
class Access:
    """A byte range of one buffer instance."""

    buf: BufRef
    offset: int
    nbytes: int

    def end(self) -> int:
        return self.offset + self.nbytes

    def __str__(self) -> str:
        return f"{self.buf}[{self.offset}:+{self.nbytes}]"


def accesses_conflict(
    decls: Dict[str, BufDecl], a: Access, b: Access
) -> bool:
    """Do two same-step accesses touch overlapping bytes of the same
    buffer instance?  (Rotation offsets are compared modulo the ring
    size, so ``rot=0`` vs ``rot=1`` of a 2-ring never conflict within
    a step.)"""
    if a.buf.name != b.buf.name:
        return False
    decl = decls[a.buf.name]
    if (a.buf.rot - b.buf.rot) % decl.count != 0:
        return False
    return a.offset < b.end() and b.offset < a.end()


# -- ops --------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class HaloSide:
    """One direction of a halo exchange macro."""

    peer: Peer
    guard: str
    src_offset: int
    dst_offset: int


@dataclasses.dataclass(frozen=True)
class HaloSpec:
    """A per-plane halo exchange over ``buf``: ``nplanes`` planes of
    ``plane_bytes`` each, pushed to every side's peer."""

    buf: BufRef
    nplanes: int
    plane_bytes: int
    sides: Tuple[HaloSide, ...]


@dataclasses.dataclass(frozen=True)
class CollSpec:
    """A collective call: reduce ``send`` into every rank's ``recv``."""

    send: Access
    recv: Access
    dtype: Any
    op: str = "sum"


#: op kinds understood by verifier, passes, and lowering
OP_KINDS = (
    "put",
    "get",
    "notify",
    "allreduce",
    "halo",
    "compute",
    "wait",
    "fence",
    "barrier",
    "prefetch",
)


@dataclasses.dataclass(frozen=True)
class PlanOp:
    """One node of the plan graph.

    Only the fields relevant to ``kind`` are populated; the verifier
    rejects malformed combinations.  Ops are immutable — passes build
    rewritten plans with :func:`dataclasses.replace`.
    """

    op_id: str
    kind: str
    guard: str = ALWAYS
    #: explicit dependency edges (op ids that must run before this op)
    after: Tuple[str, ...] = ()
    # RMA (put/get/notify)
    peer: Optional[Peer] = None
    src: Optional[Access] = None
    dst: Optional[Access] = None
    #: notification id (notify)
    token: int = 0
    # halo macro
    halo: Optional[HaloSpec] = None
    # collective
    coll: Optional[CollSpec] = None
    #: collective algorithm, filled in by the pre-selection pass
    algo: Optional[str] = None
    # compute
    kernel: Optional[Any] = None
    #: (ctx, bufs, step) -> launch args; only called in execute mode
    args_fn: Optional[Callable] = None
    reads: Tuple[Access, ...] = ()
    writes: Tuple[Access, ...] = ()
    #: synchronous launch (wait inline) vs async (explicit wait op)
    sync: bool = True
    #: "default" launch stream or the plan's dedicated "aux" stream
    stream: str = "default"
    # wait
    waits_for: Optional[str] = None
    #: prefetch target buffer name
    prefetch_buf: Optional[str] = None

    def local_reads(self) -> Tuple[Access, ...]:
        """Byte ranges this op reads on the *issuing* rank."""
        if self.kind == "put":
            return (self.src,) if self.src else ()
        if self.kind == "compute":
            return self.reads
        if self.kind == "allreduce" and self.coll:
            return (self.coll.send,)
        return ()

    def local_writes(self) -> Tuple[Access, ...]:
        """Byte ranges this op writes on the *issuing* rank."""
        if self.kind == "get":
            return (self.dst,) if self.dst else ()
        if self.kind == "compute":
            return self.writes
        if self.kind == "allreduce" and self.coll:
            return (self.coll.recv,)
        return ()

    def incoming_writes(self) -> Tuple[Access, ...]:
        """Byte ranges a *peer's* symmetric instance of this op writes
        on the local rank (SPMD mirror of a put's target)."""
        if self.kind == "put" and self.dst is not None:
            return (self.dst,)
        return ()

    def incoming_reads(self) -> Tuple[Access, ...]:
        """Mirror ranges a peer's instance of this op reads locally
        (the source range of a remote get aimed at us)."""
        if self.kind == "get" and self.src is not None:
            return (self.src,)
        return ()

    def describe(self) -> str:
        """One dump line (without the id prefix)."""
        g = "" if self.guard == ALWAYS else f" if {self.guard}"
        dep = f" after({', '.join('%' + a for a in self.after)})" if self.after else ""
        if self.kind == "put":
            return f"put {self.src} -> {self.peer}.{self.dst}{g}{dep}"
        if self.kind == "get":
            return f"get {self.peer}.{self.src} -> {self.dst}{g}{dep}"
        if self.kind == "notify":
            return f"notify {self.peer} token={self.token}{g}{dep}"
        if self.kind == "allreduce":
            algo = self.algo or "auto"
            return (
                f"allreduce[{algo}] {self.coll.send} -> {self.coll.recv}{g}{dep}"
            )
        if self.kind == "halo":
            sides = ", ".join(
                f"{s.peer} if {s.guard}" for s in self.halo.sides
            )
            return (
                f"halo {self.halo.buf} {self.halo.nplanes}x"
                f"{self.halo.plane_bytes}B -> [{sides}]{dep}"
            )
        if self.kind == "compute":
            mode = "sync" if self.sync else f"async:{self.stream}"
            name = getattr(self.kernel, "name", "kernel")
            w = ", ".join(str(a) for a in self.writes)
            return f"compute<{name}> ({mode}) writes {w or '-'}{g}{dep}"
        if self.kind == "wait":
            return f"wait %{self.waits_for}{g}{dep}"
        if self.kind == "prefetch":
            return f"prefetch %{self.prefetch_buf}{dep}"
        return f"{self.kind}{g}{dep}"


# -- the plan ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CommPlan:
    """A complete SPMD communication plan.

    ``prologue`` runs once before the timed region, ``body`` runs
    ``steps`` times, ``epilogue`` runs once after.  The timer starts
    after the prologue (mirroring the hand-written apps' post-barrier
    ``t0``).  ``init_fn(ctx, bufs)`` loads initial data before the
    prologue; ``finish_fn(ctx, bufs, elapsed)`` builds the per-rank
    result dict.
    """

    name: str
    steps: int
    buffers: Tuple[BufDecl, ...]
    prologue: Tuple[PlanOp, ...] = ()
    body: Tuple[PlanOp, ...] = ()
    epilogue: Tuple[PlanOp, ...] = ()
    init_fn: Optional[Callable] = None
    finish_fn: Optional[Callable] = None
    #: free-form app metadata: "execute", "pointer_prefetch",
    #: "pass_stats", problem dimensions for ``dump`` ...
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)

    # -- lookups ----------------------------------------------------------

    def decls(self) -> Dict[str, BufDecl]:
        return {b.name: b for b in self.buffers}

    def all_ops(self) -> Iterable[Tuple[str, PlanOp]]:
        for section, ops in (
            ("prologue", self.prologue),
            ("body", self.body),
            ("epilogue", self.epilogue),
        ):
            for op in ops:
                yield section, op

    def op_count(self) -> int:
        return len(self.prologue) + len(self.body) + len(self.epilogue)

    def replace(self, **changes) -> "CommPlan":
        return dataclasses.replace(self, **changes)

    # -- rendering --------------------------------------------------------

    def dump(self) -> str:
        """The textual form shown by ``python -m repro.plan dump``."""
        lines: List[str] = [f"plan {self.name} steps={self.steps} {{"]
        for b in self.buffers:
            ring = f" x{b.count}" + (", rotating" if b.rotating else "") if b.count > 1 else ""
            lines.append(f"  buffer %{b.name} : {b.kind}[{b.nbytes} B{ring}]")
        for section, ops in (
            ("prologue", self.prologue),
            ("body", self.body),
            ("epilogue", self.epilogue),
        ):
            if not ops:
                continue
            label = f"body (x{self.steps})" if section == "body" else section
            lines.append(f"  {label}:")
            for op in ops:
                lines.append(f"    %{op.op_id}: {op.describe()}")
        lines.append("}")
        return "\n".join(lines)


def rewrite_deps(
    ops: Tuple[PlanOp, ...], mapping: Dict[str, Tuple[str, ...]]
) -> Tuple[PlanOp, ...]:
    """Rewrite ``after`` edges through ``mapping`` (old id -> new ids),
    deduplicating while preserving order."""
    out: List[PlanOp] = []
    for op in ops:
        new_after: List[str] = []
        for dep in op.after:
            for repl in mapping.get(dep, (dep,)):
                if repl not in new_after and repl != op.op_id:
                    new_after.append(repl)
        if tuple(new_after) != op.after:
            op = dataclasses.replace(op, after=tuple(new_after))
        out.append(op)
    return tuple(out)
