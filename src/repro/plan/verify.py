"""Static verification of communication plans.

``verify_plan`` returns a list of human-readable issues (empty when
the plan is sound); ``check_plan`` raises
:class:`~repro.util.errors.PlanVerificationError` listing all of them.
Lowering always verifies first — a plan that fails verification never
reaches a backend.

Checked invariants:

* **structure** — unique buffer names and op ids, known guards and op
  kinds, required fields per kind (a put needs peer/src/dst, a wait
  needs a target, ...);
* **buffers** — no dangling buffer references, rotation offsets inside
  the ring, accesses inside the declared byte size, RMA aimed at
  remotely-addressable (symmetric) buffers only;
* **dependencies** — ``after`` edges reference existing ops in the
  same section, the edge relation is acyclic, and the schedule (list
  order) respects every edge;
* **cross-rank matching** — for every rank where an RMA op's guard
  holds, the peer expression must resolve (a non-wrapping peer at the
  edge of the rank line needs an edge guard), which is exactly the
  condition for the MPI lowering's send/recv pairing to be total;
* **completion** — every put/get is followed by a fence in its
  section, every async compute has a wait, every wait names an async
  compute, and a multi-step body with communication or compute ends
  with a barrier (loop-carried safety);
* **one-sided visibility** — an op whose effects touch bytes that an
  incoming put (the SPMD mirror of an outgoing put) may write must be
  scheduled after a barrier that follows that put; reading halo bytes
  before the exchange has synchronized is the classic stencil race and
  is rejected statically.
"""

from __future__ import annotations

from typing import Dict, List

from repro.plan.ir import (
    ALWAYS,
    GUARDS,
    OP_KINDS,
    Access,
    BufDecl,
    CommPlan,
    PlanOp,
    accesses_conflict,
    guard_holds,
)
from repro.util.errors import PlanVerificationError


def _check_access(
    decls: Dict[str, BufDecl], op: PlanOp, acc: Access, role: str, issues: List[str]
) -> None:
    decl = decls.get(acc.buf.name)
    if decl is None:
        issues.append(
            f"op {op.op_id!r}: {role} references undeclared buffer "
            f"{acc.buf.name!r} (dangling)"
        )
        return
    if not 0 <= acc.buf.rot < decl.count:
        issues.append(
            f"op {op.op_id!r}: {role} rotation {acc.buf.rot} outside ring "
            f"of {decl.count} instance(s) of {decl.name!r}"
        )
    if acc.nbytes <= 0 or acc.offset < 0 or acc.end() > decl.nbytes:
        issues.append(
            f"op {op.op_id!r}: {role} range [{acc.offset}, {acc.end()}) "
            f"outside buffer {decl.name!r} of {decl.nbytes} bytes"
        )


def _required_fields(op: PlanOp, issues: List[str]) -> bool:
    """Per-kind field presence; returns False when too malformed to
    check further."""
    ok = True
    if op.kind not in OP_KINDS:
        issues.append(f"op {op.op_id!r}: unknown kind {op.kind!r}")
        return False
    if op.guard not in GUARDS:
        issues.append(f"op {op.op_id!r}: unknown guard {op.guard!r}")
        ok = False
    if op.kind in ("put", "get") and (
        op.peer is None or op.src is None or op.dst is None
    ):
        issues.append(f"op {op.op_id!r}: {op.kind} needs peer, src and dst")
        ok = False
    if op.kind == "notify" and op.peer is None:
        issues.append(f"op {op.op_id!r}: notify needs a peer")
        ok = False
    if op.kind == "allreduce" and op.coll is None:
        issues.append(f"op {op.op_id!r}: allreduce needs a CollSpec")
        ok = False
    if op.kind == "halo" and op.halo is None:
        issues.append(f"op {op.op_id!r}: halo needs a HaloSpec")
        ok = False
    if op.kind == "compute" and op.kernel is None:
        issues.append(f"op {op.op_id!r}: compute needs a kernel")
        ok = False
    if op.kind == "wait" and not op.waits_for:
        issues.append(f"op {op.op_id!r}: wait needs a target op")
        ok = False
    return ok


def _section_issues(
    plan: CommPlan,
    section: str,
    ops: tuple,
    decls: Dict[str, BufDecl],
    nranks: int,
    issues: List[str],
) -> None:
    ids = [op.op_id for op in ops]
    index = {op.op_id: i for i, op in enumerate(ops)}
    steps = plan.steps if section == "body" else 1

    for op in ops:
        if not _required_fields(op, issues):
            continue
        # buffer hygiene
        if op.kind in ("put", "get"):
            _check_access(decls, op, op.src, "src", issues)
            _check_access(decls, op, op.dst, "dst", issues)
            remote = op.dst if op.kind == "put" else op.src
            decl = decls.get(remote.buf.name)
            if decl is not None and decl.kind == "local":
                issues.append(
                    f"op {op.op_id!r}: {op.kind} targets rank-local buffer "
                    f"{decl.name!r}; RMA needs a symmetric or asymmetric "
                    "allocation"
                )
        if op.kind == "allreduce":
            _check_access(decls, op, op.coll.send, "send", issues)
            _check_access(decls, op, op.coll.recv, "recv", issues)
        if op.kind == "halo":
            spec = op.halo
            if spec.buf.name not in decls:
                issues.append(
                    f"op {op.op_id!r}: halo references undeclared buffer "
                    f"{spec.buf.name!r} (dangling)"
                )
            else:
                total = spec.nplanes * spec.plane_bytes
                for side in spec.sides:
                    for off, role in (
                        (side.src_offset, "halo src"),
                        (side.dst_offset, "halo dst"),
                    ):
                        _check_access(
                            decls, op, Access(spec.buf, off, total), role, issues
                        )
        for acc in op.reads:
            _check_access(decls, op, acc, "read", issues)
        for acc in op.writes:
            _check_access(decls, op, acc, "write", issues)
        if op.kind == "prefetch":
            decl = decls.get(op.prefetch_buf or "")
            if decl is None:
                issues.append(
                    f"op {op.op_id!r}: prefetch of undeclared buffer "
                    f"{op.prefetch_buf!r}"
                )
            elif decl.kind != "asymmetric":
                issues.append(
                    f"op {op.op_id!r}: prefetch targets {decl.kind} buffer "
                    f"{decl.name!r}; second-level pointers only exist for "
                    "asymmetric allocations"
                )
        # dependency edges
        for dep in op.after:
            if dep not in index:
                issues.append(
                    f"op {op.op_id!r}: dependency on unknown op {dep!r} "
                    f"(not in {section})"
                )
            elif index[dep] >= index[op.op_id]:
                issues.append(
                    f"op {op.op_id!r}: scheduled before its dependency "
                    f"{dep!r} ({section} order violates the edge)"
                )
        # cross-rank matching
        if op.kind in ("put", "get", "notify") and op.peer is not None:
            for rank in range(nranks):
                for step in (0, max(0, steps - 1)):
                    if not guard_holds(op.guard, rank, nranks, step, steps):
                        continue
                    if op.peer.resolve(rank, nranks) is None:
                        issues.append(
                            f"op {op.op_id!r}: cross-rank mismatch — guard "
                            f"{op.guard!r} holds on rank {rank}/{nranks} but "
                            f"{op.peer} resolves off the rank line; add an "
                            "edge guard or use a wrapping peer"
                        )
                        break
                else:
                    continue
                break

    # cycles: after-edges within the section (list-order violations are
    # reported above; a genuine cycle can't be scheduled at all)
    state: Dict[str, int] = {}

    def visit(op_id: str, stack: List[str]) -> None:
        if state.get(op_id) == 2:
            return
        if state.get(op_id) == 1:
            cycle = stack[stack.index(op_id):] + [op_id]
            issues.append(
                f"cyclic dependency in {section}: {' -> '.join(cycle)}"
            )
            return
        state[op_id] = 1
        stack.append(op_id)
        for dep in by_id[op_id].after:
            if dep in by_id:
                visit(dep, stack)
        stack.pop()
        state[op_id] = 2

    by_id = {op.op_id: op for op in ops}
    for op_id in ids:
        visit(op_id, [])

    # completion: RMA must be fenced; async computes must be awaited
    fence_positions = [i for i, op in enumerate(ops) if op.kind in ("fence", "barrier")]
    for i, op in enumerate(ops):
        if op.kind in ("put", "get") and not any(p > i for p in fence_positions):
            issues.append(
                f"op {op.op_id!r}: {op.kind} has no fence before the end of "
                f"the {section}; one-sided ops complete only at a fence"
            )
        if op.kind == "compute" and not op.sync:
            if not any(
                w.kind == "wait" and w.waits_for == op.op_id for w in ops[i + 1:]
            ):
                issues.append(
                    f"op {op.op_id!r}: async compute is never waited on in "
                    f"the {section}"
                )
        if op.kind == "wait":
            target = by_id.get(op.waits_for)
            if target is None or target.kind != "compute" or target.sync:
                issues.append(
                    f"op {op.op_id!r}: wait targets "
                    f"{op.waits_for!r}, which is not an async compute in the "
                    f"{section}"
                )
    if section == "body" and plan.steps > 1:
        active = [op for op in ops if op.kind in ("put", "get", "compute", "allreduce")]
        if active and (not ops or ops[-1].kind != "barrier"):
            issues.append(
                "body with communication or compute must end with a barrier "
                "(loop-carried visibility across steps)"
            )

    # one-sided visibility: effects overlapping an incoming-put range
    # must sit after a barrier that follows the put
    puts = [(i, op) for i, op in enumerate(ops) if op.kind == "put"]
    barrier_positions = [i for i, op in enumerate(ops) if op.kind == "barrier"]
    for pi, put in puts:
        for incoming in put.incoming_writes():
            for oi, other in enumerate(ops):
                if other.op_id == put.op_id or other.kind in ("fence", "barrier", "wait"):
                    continue
                if other.kind == "put":
                    # A sibling put's mirrored dst is part of the same
                    # exchange; only its *source read* can race the
                    # incoming write.
                    effects = other.local_reads()
                else:
                    effects = other.local_reads() + other.local_writes()
                if not any(accesses_conflict(decls, incoming, acc) for acc in effects):
                    continue
                if not any(pi < b <= oi for b in barrier_positions):
                    issues.append(
                        f"op {other.op_id!r}: touches bytes of {incoming} "
                        f"that incoming put {put.op_id!r} writes, without an "
                        "intervening barrier (one-sided visibility hazard)"
                    )


def verify_plan(plan: CommPlan, nranks: int) -> List[str]:
    """All issues found in ``plan`` for a world of ``nranks`` ranks."""
    issues: List[str] = []
    if nranks <= 0:
        return [f"nranks must be positive, got {nranks}"]
    if plan.steps < 0:
        issues.append(f"negative step count {plan.steps}")

    names = [b.name for b in plan.buffers]
    for name in sorted({n for n in names if names.count(n) > 1}):
        issues.append(f"duplicate buffer declaration {name!r}")
    decls = plan.decls()

    all_ids = [op.op_id for _, op in plan.all_ops()]
    for op_id in sorted({i for i in all_ids if all_ids.count(i) > 1}):
        issues.append(f"duplicate op id {op_id!r}")
    if issues:
        return issues

    for section, ops in (
        ("prologue", plan.prologue),
        ("body", plan.body),
        ("epilogue", plan.epilogue),
    ):
        _section_issues(plan, section, ops, decls, nranks, issues)
    return issues


def check_plan(plan: CommPlan, nranks: int) -> None:
    """Raise :class:`PlanVerificationError` if the plan is unsound."""
    issues = verify_plan(plan, nranks)
    if issues:
        listing = "\n  - ".join(issues)
        raise PlanVerificationError(
            f"plan {plan.name!r} failed verification with "
            f"{len(issues)} issue(s):\n  - {listing}"
        )
