"""Communication-plan IR, optimization passes, and multi-backend lowering.

See ``docs/PLAN.md`` for concepts and the pass pipeline; the CLI lives
in ``python -m repro.plan`` (dump / verify / explain).
"""

from repro.plan.apps import (
    build_plan,
    cannon_plan,
    default_config,
    minimod_plan,
    run_cannon_plan,
    run_minimod_plan,
)
from repro.plan.ir import (
    ALWAYS,
    GUARDS,
    NOT_FIRST_RANK,
    NOT_LAST_RANK,
    NOT_LAST_STEP,
    OP_KINDS,
    Access,
    BufDecl,
    BufRef,
    CollSpec,
    CommPlan,
    HaloSide,
    HaloSpec,
    Peer,
    PlanOp,
    accesses_conflict,
    guard_holds,
)
from repro.plan.lower import BACKENDS, BufMap, LoweredProgram, lower_plan
from repro.plan.passes import (
    STAT_KEYS,
    coalesce_messages,
    expand_halo,
    explain_pipeline,
    insert_prefetch,
    optimize_plan,
    overlap_schedule,
    pass_stats,
    preselect_collectives,
)
from repro.plan.verify import check_plan, verify_plan

__all__ = [
    "ALWAYS",
    "BACKENDS",
    "GUARDS",
    "NOT_FIRST_RANK",
    "NOT_LAST_RANK",
    "NOT_LAST_STEP",
    "OP_KINDS",
    "STAT_KEYS",
    "Access",
    "BufDecl",
    "BufMap",
    "BufRef",
    "CollSpec",
    "CommPlan",
    "HaloSide",
    "HaloSpec",
    "LoweredProgram",
    "Peer",
    "PlanOp",
    "accesses_conflict",
    "build_plan",
    "cannon_plan",
    "check_plan",
    "coalesce_messages",
    "default_config",
    "expand_halo",
    "explain_pipeline",
    "guard_holds",
    "insert_prefetch",
    "lower_plan",
    "minimod_plan",
    "optimize_plan",
    "overlap_schedule",
    "pass_stats",
    "preselect_collectives",
    "run_cannon_plan",
    "run_minimod_plan",
    "verify_plan",
]
