"""Ring-exchange matrix multiplication (paper §4.4, Fig. 7).

The paper's setup: ``C = A x B`` with square ``N x N`` matrices over
``P`` GPUs, block-stripe width ``Ns = N / P``.  Rank ``r`` holds

* ``A_r`` — its row stripe (Ns x N), static,
* ``B`` stripes — row stripes (Ns x N) rotate around the ring; an
  *additional* stripe buffer enables compute/communication overlap,
* ``C_r`` — its result row stripe (Ns x N).

Each of the ``P`` steps multiplies the (Ns x Ns) block column of
``A_r`` matching the currently held B stripe into ``C_r`` — workload
``N * Ns * Ns`` per step, as the paper states — while the held stripe
is simultaneously forwarded to the left ring neighbour's spare buffer.

The **DiOMP variant** forwards stripes with a single one-sided
``ompx_put`` into the neighbour's symmetric buffer plus one fence; the
**MPI variant** uses Isend/Irecv on mapped device pointers plus
Waitall — the code-complexity contrast of Listings 1/2, here in
executable form.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.spmd import SpmdResult, run_spmd
from repro.cluster.world import RankContext, World
from repro.core.runtime import DiompRuntime
from repro.device.kernel import Kernel, gemm_cost
from repro.mpi import MpiWorld
from repro.mpi import collectives as mpi_coll
from repro.util.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class CannonConfig:
    """Problem configuration."""

    n: int
    #: run real numpy numerics (small N) or virtual timing (paper N)
    execute: bool = True
    dtype: type = np.float64
    #: sustained fraction of the matrix-engine peak for the stripe GEMM
    gemm_efficiency: float = 0.85
    #: cap on ring steps (None = the full P).  A truncated run measures
    #: the steady-state per-step cost for scaling sweeps where the full
    #: P-step rotation would cost O(P^2) simulated events; only valid
    #: with ``execute=False`` (the result stripe is incomplete).
    steps: Optional[int] = None

    def ring_steps(self, nranks: int) -> int:
        if self.steps is None:
            return nranks
        if self.execute:
            raise ConfigurationError(
                "truncated Cannon (steps=) is timing-only; use execute=False"
            )
        if not 1 <= self.steps <= nranks:
            raise ConfigurationError(
                f"steps={self.steps} out of range 1..{nranks}"
            )
        return self.steps

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    def stripe(self, nranks: int) -> int:
        if self.n % nranks:
            raise ConfigurationError(
                f"matrix size {self.n} must divide by {nranks} ranks"
            )
        return self.n // nranks


def _init_stripe(cfg: CannonConfig, rank: int, nranks: int, which: str) -> np.ndarray:
    """Deterministic test matrices: A[i, j] = i - j, B[i, j] = i + j
    (small integers — exact in float64)."""
    ns = cfg.stripe(nranks)
    rows = np.arange(rank * ns, (rank + 1) * ns, dtype=cfg.dtype)[:, None]
    cols = np.arange(cfg.n, dtype=cfg.dtype)[None, :]
    if which == "A":
        return (rows - cols) % 7
    return (rows + cols) % 5


def cannon_reference(cfg: CannonConfig, nranks: int) -> np.ndarray:
    """The full ``A @ B`` computed directly (test oracle)."""
    a = np.concatenate([_init_stripe(cfg, r, nranks, "A") for r in range(nranks)])
    b = np.concatenate([_init_stripe(cfg, r, nranks, "B") for r in range(nranks)])
    return a @ b


def _gemm_kernel(cfg: CannonConfig, ns: int) -> Kernel:
    """One ring step: C += A_block (Ns x Ns) @ B_stripe (Ns x N)."""

    def host_fn(a_block: np.ndarray, b_stripe: np.ndarray, c_stripe: np.ndarray) -> None:
        c_stripe += a_block @ b_stripe

    return Kernel(
        name="cannon-gemm",
        cost=lambda *_a: gemm_cost(
            ns, cfg.n, ns, itemsize=cfg.itemsize, efficiency=cfg.gemm_efficiency
        ),
        host_fn=host_fn if cfg.execute else None,
    )


def _finish(ctx: RankContext, cfg: CannonConfig, c_buf, t0: float) -> Dict[str, object]:
    result: Dict[str, object] = {"elapsed": ctx.sim.now - t0, "rank": ctx.rank}
    if cfg.execute:
        ns = cfg.stripe(ctx.nranks)
        result["C"] = c_buf.as_array(cfg.dtype, count=ns * cfg.n).reshape(ns, cfg.n).copy()
    return result


# ---------------------------------------------------------------------------
# DiOMP variant
# ---------------------------------------------------------------------------


def cannon_diomp(ctx: RankContext, cfg: CannonConfig) -> Dict[str, object]:
    """The DiOMP implementation: one-sided stripe forwarding."""
    diomp = ctx.diomp
    if diomp is None:
        raise ConfigurationError("cannon_diomp needs a DiompRuntime installed")
    p = ctx.nranks
    ns = cfg.stripe(p)
    stripe_bytes = ns * cfg.n * cfg.itemsize
    virtual = not cfg.execute
    # Symmetric allocations: the two rotating B buffers must be
    # remotely addressable; A and C are rank-local (they could equally
    # be OpenMP-mapped — they are never communicated).
    b_bufs = [
        diomp.alloc(stripe_bytes, virtual=virtual),
        diomp.alloc(stripe_bytes, virtual=virtual),
    ]
    a_buf = diomp.segment(0).alloc_local(stripe_bytes, virtual=virtual, label="A")
    c_buf = diomp.segment(0).alloc_local(stripe_bytes, virtual=virtual, label="C")
    if cfg.execute:
        a_buf.as_array(cfg.dtype)[:] = _init_stripe(cfg, ctx.rank, p, "A").reshape(-1)
        b_bufs[0].typed(cfg.dtype)[:] = _init_stripe(cfg, ctx.rank, p, "B").reshape(-1)
    kernel = _gemm_kernel(cfg, ns)
    left = (ctx.rank - 1) % p
    diomp.barrier()
    t0 = ctx.sim.now
    cur, nxt = 0, 1
    nsteps = cfg.ring_steps(p)
    for step in range(nsteps):
        owner = (ctx.rank + step) % p  # whose B stripe we now hold
        if cfg.execute:
            a_stripe = a_buf.as_array(cfg.dtype, count=ns * cfg.n).reshape(ns, cfg.n)
            args = (
                np.ascontiguousarray(a_stripe[:, owner * ns : (owner + 1) * ns]),
                b_bufs[cur].typed(cfg.dtype).reshape(ns, cfg.n),
                c_buf.as_array(cfg.dtype, count=ns * cfg.n).reshape(ns, cfg.n),
            )
        else:
            args = ()
        compute = ctx.device.launch(kernel, *args, cost_args=())
        if step < p - 1:
            # Forward the held stripe into the left neighbour's spare
            # buffer while the GEMM runs (overlap).
            diomp.put(left, b_bufs[nxt], b_bufs[cur].memref())
        compute.wait()
        diomp.fence()
        diomp.barrier()
        cur, nxt = nxt, cur
    elapsed_stats = _finish(ctx, cfg, c_buf, t0)
    diomp.barrier()
    return elapsed_stats


# ---------------------------------------------------------------------------
# MPI + OpenMP target variant
# ---------------------------------------------------------------------------


def cannon_mpi(ctx: RankContext, cfg: CannonConfig, mpi: MpiWorld) -> Dict[str, object]:
    """The MPI+OpenMP baseline: Isend/Irecv stripe forwarding."""
    from repro.omptarget import OmpTargetRuntime

    comm = mpi.comm_world(ctx.rank)
    rt = OmpTargetRuntime(ctx)
    p = comm.size
    ns = cfg.stripe(p)
    stripe_bytes = ns * cfg.n * cfg.itemsize
    virtual = not cfg.execute
    # Device memory through the stock libomptarget plugin (Fig. 1a):
    # private allocations, communicated via device pointers.
    a_buf = rt.omp_target_alloc(stripe_bytes, virtual=virtual)
    c_buf = rt.omp_target_alloc(stripe_bytes, virtual=virtual)
    b_bufs = [
        rt.omp_target_alloc(stripe_bytes, virtual=virtual),
        rt.omp_target_alloc(stripe_bytes, virtual=virtual),
    ]
    if cfg.execute:
        a_buf.as_array(cfg.dtype)[:] = _init_stripe(cfg, ctx.rank, p, "A").reshape(-1)
        b_bufs[0].as_array(cfg.dtype)[:] = _init_stripe(cfg, ctx.rank, p, "B").reshape(-1)
    kernel = _gemm_kernel(cfg, ns)
    left = (ctx.rank - 1) % p
    right = (ctx.rank + 1) % p
    mpi_coll.barrier(comm)
    t0 = ctx.sim.now
    cur, nxt = 0, 1
    nsteps = cfg.ring_steps(p)
    for step in range(nsteps):
        owner = (ctx.rank + step) % p
        requests = []
        if step < p - 1:
            requests.append(
                comm.irecv(MemRef.device(b_bufs[nxt]), source=right, tag=step)
            )
            requests.append(
                comm.isend(MemRef.device(b_bufs[cur]), dest=left, tag=step)
            )
        if cfg.execute:
            a_stripe = a_buf.as_array(cfg.dtype, count=ns * cfg.n).reshape(ns, cfg.n)
            args = (
                np.ascontiguousarray(a_stripe[:, owner * ns : (owner + 1) * ns]),
                b_bufs[cur].as_array(cfg.dtype, count=ns * cfg.n).reshape(ns, cfg.n),
                c_buf.as_array(cfg.dtype, count=ns * cfg.n).reshape(ns, cfg.n),
            )
        else:
            args = ()
        compute = ctx.device.launch(kernel, *args, cost_args=())
        compute.wait()
        for req in requests:
            req.wait()
        mpi_coll.barrier(comm)
        cur, nxt = nxt, cur
    result = _finish(ctx, cfg, c_buf, t0)
    mpi_coll.barrier(comm)
    return result


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_cannon(
    world: World,
    cfg: CannonConfig,
    impl: str = "diomp",
    runtime: Optional[DiompRuntime] = None,
    mpi: Optional[MpiWorld] = None,
) -> SpmdResult:
    """Launch the chosen implementation on every rank of ``world``.

    Returns the SPMD result; per-rank dicts hold ``elapsed`` and, in
    execute mode, the computed ``C`` stripe.
    """
    if impl == "diomp":
        if runtime is None:
            from repro.core.runtime import DiompParams

            stripe_bytes = cfg.stripe(world.nranks) * cfg.n * cfg.itemsize
            need = 6 * stripe_bytes + (1 << 20)
            runtime = DiompRuntime(world, DiompParams(segment_size=need))
        return run_spmd(world, cannon_diomp, cfg)
    if impl == "mpi":
        mpi = mpi or MpiWorld(world)
        return run_spmd(world, cannon_mpi, cfg, mpi)
    raise ConfigurationError(f"unknown cannon implementation {impl!r}")
