"""Evaluation applications (paper §4.4–§4.5).

* :mod:`repro.apps.cannon` — the ring-exchange matrix multiplication
  (Cannon-style 1-D stripe algorithm) with compute/communication
  overlap, in DiOMP and MPI+OpenMP-target variants (Fig. 7),
* :mod:`repro.apps.minimod` — the Minimod acoustic-isotropic
  finite-difference proxy app with halo exchange, in DiOMP
  (Listing 1) and MPI (Listing 2) variants (Fig. 8).

Both apps are dual-mode: ``execute=True`` runs real numpy numerics on
small problems (the correctness tests), ``execute=False`` uses virtual
device memory and calibrated kernel cost models at paper scale (the
benchmarks).
"""

from repro.apps.cannon import CannonConfig, run_cannon, cannon_reference
from repro.apps.minimod import MinimodConfig, run_minimod, minimod_reference

__all__ = [
    "CannonConfig",
    "run_cannon",
    "cannon_reference",
    "MinimodConfig",
    "run_minimod",
    "minimod_reference",
]
