"""Minimod: acoustic-isotropic finite-difference proxy app (§4.5, Fig. 8).

Minimod propagates a wavefield by solving the second-order acoustic
wave equation with a high-order (radius-4, i.e. 8th-order) stencil:

    ``u_next = 2 u - u_prev + (c dt)^2 * Laplacian(u)``

The domain (``nx x ny x nz``) is decomposed 1-D along x; each step
exchanges ``radius`` halo planes with each x-neighbour, then applies
the stencil to the interior.

The **DiOMP variant** is the paper's Listing 1: each rank pushes its
boundary planes into its neighbours' halo slots with ``ompx_put``
(device-to-device) followed by one ``ompx_fence`` — about half the
code of the MPI variant (Listing 2), which posts Isend/Irecv pairs on
``use_device_ptr`` addresses and waits on all four requests.

``execute=True`` runs the real stencil (small grids, verified against
a single-rank reference); ``execute=False`` models paper scale
(1200^3, 1000 steps) with virtual memory and the stencil cost model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.spmd import SpmdResult, run_spmd
from repro.cluster.world import RankContext, World
from repro.core.runtime import DiompRuntime
from repro.device.kernel import Kernel, stencil_cost
from repro.mpi import MpiWorld, waitall
from repro.mpi import collectives as mpi_coll
from repro.util.errors import ConfigurationError

#: radius-4 second-derivative coefficients (standard 8th-order FD)
_COEFFS = np.array(
    [-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0, 8.0 / 315.0, -1.0 / 560.0]
)


@dataclasses.dataclass(frozen=True)
class MinimodConfig:
    """Problem configuration."""

    nx: int
    ny: int
    nz: int
    steps: int
    execute: bool = True
    radius: int = 4
    #: Courant factor (c*dt/dx)^2 — stability requires a small value
    courant2: float = 0.1
    dtype: type = np.float32

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    def local_nx(self, nranks: int) -> int:
        if self.nx % nranks:
            raise ConfigurationError(f"nx={self.nx} must divide by {nranks} ranks")
        lnx = self.nx // nranks
        if lnx < self.radius:
            raise ConfigurationError(
                f"local slab of {lnx} planes is thinner than the stencil "
                f"radius {self.radius}"
            )
        return lnx

    @property
    def plane_elems(self) -> int:
        return self.ny * self.nz

    def halo_bytes(self) -> int:
        return self.radius * self.plane_elems * self.itemsize


def _initial_field(cfg: MinimodConfig) -> np.ndarray:
    """A deterministic point-source-like initial condition."""
    u = np.zeros((cfg.nx, cfg.ny, cfg.nz), dtype=cfg.dtype)
    u[cfg.nx // 2, cfg.ny // 2, cfg.nz // 2] = 1.0
    return u


def _laplacian(u: np.ndarray, radius: int) -> np.ndarray:
    """High-order Laplacian of the interior of a padded block.

    ``u`` is padded by ``radius`` on the x axis only (halo planes);
    y/z use zero boundaries (the array edges), matching the reference.
    """
    core = u[radius:-radius]
    lap = 3.0 * _COEFFS[0] * core
    for d in range(1, radius + 1):
        lap = lap + _COEFFS[d] * (u[radius + d :][: core.shape[0]] + u[radius - d : -radius - d])
        shifted_yp = np.zeros_like(core)
        shifted_yp[:, :-d, :] = core[:, d:, :]
        shifted_ym = np.zeros_like(core)
        shifted_ym[:, d:, :] = core[:, :-d, :]
        lap = lap + _COEFFS[d] * (shifted_yp + shifted_ym)
        shifted_zp = np.zeros_like(core)
        shifted_zp[:, :, :-d] = core[:, :, d:]
        shifted_zm = np.zeros_like(core)
        shifted_zm[:, :, d:] = core[:, :, :-d]
        lap = lap + _COEFFS[d] * (shifted_zp + shifted_zm)
    return lap


def minimod_reference(cfg: MinimodConfig) -> np.ndarray:
    """Single-domain reference propagation (test oracle)."""
    r = cfg.radius
    u = _initial_field(cfg)
    u_prev = u.copy()
    for _ in range(cfg.steps):
        padded = np.zeros((cfg.nx + 2 * r, cfg.ny, cfg.nz), dtype=cfg.dtype)
        padded[r:-r] = u
        u_next = 2.0 * u - u_prev + cfg.courant2 * _laplacian(padded, r)
        u_prev, u = u, u_next.astype(cfg.dtype)
    return u


def _stencil_kernel(cfg: MinimodConfig, lnx: int) -> Kernel:
    """One time step over the local slab (padded field layout:
    (lnx + 2r, ny, nz), x-major so halo planes are contiguous)."""
    r = cfg.radius

    def host_fn(u_pad: np.ndarray, u_prev_pad: np.ndarray) -> None:
        core = u_pad[r:-r]
        prev_core = u_prev_pad[r:-r]
        u_next = 2.0 * core - prev_core + cfg.courant2 * _laplacian(u_pad, r)
        # Time-level rotation: prev <- cur, cur <- next (in place).
        prev_core[:] = core
        core[:] = u_next.astype(cfg.dtype)

    return Kernel(
        name="minimod-stencil",
        cost=lambda *_a: stencil_cost(lnx * cfg.plane_elems),
        host_fn=host_fn if cfg.execute else None,
    )


def _field_shape(cfg: MinimodConfig, lnx: int):
    return (lnx + 2 * cfg.radius, cfg.ny, cfg.nz)


def _field_bytes(cfg: MinimodConfig, lnx: int) -> int:
    px, py, pz = _field_shape(cfg, lnx)
    return px * py * pz * cfg.itemsize


def _plane_offset(cfg: MinimodConfig, plane: int) -> int:
    """Byte offset of x-plane ``plane`` in the padded field."""
    return plane * cfg.plane_elems * cfg.itemsize


def _load_initial(cfg: MinimodConfig, rank: int, nranks: int, u_buf, dtype) -> None:
    lnx = cfg.local_nx(nranks)
    r = cfg.radius
    full = _initial_field(cfg)
    view = u_buf_view(cfg, u_buf, lnx)
    view[r : r + lnx] = full[rank * lnx : (rank + 1) * lnx]


def u_buf_view(cfg: MinimodConfig, buf, lnx: int) -> np.ndarray:
    return buf.as_array(cfg.dtype).reshape(_field_shape(cfg, lnx))


def _result(ctx, cfg: MinimodConfig, u_buf, lnx: int, t0: float) -> Dict[str, object]:
    out: Dict[str, object] = {"elapsed": ctx.sim.now - t0, "rank": ctx.rank}
    if cfg.execute:
        r = cfg.radius
        out["u"] = u_buf_view(cfg, u_buf, lnx)[r : r + lnx].copy()
    return out


# ---------------------------------------------------------------------------
# DiOMP variant — the paper's Listing 1
# ---------------------------------------------------------------------------


def minimod_diomp(ctx: RankContext, cfg: MinimodConfig) -> Dict[str, object]:
    diomp = ctx.diomp
    if diomp is None:
        raise ConfigurationError("minimod_diomp needs a DiompRuntime installed")
    p = ctx.nranks
    lnx = cfg.local_nx(p)
    r = cfg.radius
    virtual = not cfg.execute
    u = diomp.alloc(_field_bytes(cfg, lnx), virtual=virtual)
    u_prev = diomp.alloc(_field_bytes(cfg, lnx), virtual=virtual)
    if cfg.execute:
        _load_initial(cfg, ctx.rank, p, u.local, cfg.dtype)
        _load_initial(cfg, ctx.rank, p, u_prev.local, cfg.dtype)
    kernel = _stencil_kernel(cfg, lnx)
    halo = cfg.halo_bytes()
    diomp.barrier()
    t0 = ctx.sim.now
    for _step in range(cfg.steps):
        # Halo exchange (Listing 1): one-sided puts, D2D.
        if ctx.rank != 0:
            # My first interior planes -> left neighbour's right halo.
            diomp.put(
                ctx.rank - 1,
                u,
                u.memref(_plane_offset(cfg, r), halo),
                target_offset=_plane_offset(cfg, r + lnx),
            )
        if ctx.rank != p - 1:
            # My last interior planes -> right neighbour's left halo.
            diomp.put(
                ctx.rank + 1,
                u,
                u.memref(_plane_offset(cfg, lnx), halo),
                target_offset=_plane_offset(cfg, 0),
            )
        diomp.fence()
        diomp.barrier()
        if cfg.execute:
            args = (u_buf_view(cfg, u.local, lnx), u_buf_view(cfg, u_prev.local, lnx))
        else:
            args = ()
        ctx.device.launch(kernel, *args, cost_args=()).wait()
        diomp.barrier()
    out = _result(ctx, cfg, u.local, lnx, t0)
    diomp.barrier()
    return out


# ---------------------------------------------------------------------------
# DiOMP variant with communication/computation overlap
# ---------------------------------------------------------------------------


def _leapfrog_kernel(cfg: MinimodConfig, lo: int, hi: int) -> Kernel:
    """Update core planes ``[lo, hi)`` (core-relative), leapfrog style:
    the next time level is written into ``u_prev``'s storage, so both
    buffers of the current step are only *read* elsewhere — which is
    what makes interior/boundary/halo concurrency safe."""

    def host_fn(u_pad: np.ndarray, u_prev_pad: np.ndarray) -> None:
        r = cfg.radius
        core = u_pad[r:-r]
        prev = u_prev_pad[r:-r]
        lap = _laplacian(u_pad, r)[lo:hi]
        prev[lo:hi] = (
            2.0 * core[lo:hi] - prev[lo:hi] + cfg.courant2 * lap
        ).astype(cfg.dtype)

    return Kernel(
        name=f"minimod-leapfrog[{lo}:{hi}]",
        cost=lambda *_a: stencil_cost((hi - lo) * cfg.plane_elems),
        host_fn=host_fn if cfg.execute else None,
    )


def minimod_diomp_overlap(ctx: RankContext, cfg: MinimodConfig) -> Dict[str, object]:
    """Extension: hide the halo exchange under the interior update.

    Per step: (1) launch the interior stencil (planes that need no
    halo) asynchronously, (2) push halos one-sided while it runs,
    (3) fence, run the two boundary slabs, barrier, swap time levels.
    """
    diomp = ctx.diomp
    if diomp is None:
        raise ConfigurationError("minimod_diomp_overlap needs a DiompRuntime")
    p = ctx.nranks
    lnx = cfg.local_nx(p)
    r = cfg.radius
    if lnx < 2 * r:
        raise ConfigurationError(
            f"overlap variant needs local slabs of >= {2 * r} planes, got {lnx}"
        )
    virtual = not cfg.execute
    bufs = [
        diomp.alloc(_field_bytes(cfg, lnx), virtual=virtual),
        diomp.alloc(_field_bytes(cfg, lnx), virtual=virtual),
    ]
    if cfg.execute:
        _load_initial(cfg, ctx.rank, p, bufs[0].local, cfg.dtype)
        _load_initial(cfg, ctx.rank, p, bufs[1].local, cfg.dtype)
    # A slab of exactly 2r planes is all boundary: no interior kernel.
    has_interior = lnx > 2 * r
    interior = _leapfrog_kernel(cfg, r, lnx - r) if has_interior else None
    left_slab = _leapfrog_kernel(cfg, 0, r)
    right_slab = _leapfrog_kernel(cfg, lnx - r, lnx)
    halo = cfg.halo_bytes()
    stream = ctx.device.create_stream()
    diomp.barrier()
    t0 = ctx.sim.now
    cur, nxt = 0, 1  # u = bufs[cur], u_prev/u_next = bufs[nxt]
    for _step in range(cfg.steps):
        u, u_prev = bufs[cur], bufs[nxt]
        if cfg.execute:
            args = (
                u_buf_view(cfg, u.local, lnx),
                u_buf_view(cfg, u_prev.local, lnx),
            )
        else:
            args = ()
        inner = (
            ctx.device.launch(interior, *args, cost_args=(), stream=stream)
            if has_interior
            else None
        )
        # Halo exchange rides under the interior update.
        if ctx.rank != 0:
            diomp.put(
                ctx.rank - 1,
                u,
                u.memref(_plane_offset(cfg, r), halo),
                target_offset=_plane_offset(cfg, r + lnx),
            )
        if ctx.rank != p - 1:
            diomp.put(
                ctx.rank + 1,
                u,
                u.memref(_plane_offset(cfg, lnx), halo),
                target_offset=_plane_offset(cfg, 0),
            )
        diomp.fence()
        diomp.barrier()  # halos in place everywhere
        b1 = ctx.device.launch(left_slab, *args, cost_args=(), stream=stream)
        b2 = ctx.device.launch(right_slab, *args, cost_args=(), stream=stream)
        if inner is not None:
            inner.wait()
        b1.wait()
        b2.wait()
        diomp.barrier()
        cur, nxt = nxt, cur
    # After `steps` swaps the freshest time level sits in bufs[cur].
    out = _result(ctx, cfg, bufs[cur].local, lnx, t0)
    diomp.barrier()
    return out


# ---------------------------------------------------------------------------
# MPI + OpenMP target variant — the paper's Listing 2
# ---------------------------------------------------------------------------


def minimod_mpi(ctx: RankContext, cfg: MinimodConfig, mpi: MpiWorld) -> Dict[str, object]:
    from repro.omptarget import OmpTargetRuntime

    comm = mpi.comm_world(ctx.rank)
    rt = OmpTargetRuntime(ctx)
    p = comm.size
    lnx = cfg.local_nx(p)
    r = cfg.radius
    virtual = not cfg.execute
    u = rt.omp_target_alloc(_field_bytes(cfg, lnx), virtual=virtual)
    u_prev = rt.omp_target_alloc(_field_bytes(cfg, lnx), virtual=virtual)
    if cfg.execute:
        _load_initial(cfg, ctx.rank, p, u, cfg.dtype)
        _load_initial(cfg, ctx.rank, p, u_prev, cfg.dtype)
    kernel = _stencil_kernel(cfg, lnx)
    halo = cfg.halo_bytes()
    mpi_coll.barrier(comm)
    t0 = ctx.sim.now

    def dev_ref(plane: int) -> MemRef:
        return MemRef.device(u, offset=_plane_offset(cfg, plane), nbytes=halo)

    for _step in range(cfg.steps):
        # Halo exchange (Listing 2): four requests + Waitall.
        requests = []
        if ctx.rank != 0:
            requests.append(comm.irecv(dev_ref(0), source=ctx.rank - 1, tag=1))
            requests.append(comm.isend(dev_ref(r), dest=ctx.rank - 1, tag=2))
        if ctx.rank != p - 1:
            requests.append(comm.irecv(dev_ref(r + lnx), source=ctx.rank + 1, tag=2))
            requests.append(comm.isend(dev_ref(lnx), dest=ctx.rank + 1, tag=1))
        waitall(requests)
        mpi_coll.barrier(comm)
        if cfg.execute:
            args = (u_buf_view(cfg, u, lnx), u_buf_view(cfg, u_prev, lnx))
        else:
            args = ()
        ctx.device.launch(kernel, *args, cost_args=()).wait()
        mpi_coll.barrier(comm)
    out = _result(ctx, cfg, u, lnx, t0)
    mpi_coll.barrier(comm)
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_minimod(
    world: World,
    cfg: MinimodConfig,
    impl: str = "diomp",
    runtime: Optional[DiompRuntime] = None,
    mpi: Optional[MpiWorld] = None,
) -> SpmdResult:
    """Launch Minimod on every rank of ``world``."""
    if impl == "diomp":
        if runtime is None:
            from repro.core.runtime import DiompParams

            lnx = cfg.local_nx(world.nranks)
            need = 6 * _field_bytes(cfg, lnx) + (1 << 20)
            runtime = DiompRuntime(world, DiompParams(segment_size=need))
        return run_spmd(world, minimod_diomp, cfg)
    if impl == "diomp-overlap":
        if runtime is None:
            from repro.core.runtime import DiompParams

            lnx = cfg.local_nx(world.nranks)
            need = 6 * _field_bytes(cfg, lnx) + (1 << 20)
            runtime = DiompRuntime(world, DiompParams(segment_size=need))
        return run_spmd(world, minimod_diomp_overlap, cfg)
    if impl == "mpi":
        mpi = mpi or MpiWorld(world)
        return run_spmd(world, minimod_mpi, cfg, mpi)
    raise ConfigurationError(f"unknown minimod implementation {impl!r}")
