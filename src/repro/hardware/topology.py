"""Cluster topology graph and communication path queries.

The topology answers the question the DiOMP runtime asks before every
transfer (paper §3.2): *given two endpoints, what is the best physical
path and what are its parameters?*  Four path kinds exist:

* ``SAME_DEVICE`` — a local device copy,
* ``PEER_DIRECT`` — GPUs on one node joined by NVLink/xGMI,
* ``HOST_STAGED`` — GPUs on one node without a direct link (PCIe via
  the host),
* ``INTER_NODE`` — through the NICs and the cluster fabric.

A :class:`Path` carries the effective latency, the effective bandwidth
(after NIC quirks), and the list of *resource keys* — the physical
links the transfer occupies — which the network fabric uses to model
contention.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple

import networkx as nx

from repro.hardware.node import NodeSpec
from repro.util.errors import ConfigurationError
from repro.util.units import US


@dataclasses.dataclass(frozen=True, order=True)
class DeviceId:
    """Globally unique endpoint identifier.

    ``kind`` is ``"gpu"`` or ``"host"``; ``index`` is the device index
    within its node (0 for hosts).
    """

    kind: str
    node: int
    index: int

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "host"):
            raise ConfigurationError(f"bad device kind {self.kind!r}")

    def __str__(self) -> str:
        if self.kind == "host":
            return f"host{self.node}"
        return f"gpu{self.node}.{self.index}"


class PathKind(enum.Enum):
    SAME_DEVICE = "same-device"
    PEER_DIRECT = "peer-direct"
    HOST_STAGED = "host-staged"
    INTER_NODE = "inter-node"


#: Latency of a device-local copy (queue + DMA setup).
_LOCAL_COPY_LATENCY = 0.5 * US


@dataclasses.dataclass(frozen=True)
class Path:
    """The resolved physical route between two endpoints."""

    kind: PathKind
    latency: float
    bandwidth: float
    #: resource keys (unique physical link names) the transfer occupies
    resources: Tuple[str, ...]
    #: whether GPUs on this path may enable direct peer access
    peer_capable: bool = True

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded end-to-end time for a message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError(f"negative transfer size {nbytes}")
        return self.latency + nbytes / self.bandwidth


class ClusterTopology:
    """``num_nodes`` replicas of a :class:`NodeSpec`, linked by a fabric.

    The fabric core is modelled as non-blocking (standard fat-tree
    assumption): only NICs and intra-node links are contended
    resources.
    """

    def __init__(self, node_spec: NodeSpec, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
        self.node_spec = node_spec
        self.num_nodes = num_nodes
        self.graph = nx.Graph()
        self._build_graph()

    # -- construction ----------------------------------------------------

    def _build_graph(self) -> None:
        spec = self.node_spec
        for n in range(self.num_nodes):
            host = DeviceId("host", n, 0)
            self.graph.add_node(host, spec=spec.cpu)
            for g in range(spec.gpus_per_node):
                gpu = DeviceId("gpu", n, g)
                self.graph.add_node(gpu, spec=spec.gpu)
                self.graph.add_edge(
                    host, gpu, link=spec.host_link, key=f"node{n}/host-gpu{g}"
                )
            for i in range(spec.gpus_per_node):
                for j in range(i + 1, spec.gpus_per_node):
                    link = spec.link_between(i, j)
                    if link is not None:
                        self.graph.add_edge(
                            DeviceId("gpu", n, i),
                            DeviceId("gpu", n, j),
                            link=link,
                            key=f"node{n}/gpu{i}-gpu{j}",
                        )

    # Resource keys are *directional*: modern fabrics (Slingshot, NDR,
    # NVLink, xGMI, PCIe) are full duplex, so the two directions of a
    # link are independent contention domains.

    @staticmethod
    def _host_link_key(node: int, gpu: int, direction: str) -> str:
        return f"node{node}/host-gpu{gpu}/{direction}"

    @staticmethod
    def _pair_link_key(node: int, src: int, dst: int) -> str:
        return f"node{node}/gpu{src}->gpu{dst}"

    def _nic_key(self, node: int, nic_index: int, direction: str) -> str:
        return f"node{node}/nic{nic_index}/{direction}"

    # -- lookups ---------------------------------------------------------------

    def gpu(self, node: int, index: int) -> DeviceId:
        """The :class:`DeviceId` for a GPU, with bounds checking."""
        self._check_node(node)
        if not 0 <= index < self.node_spec.gpus_per_node:
            raise ConfigurationError(
                f"gpu index {index} out of range on node {node} "
                f"(node has {self.node_spec.gpus_per_node})"
            )
        return DeviceId("gpu", node, index)

    def host(self, node: int) -> DeviceId:
        self._check_node(node)
        return DeviceId("host", node, 0)

    def all_gpus(self) -> List[DeviceId]:
        """Every GPU in the cluster, ordered (node-major)."""
        return [
            DeviceId("gpu", n, g)
            for n in range(self.num_nodes)
            for g in range(self.node_spec.gpus_per_node)
        ]

    @property
    def total_gpus(self) -> int:
        return self.num_nodes * self.node_spec.gpus_per_node

    def nic_for(self, device: DeviceId) -> int:
        """The NIC index a device injects through (GPUs are striped
        across the node's NICs, as on Perlmutter/Frontier)."""
        if device.kind == "host":
            return 0
        return device.index % self.node_spec.nics_per_node

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ConfigurationError(
                f"node {node} out of range (cluster has {self.num_nodes})"
            )

    # -- path resolution --------------------------------------------------------

    def path(
        self,
        src: DeviceId,
        dst: DeviceId,
        operation: str = "put",
        gpu_memory: bool = True,
        rails: int = 1,
        force_network: bool = False,
    ) -> Path:
        """Resolve the best physical route from ``src`` to ``dst``.

        ``operation`` ("put" | "get") and ``gpu_memory`` exist so NIC
        quirks (e.g. the Platform-A GPU-put degradation) can apply.
        ``rails > 1`` requests multirail striping: large messages are
        split across up to that many of the node's NICs (the Slingshot
        multi-NIC feature both GASNet-EX and Cray MPICH exploit);
        intra-node paths ignore it.  ``force_network`` makes even a
        same-node pair loop through the NICs — what a network conduit
        does without an intra-node shared-memory/IPC layer, and the
        thing DiOMP's hierarchical path selection avoids.
        """
        for dev in (src, dst):
            if dev not in self.graph:
                raise ConfigurationError(f"unknown device {dev}")
        if src == dst:
            bw = (
                self.node_spec.gpu.mem_bandwidth
                if src.kind == "gpu"
                else self.node_spec.host_link.bandwidth
            )
            return Path(PathKind.SAME_DEVICE, _LOCAL_COPY_LATENCY, bw, ())
        if src.node == dst.node and not force_network:
            return self._intra_node_path(src, dst)
        return self._inter_node_path(src, dst, operation, gpu_memory, rails)

    def _intra_node_path(self, src: DeviceId, dst: DeviceId) -> Path:
        spec = self.node_spec
        if src.kind == "gpu" and dst.kind == "gpu":
            link = spec.link_between(src.index, dst.index)
            if link is not None:
                return Path(
                    PathKind.PEER_DIRECT,
                    link.latency,
                    link.bandwidth,
                    (self._pair_link_key(src.node, src.index, dst.index),),
                    peer_capable=link.peer_capable,
                )
            host = spec.host_link
            return Path(
                PathKind.HOST_STAGED,
                2 * host.latency,
                host.bandwidth,
                (
                    self._host_link_key(src.node, src.index, "d2h"),
                    self._host_link_key(dst.node, dst.index, "h2d"),
                ),
                peer_capable=False,
            )
        # host<->gpu
        gpu = src if src.kind == "gpu" else dst
        direction = "d2h" if src.kind == "gpu" else "h2d"
        host = spec.host_link
        return Path(
            PathKind.HOST_STAGED,
            host.latency,
            host.bandwidth,
            (self._host_link_key(gpu.node, gpu.index, direction),),
            peer_capable=False,
        )

    def _inter_node_path(
        self, src: DeviceId, dst: DeviceId, operation: str, gpu_memory: bool, rails: int = 1
    ) -> Path:
        spec = self.node_spec
        nic = spec.nic
        src_nic = self.nic_for(src)
        dst_nic = self.nic_for(dst)
        latency = nic.latency
        rails_eff = max(1, min(rails, spec.nics_per_node))
        bandwidth = nic.effective_bandwidth(operation, gpu_memory) * rails_eff
        resources = []
        for r in range(rails_eff):
            resources.append(
                self._nic_key(src.node, (src_nic + r) % spec.nics_per_node, "tx")
            )
            resources.append(
                self._nic_key(dst.node, (dst_nic + r) % spec.nics_per_node, "rx")
            )
        if not nic.gpudirect_rdma and gpu_memory:
            # Stage through host memory on both sides.
            host = spec.host_link
            latency += 2 * host.latency
            bandwidth = min(bandwidth, host.bandwidth)
            if src.kind == "gpu":
                resources.append(self._host_link_key(src.node, src.index, "d2h"))
            if dst.kind == "gpu":
                resources.append(self._host_link_key(dst.node, dst.index, "h2d"))
        return Path(PathKind.INTER_NODE, latency, bandwidth, tuple(resources))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ClusterTopology {self.num_nodes}x{self.node_spec.name} "
            f"({self.total_gpus} GPUs)>"
        )
