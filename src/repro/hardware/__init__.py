"""Hardware models for the simulated clusters.

This package is pure description — no simulation logic.  It defines

* spec dataclasses (:mod:`repro.hardware.specs`),
* a catalog of calibrated instances for the devices the paper uses
  (:mod:`repro.hardware.catalog`): NVIDIA A100, AMD MI250X GCDs,
  GH200, Slingshot-11 and NDR InfiniBand NICs, NVLink/xGMI/PCIe links,
* node composition (:mod:`repro.hardware.node`),
* the cluster topology graph and path queries
  (:mod:`repro.hardware.topology`), and
* factories for the paper's Platform A/B/C
  (:mod:`repro.hardware.platforms`).

Calibration constants come from public spec sheets; software overheads
are model inputs documented in DESIGN.md §6.
"""

from repro.hardware.specs import GPUSpec, CPUSpec, NICSpec, LinkSpec, NICQuirk
from repro.hardware.catalog import (
    A100,
    MI250X_GCD,
    GH200,
    EPYC_7763,
    EPYC_7A53,
    GRACE,
    SLINGSHOT_11,
    NDR_INFINIBAND,
    NVLINK3,
    XGMI_INTRA_MODULE,
    XGMI_INTER_MODULE,
    PCIE4_X16,
    NVLINK_C2C,
)
from repro.hardware.node import NodeSpec
from repro.hardware.topology import ClusterTopology, DeviceId, Path, PathKind
from repro.hardware.platforms import (
    PlatformSpec,
    platform_a,
    platform_b,
    platform_c,
    get_platform,
    PLATFORMS,
)

__all__ = [
    "GPUSpec",
    "CPUSpec",
    "NICSpec",
    "LinkSpec",
    "NICQuirk",
    "A100",
    "MI250X_GCD",
    "GH200",
    "EPYC_7763",
    "EPYC_7A53",
    "GRACE",
    "SLINGSHOT_11",
    "NDR_INFINIBAND",
    "NVLINK3",
    "XGMI_INTRA_MODULE",
    "XGMI_INTER_MODULE",
    "PCIE4_X16",
    "NVLINK_C2C",
    "NodeSpec",
    "ClusterTopology",
    "DeviceId",
    "Path",
    "PathKind",
    "PlatformSpec",
    "platform_a",
    "platform_b",
    "platform_c",
    "get_platform",
    "PLATFORMS",
]
