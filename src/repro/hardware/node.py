"""Node composition: which devices a node contains and how they are wired.

A :class:`NodeSpec` is a template; the cluster topology replicates it
per node.  Intra-node GPU wiring is expressed as a function
``gpu_link(i, j) -> LinkSpec | None`` so the MI250X's two-tier xGMI
(fast within a module, slower across modules) and fully-connected
NVLink meshes are both expressible.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.hardware.specs import CPUSpec, GPUSpec, LinkSpec, NICSpec
from repro.util.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """Template for one cluster node."""

    name: str
    cpu: CPUSpec
    gpu: GPUSpec
    gpus_per_node: int
    nic: NICSpec
    nics_per_node: int
    #: link used between a GPU pair on this node, or None for PCIe-via-host
    gpu_link: Callable[[int, int], Optional[LinkSpec]]
    #: link between host and each GPU
    host_link: LinkSpec

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ConfigurationError(f"{self.name}: need at least one GPU")
        if self.nics_per_node <= 0:
            raise ConfigurationError(f"{self.name}: need at least one NIC")

    def link_between(self, gpu_i: int, gpu_j: int) -> Optional[LinkSpec]:
        """The direct link between two local GPUs, or None if the pair
        must stage through the host (PCIe)."""
        if gpu_i == gpu_j:
            raise ConfigurationError("link_between called with identical GPUs")
        for idx in (gpu_i, gpu_j):
            if not 0 <= idx < self.gpus_per_node:
                raise ConfigurationError(
                    f"{self.name}: GPU index {idx} out of range "
                    f"(node has {self.gpus_per_node})"
                )
        return self.gpu_link(gpu_i, gpu_j)


def all_to_all(link: LinkSpec) -> Callable[[int, int], Optional[LinkSpec]]:
    """Every GPU pair shares the same direct link (NVLink mesh)."""

    def wiring(i: int, j: int) -> Optional[LinkSpec]:
        return link

    return wiring


def mi250x_wiring(
    intra_module: LinkSpec, inter_module: LinkSpec
) -> Callable[[int, int], Optional[LinkSpec]]:
    """MI250X wiring: GCDs 2k and 2k+1 form one module.

    Intra-module pairs get the fast in-package fabric; every other pair
    gets the slower inter-module xGMI.
    """

    def wiring(i: int, j: int) -> Optional[LinkSpec]:
        if i // 2 == j // 2:
            return intra_module
        return inter_module

    return wiring


def no_direct_link() -> Callable[[int, int], Optional[LinkSpec]]:
    """GPUs can only reach each other through the host (PCIe staging)."""

    def wiring(i: int, j: int) -> Optional[LinkSpec]:
        return None

    return wiring
