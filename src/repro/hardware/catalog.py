"""Calibrated spec instances for the hardware the paper evaluates on.

Sources (public spec sheets / vendor docs):

* **NVIDIA A100-SXM4-40GB** — 9.7 TF FP64 vector, 19.5 TF FP64 tensor,
  HBM2e ~2.0 TB/s, NVLink3 300 GB/s/direction aggregate.
* **AMD MI250X** — 47.9 TF FP64 per module (two GCDs), HBM2e 3.2 TB/s
  per module; per GCD: ~24 TF, 1.6 TB/s.  GCDs within a module talk
  over in-package Infinity Fabric (~200 GB/s), across modules ~50 GB/s.
* **NVIDIA GH200 (Grace Hopper)** — H100 ~34 TF FP64 vector / 67 TF
  tensor, HBM3 ~4 TB/s, NVLink-C2C 450 GB/s/direction to Grace.
* **HPE Slingshot 11** — 200 Gb/s (25 GB/s) per NIC, ~1.9 µs put
  latency in practice.
* **NDR InfiniBand (200 Gb as deployed on Platform C)** — 25 GB/s,
  ~1.5 µs.
* **PCIe 4.0 x16** — 32 GB/s theoretical, ~26 GB/s effective.

Software overheads (kernel launch, message posting) are calibrated to
commonly reported values (order of microseconds) and are model inputs.
"""

from __future__ import annotations

from repro.hardware.specs import CPUSpec, GPUSpec, LinkSpec, NICQuirk, NICSpec
from repro.util.units import GB, GiB, US

# --------------------------------------------------------------------------
# GPUs
# --------------------------------------------------------------------------

A100 = GPUSpec(
    name="A100-SXM4-40GB",
    vendor="nvidia",
    memory_bytes=40 * GiB,
    mem_bandwidth=2.0e12,
    fp64_tflops=9.7,
    gemm_tflops=19.5,
    kernel_launch_overhead=4.0 * US,
    ipc_open_overhead=50.0 * US,
)

MI250X_GCD = GPUSpec(
    name="MI250X-GCD",
    vendor="amd",
    memory_bytes=64 * GiB,
    mem_bandwidth=1.6e12,
    fp64_tflops=23.9,
    gemm_tflops=47.9,
    # ROCm launch overheads are commonly measured a bit above CUDA's.
    kernel_launch_overhead=6.0 * US,
    ipc_open_overhead=60.0 * US,
)

GH200 = GPUSpec(
    name="GH200-H100",
    vendor="nvidia",
    memory_bytes=96 * GiB,
    mem_bandwidth=4.0e12,
    fp64_tflops=33.5,
    gemm_tflops=66.9,
    kernel_launch_overhead=3.0 * US,
    ipc_open_overhead=40.0 * US,
)

# --------------------------------------------------------------------------
# CPUs
# --------------------------------------------------------------------------

EPYC_7763 = CPUSpec(name="EPYC-7763", cores=64, core_gflops=39.0)
EPYC_7A53 = CPUSpec(name="EPYC-7A53", cores=64, core_gflops=32.0)
GRACE = CPUSpec(name="Grace", cores=72, core_gflops=54.0)

# --------------------------------------------------------------------------
# NICs
# --------------------------------------------------------------------------

#: The Platform-A anomaly from Fig. 4: vendor-confirmed driver issue
#: degrading one-sided put bandwidth from GPU memory over Slingshot 11.
SLINGSHOT_A100_PUT_QUIRK = NICQuirk(
    name="slingshot11-a100-gpu-put-degradation",
    operation="put",
    bandwidth_factor=0.30,
    gpu_memory_only=True,
)

SLINGSHOT_11 = NICSpec(
    name="Slingshot-11",
    bandwidth=25.0 * GB,
    latency=1.9 * US,
    message_overhead=0.25 * US,
    gpudirect_rdma=True,
)

NDR_INFINIBAND = NICSpec(
    name="NDR-InfiniBand-200Gb",
    bandwidth=25.0 * GB,
    latency=1.5 * US,
    message_overhead=0.20 * US,
    gpudirect_rdma=True,
)

# --------------------------------------------------------------------------
# Intra-node links
# --------------------------------------------------------------------------

NVLINK3 = LinkSpec(name="NVLink3", bandwidth=300.0 * GB, latency=1.8 * US)

#: Infinity Fabric between the two GCDs of one MI250X module.
XGMI_INTRA_MODULE = LinkSpec(
    name="xGMI-intra-module", bandwidth=200.0 * GB, latency=1.6 * US
)

#: Infinity Fabric between GCDs of different MI250X modules.
XGMI_INTER_MODULE = LinkSpec(
    name="xGMI-inter-module", bandwidth=50.0 * GB, latency=2.0 * US
)

PCIE4_X16 = LinkSpec(
    name="PCIe4-x16", bandwidth=26.0 * GB, latency=2.5 * US, peer_capable=False
)

#: Grace<->Hopper coherent link on GH200.
NVLINK_C2C = LinkSpec(name="NVLink-C2C", bandwidth=450.0 * GB, latency=1.0 * US)
