"""Spec dataclasses for GPUs, CPUs, NICs and links.

All bandwidths are bytes/second, all times seconds, all capacities
bytes.  These are *model inputs*: the catalog instantiates them from
public spec sheets, and every timing the simulator produces is a
deterministic function of them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.util.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """A GPU (or GCD — the MI250X exposes two of these per module).

    ``fp64_tflops`` is the vector (non-tensor) peak, which is what the
    paper's stencil and GEMM kernels are modelled against;
    ``gemm_tflops`` is the matrix-engine peak used for GEMM.
    """

    name: str
    vendor: str  # "nvidia" | "amd"
    memory_bytes: int
    mem_bandwidth: float
    fp64_tflops: float
    gemm_tflops: float
    #: host-side cost of launching one kernel
    kernel_launch_overhead: float
    #: cost of opening an IPC memory handle (first use, then cached)
    ipc_open_overhead: float

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0 or self.mem_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: invalid memory spec")
        if self.fp64_tflops <= 0 or self.gemm_tflops <= 0:
            raise ConfigurationError(f"{self.name}: invalid flops spec")

    @property
    def fp64_flops(self) -> float:
        """Vector FP64 peak in flop/s."""
        return self.fp64_tflops * 1e12

    @property
    def gemm_flops(self) -> float:
        """Matrix-engine FP64 peak in flop/s."""
        return self.gemm_tflops * 1e12


@dataclasses.dataclass(frozen=True)
class CPUSpec:
    """Host CPU: only the properties the runtime model needs."""

    name: str
    cores: int
    #: per-core host compute throughput used for host-side work models
    core_gflops: float

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"{self.name}: cores must be positive")


@dataclasses.dataclass(frozen=True)
class NICQuirk:
    """A documented hardware/driver anomaly attached to a NIC.

    The paper's Platform A exhibits a vendor-confirmed driver issue that
    degrades one-sided *put* bandwidth from GPU memory over Slingshot 11
    (Fig. 4 footnote).  We model it as a multiplicative bandwidth factor
    applied to matching operations so the reproduced Fig. 4 shows the
    same anomaly, clearly attributed to the NIC model rather than the
    runtime.
    """

    name: str
    #: operation the quirk applies to: "put" | "get" | "all"
    operation: str
    #: multiplies effective bandwidth (0 < factor <= 1)
    bandwidth_factor: float
    #: only applies to transfers from/to GPU memory
    gpu_memory_only: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.bandwidth_factor <= 1.0):
            raise ConfigurationError(
                f"quirk {self.name}: bandwidth_factor must be in (0, 1]"
            )
        if self.operation not in ("put", "get", "all"):
            raise ConfigurationError(f"quirk {self.name}: bad operation")

    def applies(self, operation: str, gpu_memory: bool) -> bool:
        if self.gpu_memory_only and not gpu_memory:
            return False
        return self.operation in ("all", operation)


@dataclasses.dataclass(frozen=True)
class NICSpec:
    """Network interface: one port into the cluster fabric."""

    name: str
    bandwidth: float
    latency: float
    #: per-message host overhead (descriptor posting, doorbell)
    message_overhead: float
    #: True if the NIC can DMA straight from GPU memory (GPUDirect RDMA)
    gpudirect_rdma: bool = True
    quirk: Optional[NICQuirk] = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0 or self.message_overhead < 0:
            raise ConfigurationError(f"{self.name}: invalid NIC spec")

    def effective_bandwidth(self, operation: str, gpu_memory: bool) -> float:
        """Bandwidth after applying any quirk for this operation."""
        if self.quirk is not None and self.quirk.applies(operation, gpu_memory):
            return self.bandwidth * self.quirk.bandwidth_factor
        return self.bandwidth


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """An intra-node point-to-point link (NVLink, xGMI, PCIe, C2C)."""

    name: str
    bandwidth: float
    latency: float
    #: whether GPUs on this link can enable direct peer access
    peer_capable: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ConfigurationError(f"{self.name}: invalid link spec")


def describe(spec: object) -> Dict[str, object]:
    """Flatten any spec dataclass into a plain dict (for reports)."""
    if not dataclasses.is_dataclass(spec):
        raise TypeError(f"not a spec dataclass: {spec!r}")
    return dataclasses.asdict(spec)
