"""Factories for the paper's evaluation platforms (§4.1).

* **Platform A** — AMD EPYC 7763 + 4× NVIDIA A100 per node, NVLink3
  mesh, 4× HPE Slingshot 11 NICs.  (Perlmutter-class.)  Carries the
  documented GPU-put NIC quirk from Fig. 4.
* **Platform B** — AMD EPYC 7A53 + 4× MI250X per node (= 8 GCDs,
  i.e. 8 OpenMP devices), two-tier xGMI, 4× Slingshot 11.
  (Frontier-class.)
* **Platform C** — NVIDIA Grace Hopper GH200, one superchip per node,
  NVLink-C2C host link, 200 Gb NDR InfiniBand.

Each platform also records the software stack the paper pairs with it:
the vendor collective library (NCCL/RCCL) and the MPI baseline
(Cray MPICH / OpenMPI).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from repro.hardware.catalog import (
    A100,
    EPYC_7763,
    EPYC_7A53,
    GH200,
    GRACE,
    MI250X_GCD,
    NDR_INFINIBAND,
    NVLINK3,
    NVLINK_C2C,
    PCIE4_X16,
    SLINGSHOT_11,
    SLINGSHOT_A100_PUT_QUIRK,
    XGMI_INTER_MODULE,
    XGMI_INTRA_MODULE,
)
from repro.hardware.node import NodeSpec, all_to_all, mi250x_wiring
from repro.hardware.topology import ClusterTopology
from repro.util.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """A named evaluation platform: node template + software stack."""

    name: str
    description: str
    node: NodeSpec
    #: "slingshot" | "infiniband" — selects the conduit network adapter
    interconnect: str
    #: vendor collective library: "nccl" | "rccl"
    ccl: str
    #: MPI baseline used in the paper's comparisons
    mpi_name: str

    def cluster(self, num_nodes: int) -> ClusterTopology:
        """Instantiate a cluster of ``num_nodes`` nodes of this platform."""
        return ClusterTopology(self.node, num_nodes)

    @property
    def gpus_per_node(self) -> int:
        return self.node.gpus_per_node


def platform_a(with_quirk: bool = True) -> PlatformSpec:
    """Platform A: A100 + Slingshot 11 (Perlmutter-class).

    ``with_quirk=False`` disables the documented GPU-put NIC anomaly —
    used by the ablation bench to show what Fig. 4 would look like on
    healthy drivers.
    """
    nic = SLINGSHOT_11
    if with_quirk:
        nic = dataclasses.replace(nic, quirk=SLINGSHOT_A100_PUT_QUIRK)
    node = NodeSpec(
        name="platformA-node",
        cpu=EPYC_7763,
        gpu=A100,
        gpus_per_node=4,
        nic=nic,
        nics_per_node=4,
        gpu_link=all_to_all(NVLINK3),
        host_link=PCIE4_X16,
    )
    return PlatformSpec(
        name="A",
        description="AMD EPYC 7763 + 4x NVIDIA A100, 4x HPE Slingshot 11",
        node=node,
        interconnect="slingshot",
        ccl="nccl",
        mpi_name="cray-mpich",
    )


def platform_b() -> PlatformSpec:
    """Platform B: MI250X + Slingshot 11 (Frontier-class).

    One node exposes 8 OpenMP devices (4 modules x 2 GCDs).
    """
    node = NodeSpec(
        name="platformB-node",
        cpu=EPYC_7A53,
        gpu=MI250X_GCD,
        gpus_per_node=8,
        nic=SLINGSHOT_11,
        nics_per_node=4,
        gpu_link=mi250x_wiring(XGMI_INTRA_MODULE, XGMI_INTER_MODULE),
        host_link=PCIE4_X16,
    )
    return PlatformSpec(
        name="B",
        description="AMD EPYC 7A53 + 4x MI250X (8 GCDs), 4x HPE Slingshot 11",
        node=node,
        interconnect="slingshot",
        ccl="rccl",
        mpi_name="cray-mpich",
    )


def platform_c() -> PlatformSpec:
    """Platform C: GH200 superchips on NDR InfiniBand."""
    node = NodeSpec(
        name="platformC-node",
        cpu=GRACE,
        gpu=GH200,
        gpus_per_node=1,
        nic=NDR_INFINIBAND,
        nics_per_node=1,
        gpu_link=all_to_all(NVLINK3),  # vacuous with one GPU per node
        host_link=NVLINK_C2C,
    )
    return PlatformSpec(
        name="C",
        description="NVIDIA GH200 Grace Hopper, 200Gb NDR InfiniBand",
        node=node,
        interconnect="infiniband",
        ccl="nccl",
        mpi_name="openmpi",
    )


PLATFORMS: Dict[str, Callable[[], PlatformSpec]] = {
    "A": platform_a,
    "B": platform_b,
    "C": platform_c,
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by its paper letter ("A" | "B" | "C")."""
    try:
        factory = PLATFORMS[name.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
    return factory()
