"""Host-side OpenMP compute model.

The deployment trade-off of §3.3: with one MPI rank per GPU, the
node's CPU cores are partitioned across ranks, so each process's
``#pragma omp parallel for`` only ever sees its share; DiOMP's
single-process multi-GPU mode keeps the *whole* socket available to
one OpenMP runtime.  :func:`host_parallel_for` models a host parallel
region at a rank's thread count, and
:func:`~repro.cluster.world.RankContext.host_threads` exposes the
share the launch configuration gives a rank.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.world import RankContext
from repro.util.errors import ConfigurationError

#: sustained fraction of peak a tuned OpenMP loop reaches per core
_HOST_EFFICIENCY = 0.80


def host_threads(ctx: RankContext) -> int:
    """CPU threads available to one rank (cores split across the
    node's ranks — the "fragmented CPU control" of §3.3)."""
    cores = ctx.world.platform.node.cpu.cores
    return max(1, cores // ctx.world.ranks_per_node)


def host_parallel_for(
    ctx: RankContext,
    items: int,
    flops_per_item: float,
    threads: Optional[int] = None,
) -> float:
    """Run a host ``parallel for`` of ``items`` iterations.

    Advances the rank's virtual clock by the modelled duration and
    returns it.  ``threads`` defaults to the rank's share of the node's
    cores; asking for more than the share raises — that is precisely
    what a partitioned launch cannot do.
    """
    if items < 0 or flops_per_item < 0:
        raise ConfigurationError("negative host workload")
    share = host_threads(ctx)
    if threads is None:
        threads = share
    if threads <= 0:
        raise ConfigurationError(f"thread count must be positive, got {threads}")
    if threads > share:
        raise ConfigurationError(
            f"rank {ctx.rank} owns {share} of the node's cores; "
            f"{threads} threads would oversubscribe its partition "
            "(use fewer ranks per node to widen the share)"
        )
    cpu = ctx.world.platform.node.cpu
    rate = threads * cpu.core_gflops * 1e9 * _HOST_EFFICIENCY
    duration = (items * flops_per_item) / rate if rate > 0 else 0.0
    ctx.sim.sleep(duration)
    return duration
