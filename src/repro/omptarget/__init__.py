"""libomptarget: the OpenMP target-offload runtime.

The pieces the paper extends:

* :mod:`repro.omptarget.mapping` — the present table: host↔device
  mapping entries with reference counts and ``to``/``from``/``tofrom``/
  ``alloc`` map-clause semantics,
* :mod:`repro.omptarget.plugin` — the device plugin interface
  (``data_alloc``/``data_delete``/``data_submit``/``data_retrieve``).
  :class:`~repro.omptarget.plugin.NativePlugin` allocates straight from
  the device (the Fig. 1a baseline); DiOMP installs its own plugin that
  redirects allocations into the PGAS global segment (Fig. 1b),
* :mod:`repro.omptarget.runtime` — ``#pragma omp target`` execution:
  map, launch, synchronize, unmap, plus ``target enter/exit data`` and
  ``omp_target_alloc``.
"""

from repro.omptarget.mapping import MapType, Map, VirtualArray, MappingTable
from repro.omptarget.plugin import DevicePlugin, NativePlugin
from repro.omptarget.runtime import OmpTargetRuntime
from repro.omptarget.host import host_parallel_for, host_threads
from repro.omptarget.tasks import TargetTask, TargetTaskQueue

__all__ = [
    "TargetTask",
    "TargetTaskQueue",
    "MapType",
    "Map",
    "VirtualArray",
    "MappingTable",
    "DevicePlugin",
    "NativePlugin",
    "OmpTargetRuntime",
    "host_parallel_for",
    "host_threads",
]
