"""The present table: host-to-device mapping with OpenMP semantics.

OpenMP's data-mapping rules in brief: mapping an object that is not
present allocates device memory and (for ``to``/``tofrom``) copies in;
mapping an already-present object just bumps its reference count;
unmapping decrements, and only the 1→0 transition copies out (for
``from``/``tofrom``) and deallocates.  This is exactly the metadata
DiOMP unifies with the communication layer's registration (Fig. 1).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional, Union

import numpy as np

from repro.device.memory import DeviceBuffer
from repro.util.errors import AllocationError, ConfigurationError


class MapType(enum.Enum):
    """``map(...)`` clause kinds."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"

    @property
    def copies_in(self) -> bool:
        return self in (MapType.TO, MapType.TOFROM)

    @property
    def copies_out(self) -> bool:
        return self in (MapType.FROM, MapType.TOFROM)


class VirtualArray:
    """A size-only stand-in for a host array (paper-scale problems).

    Mapping a VirtualArray allocates *virtual* device memory: transfers
    and kernels are timed but carry no data.
    """

    def __init__(self, nbytes: int, name: str = "") -> None:
        if nbytes <= 0:
            raise ConfigurationError(f"VirtualArray needs positive size, got {nbytes}")
        self.nbytes = nbytes
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualArray {self.name or ''} {self.nbytes}B>"


HostObject = Union[np.ndarray, VirtualArray]


@dataclasses.dataclass(frozen=True)
class Map:
    """One ``map(kind: obj)`` clause."""

    obj: HostObject
    kind: MapType = MapType.TOFROM

    @property
    def nbytes(self) -> int:
        return self.obj.nbytes

    @property
    def is_virtual(self) -> bool:
        return isinstance(self.obj, VirtualArray)


@dataclasses.dataclass
class MappingEntry:
    """Present-table row."""

    host_obj: HostObject
    device_buffer: DeviceBuffer
    refcount: int = 1


class MappingTable:
    """Host-object → device-buffer present table for one device."""

    def __init__(self) -> None:
        self._entries: Dict[int, MappingEntry] = {}
        #: lifetime counters, inspected by the Fig. 1 ablation bench
        self.total_mappings = 0
        self.total_unmappings = 0

    def _key(self, obj: HostObject) -> int:
        return id(obj)

    def lookup(self, obj: HostObject) -> Optional[MappingEntry]:
        """The live entry for ``obj``, or None if not present."""
        return self._entries.get(self._key(obj))

    def insert(self, obj: HostObject, buffer: DeviceBuffer) -> MappingEntry:
        key = self._key(obj)
        if key in self._entries:
            raise AllocationError("object is already mapped; use retain()")
        entry = MappingEntry(obj, buffer)
        self._entries[key] = entry
        self.total_mappings += 1
        return entry

    def retain(self, obj: HostObject) -> MappingEntry:
        """Bump the refcount of a present object."""
        entry = self.lookup(obj)
        if entry is None:
            raise AllocationError("retain() of an unmapped object")
        entry.refcount += 1
        return entry

    def release(self, obj: HostObject) -> Optional[MappingEntry]:
        """Drop one reference; returns the entry if it reached zero
        (caller then copies out / frees), else None."""
        entry = self.lookup(obj)
        if entry is None:
            raise AllocationError("release() of an unmapped object")
        entry.refcount -= 1
        if entry.refcount < 0:  # pragma: no cover - guarded by the None check
            raise AllocationError("mapping refcount went negative")
        if entry.refcount == 0:
            del self._entries[self._key(obj)]
            self.total_unmappings += 1
            return entry
        return None

    @property
    def live_entries(self) -> int:
        return len(self._entries)

    def device_ptr(self, obj: HostObject) -> int:
        """``omp_get_mapped_ptr``: the device address of a mapped object."""
        entry = self.lookup(obj)
        if entry is None:
            raise AllocationError("object is not mapped to the device")
        return entry.device_buffer.address
