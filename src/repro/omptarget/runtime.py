"""Target-region execution: the libomptarget entry points.

One :class:`OmpTargetRuntime` exists per rank.  It owns a present
table per bound device and a plugin (swappable — the DiOMP hook), and
implements:

* ``target(...)`` — the ``#pragma omp target`` body: map, launch,
  optionally wait, unmap,
* ``target_enter_data`` / ``target_exit_data`` — standalone data
  pragmas,
* ``omp_target_alloc`` / ``omp_target_free`` — explicit device memory,
* ``use_device_ptr`` — the device address of a mapped object (what the
  MPI baseline passes to CUDA-aware calls in Listing 2).

H2D/D2H transfer timing goes through the fabric's host↔GPU path, so
mapping cost is visible in every benchmark that maps data.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.cluster.world import RankContext
from repro.device.driver import Device
from repro.device.kernel import Kernel, KernelCost
from repro.omptarget.mapping import Map, MappingTable
from repro.omptarget.plugin import DevicePlugin, NativePlugin
from repro.sim import Future
from repro.util.errors import ConfigurationError, DeviceError


class OmpTargetRuntime:
    """Per-rank libomptarget instance."""

    def __init__(self, ctx: RankContext, plugin: Optional[DevicePlugin] = None) -> None:
        self.ctx = ctx
        self.plugin: DevicePlugin = plugin or NativePlugin()
        self.tables: List[MappingTable] = [MappingTable() for _ in ctx.devices]
        #: counts of H2D/D2H transfers performed (Fig. 1 bookkeeping)
        self.h2d_transfers = 0
        self.d2h_transfers = 0

    # -- helpers ---------------------------------------------------------------

    def device(self, device_num: int = 0) -> Device:
        if not 0 <= device_num < len(self.ctx.devices):
            raise ConfigurationError(
                f"device {device_num} out of range (rank has "
                f"{len(self.ctx.devices)} devices)"
            )
        return self.ctx.devices[device_num]

    def table(self, device_num: int = 0) -> MappingTable:
        self.device(device_num)
        return self.tables[device_num]

    def _transfer_h2d(self, entry, device: Device) -> None:
        def copy_in() -> None:
            if entry.device_buffer.is_virtual:
                return
            dst = entry.device_buffer.as_array(np.uint8)
            dst[:] = entry.host_obj.reshape(-1).view(np.uint8)

        fut = self.ctx.world.fabric.transfer(
            self.ctx.host,
            device.device_id,
            entry.device_buffer.size,
            operation="put",
            gpu_memory=True,
            on_complete=copy_in,
        )
        self.h2d_transfers += 1
        fut.wait()

    def _transfer_d2h(self, entry, device: Device) -> None:
        host_ep = self.ctx.host

        def copy_out() -> None:
            if entry.device_buffer.is_virtual:
                return
            flat = entry.host_obj.reshape(-1).view(np.uint8)
            flat[:] = entry.device_buffer.as_array(np.uint8)

        fut = self.ctx.world.fabric.transfer(
            device.device_id,
            host_ep,
            entry.device_buffer.size,
            operation="get",
            gpu_memory=True,
            on_complete=copy_out,
        )
        self.d2h_transfers += 1
        fut.wait()

    # -- data pragmas ---------------------------------------------------------

    def target_enter_data(self, maps: Sequence[Map], device_num: int = 0) -> None:
        """``#pragma omp target enter data map(...)``."""
        device = self.device(device_num)
        table = self.tables[device_num]
        for m in maps:
            entry = table.lookup(m.obj)
            if entry is not None:
                table.retain(m.obj)
                continue
            buf = self.plugin.data_alloc(
                device,
                m.nbytes,
                virtual=m.is_virtual,
                label=getattr(m.obj, "name", "") or "omp-map",
            )
            entry = table.insert(m.obj, buf)
            if m.kind.copies_in:
                # Virtual data pays the transfer time, real data also moves.
                self._transfer_h2d(entry, device)

    def target_exit_data(self, maps: Sequence[Map], device_num: int = 0) -> None:
        """``#pragma omp target exit data map(...)``."""
        device = self.device(device_num)
        table = self.tables[device_num]
        for m in maps:
            entry = table.release(m.obj)
            if entry is None:
                continue  # still referenced elsewhere
            if m.kind.copies_out:
                self._transfer_d2h(entry, device)
            self.plugin.data_delete(device, entry.device_buffer)

    def target_update_from(self, obj, device_num: int = 0) -> None:
        """``#pragma omp target update from(obj)``."""
        entry = self.tables[device_num].lookup(obj)
        if entry is None:
            raise DeviceError("target update of an unmapped object")
        self._transfer_d2h(entry, self.device(device_num))

    def target_update_to(self, obj, device_num: int = 0) -> None:
        """``#pragma omp target update to(obj)``."""
        entry = self.tables[device_num].lookup(obj)
        if entry is None:
            raise DeviceError("target update of an unmapped object")
        self._transfer_h2d(entry, self.device(device_num))

    # -- target regions ------------------------------------------------------------

    def target(
        self,
        name: str,
        cost: KernelCost,
        maps: Sequence[Map] = (),
        body: Optional[Callable[..., None]] = None,
        device_num: int = 0,
        nowait: bool = False,
        stream=None,
    ) -> Optional[Future]:
        """Execute one target region.

        Maps every clause, launches a kernel with the given cost model,
        and (unless ``nowait``) waits and applies end-of-region unmap
        semantics.  ``body`` — the kernel's host implementation —
        receives one typed device view per map, in clause order, and is
        skipped when any mapped object is virtual.

        With ``nowait=True`` the region's completion future is
        returned; the caller must later call
        :meth:`finish_nowait` with it to run the unmapping phase
        (mirrors an OpenMP ``taskwait``).
        """
        device = self.device(device_num)
        self.target_enter_data(maps, device_num)
        table = self.tables[device_num]
        views = []
        any_virtual = any(m.is_virtual for m in maps)
        if not any_virtual:
            for m in maps:
                buf = table.lookup(m.obj).device_buffer
                views.append(buf.as_array(m.obj.dtype).reshape(m.obj.shape))
        host_fn = None
        if body is not None and not any_virtual:
            host_fn = lambda *a: body(*views)  # noqa: E731 - deliberate capture
        kernel = Kernel(name=name, cost=lambda: cost, host_fn=host_fn)
        fut = device.launch(kernel, cost_args=(), stream=stream)
        if nowait:
            return _NowaitRegion(self, fut, maps, device_num)  # type: ignore[return-value]
        fut.wait()
        self.target_exit_data(maps, device_num)
        return None

    def finish_nowait(self, region: "_NowaitRegion") -> None:
        """Wait for a ``nowait`` region and run its unmap phase."""
        region.future.wait()
        self.target_exit_data(region.maps, region.device_num)

    # -- explicit device memory -------------------------------------------------

    def omp_target_alloc(self, size: int, device_num: int = 0, virtual: bool = False):
        """``omp_target_alloc``: unmapped device memory via the plugin."""
        return self.plugin.data_alloc(
            self.device(device_num), size, virtual=virtual, label="omp_target_alloc"
        )

    def omp_target_free(self, buffer, device_num: int = 0) -> None:
        self.plugin.data_delete(self.device(device_num), buffer)

    def use_device_ptr(self, obj, device_num: int = 0) -> int:
        """``#pragma omp target data use_device_ptr``: the device
        address the MPI baseline feeds to CUDA-aware calls."""
        return self.tables[device_num].device_ptr(obj)


class _NowaitRegion:
    """Handle for a ``nowait`` target region awaiting its unmap phase."""

    def __init__(self, rt: OmpTargetRuntime, future: Future, maps, device_num: int) -> None:
        self.rt = rt
        self.future = future
        self.maps = maps
        self.device_num = device_num
