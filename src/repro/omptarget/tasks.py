"""Deferred target tasks with dependences (the paper's §5 direction).

The paper names task-level parallelism as the main future extension of
DiOMP-Offloading and cites the hidden-helper-thread design (Tian et
al., LCPC'22) used by LLVM for ``#pragma omp target nowait`` with
``depend`` clauses.  This module implements that model on the
simulator:

* :meth:`TargetTaskQueue.submit` corresponds to
  ``#pragma omp target nowait depend(in: ...) depend(out: ...)``,
* each deferred task is executed by a *hidden helper* (a simulated
  task) once its dependences resolve, so independent target regions
  from one rank overlap on the device,
* dependence semantics follow OpenMP: a task reading an object waits
  for the last writer; a writer waits for all previous readers and the
  last writer (in/out = read/write sets over arbitrary hashables,
  normally the mapped arrays),
* :meth:`TargetTaskQueue.taskwait` is ``#pragma omp taskwait``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.device.kernel import KernelCost
from repro.omptarget.mapping import Map
from repro.omptarget.runtime import OmpTargetRuntime
from repro.sim import Future
from repro.util.errors import ConfigurationError


@dataclasses.dataclass
class TargetTask:
    """Handle for one deferred target region."""

    name: str
    future: Future
    depends_in: Tuple[object, ...]
    depends_out: Tuple[object, ...]

    def done(self) -> bool:
        return self.future.poll()

    def wait(self) -> None:
        """Block the calling task until this target task completes."""
        if not self.future.fired:
            self.future.wait()


class TargetTaskQueue:
    """Per-rank deferred-task engine (hidden helper threads)."""

    def __init__(self, rt: OmpTargetRuntime) -> None:
        self.rt = rt
        self.sim = rt.ctx.sim
        #: last writer per dependence object
        self._last_writer: Dict[int, TargetTask] = {}
        #: readers since the last writer, per dependence object
        self._readers: Dict[int, List[TargetTask]] = {}
        self._live: List[TargetTask] = []
        self.tasks_submitted = 0

    def _key(self, obj: object) -> int:
        return id(obj)

    def _predecessors(
        self, depends_in: Sequence[object], depends_out: Sequence[object]
    ) -> List[TargetTask]:
        preds: List[TargetTask] = []
        for obj in depends_in:
            writer = self._last_writer.get(self._key(obj))
            if writer is not None:
                preds.append(writer)
        for obj in depends_out:
            key = self._key(obj)
            writer = self._last_writer.get(key)
            if writer is not None:
                preds.append(writer)
            preds.extend(self._readers.get(key, ()))
        return preds

    def submit(
        self,
        name: str,
        cost: KernelCost,
        maps: Sequence[Map] = (),
        body=None,
        depends_in: Sequence[object] = (),
        depends_out: Sequence[object] = (),
        device_num: int = 0,
    ) -> TargetTask:
        """``#pragma omp target nowait depend(...)``.

        Returns immediately; the region runs on a hidden helper once
        every conflicting predecessor has completed.
        """
        overlap = set(map(self._key, depends_in)) & set(map(self._key, depends_out))
        if overlap:
            raise ConfigurationError(
                "an object cannot be both depend(in:) and depend(out:) of "
                "one task; use depend(out:) alone (inout semantics)"
            )
        preds = self._predecessors(depends_in, depends_out)
        future = Future(self.sim, description=f"target-task:{name}")
        task = TargetTask(name, future, tuple(depends_in), tuple(depends_out))
        # Update the dependence frontier *at submit time* (program order).
        for obj in depends_in:
            self._readers.setdefault(self._key(obj), []).append(task)
        for obj in depends_out:
            key = self._key(obj)
            self._last_writer[key] = task
            self._readers[key] = []
        self._live.append(task)
        self.tasks_submitted += 1
        rt = self.rt

        def helper() -> None:
            for pred in preds:
                pred.wait()
            # Each hidden helper drives its own stream so independent
            # target regions overlap on the device.
            stream = rt.device(device_num).create_stream()
            rt.target(
                name, cost, maps=maps, body=body, device_num=device_num, stream=stream
            )
            future.fire()

        self.sim.spawn(helper, name=f"helper:{name}")
        return task

    def taskwait(self) -> None:
        """``#pragma omp taskwait``: block until every submitted task
        has completed."""
        live, self._live = self._live, []
        for task in live:
            task.wait()

    @property
    def pending(self) -> int:
        self._live = [t for t in self._live if not t.done()]
        return len(self._live)
