"""Device plugins: the allocation/transfer backend of libomptarget.

``libomptarget`` dispatches memory management to per-vendor plugins
(``rtl.cuda``, ``rtl.amdgpu``).  DiOMP's key trick (paper §3.1) is to
*replace the plugin's allocator* so every OpenMP-mapped device
allocation lands inside the PGAS global segment.  The interface here
is the minimal surface that trick needs.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.device.driver import Device
from repro.device.memory import DeviceBuffer


@runtime_checkable
class DevicePlugin(Protocol):
    """What libomptarget requires of a device plugin."""

    def data_alloc(self, device: Device, size: int, virtual: bool, label: str) -> DeviceBuffer:
        """Allocate ``size`` bytes of device memory."""
        ...

    def data_delete(self, device: Device, buffer: DeviceBuffer) -> None:
        """Release a plugin allocation."""
        ...


class NativePlugin:
    """The stock plugin: allocates directly from the device driver.

    This is the Fig. 1a baseline — every allocation is private to
    libomptarget, so any communication library must register the same
    memory again on its own.
    """

    def __init__(self) -> None:
        self.allocs = 0
        self.frees = 0

    def data_alloc(self, device: Device, size: int, virtual: bool, label: str) -> DeviceBuffer:
        self.allocs += 1
        return device.malloc(size, virtual=virtual, label=label)

    def data_delete(self, device: Device, buffer: DeviceBuffer) -> None:
        self.frees += 1
        device.free(buffer)
