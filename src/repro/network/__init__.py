"""Simulated communication fabric.

:class:`~repro.network.fabric.Fabric` turns a resolved
:class:`~repro.hardware.topology.Path` into timed, contended message
deliveries on the virtual clock.  It is the single place where bytes
"move" between nodes; the GASNet-EX, GPI-2 and mini-MPI layers all sit
on top of it, which is what makes the paper's DiOMP-vs-MPI comparisons
apples-to-apples.
"""

from repro.network.fabric import Fabric, TransferRecord

__all__ = ["Fabric", "TransferRecord"]
