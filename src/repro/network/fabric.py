"""Timed, contended message transport over the cluster topology.

Cost model
----------
An unloaded transfer of ``n`` bytes over a path completes after

    ``path.latency + n / path.bandwidth``

(the classic alpha–beta model).  Contention is modelled by
*serialization* on every resource the path occupies (NICs, NVLink
pairs, PCIe host links): each resource has a ``busy_until`` time, a
transfer occupies each of its resources for the wire time
``n / path.bandwidth``, and transmission cannot start before all of
them are free.  The fabric core itself is non-blocking (fat-tree
assumption), so cross-node contention only arises at endpoints —
which matches how Slingshot-11/NDR behave for the message sizes the
paper sweeps.

Data movement is decoupled from timing: the caller supplies an
``on_complete`` callback which performs the real (numpy) copy at the
simulated completion time, so observers can never see bytes "arrive
early".
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from repro.hardware.topology import ClusterTopology, DeviceId, Path
from repro.sim import Future, Simulator, Tracer
from repro.util.errors import CommunicationError, FatalError, TransientError


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """Completion report attached to every transfer future."""

    src: DeviceId
    dst: DeviceId
    nbytes: int
    operation: str
    start_time: float
    end_time: float
    path: Path

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def achieved_bandwidth(self) -> float:
        """Effective end-to-end bandwidth including latency and queueing."""
        if self.duration <= 0:
            return float("inf")
        return self.nbytes / self.duration


class Fabric:
    """The cluster's message transport in virtual time."""

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.tracer = tracer
        #: fault-injection plan consulted per transfer (installed by
        #: World.install_fault_plan; None = perfect fabric)
        self.faults = None
        #: per-resource earliest availability time
        self._busy_until: Dict[str, float] = {}
        #: cumulative statistics, queryable by tests/benchmarks
        self.total_transfers = 0
        self.total_bytes = 0
        self.faults_injected = 0

    # -- core API -------------------------------------------------------------

    def transfer(
        self,
        src: DeviceId,
        dst: DeviceId,
        nbytes: int,
        operation: str = "put",
        gpu_memory: bool = True,
        on_complete: Optional[Callable[[], None]] = None,
        extra_latency: float = 0.0,
        occupancy_overhead: float = 0.0,
        bandwidth_factor: float = 1.0,
        rails: int = 1,
        force_network: bool = False,
        fault_site: Optional[str] = None,
        initiator: Optional[int] = None,
    ) -> Future:
        """Start a transfer; returns a future fired at completion.

        ``on_complete`` (if given) runs at the completion time *before*
        the future fires — this is where the caller performs the actual
        data copy.  ``extra_latency`` lets software layers add their
        per-operation overhead (e.g. MPI window synchronization), and
        ``bandwidth_factor`` their protocol efficiency (fraction of the
        physical link they sustain), without re-implementing the
        contention model.  ``occupancy_overhead`` is per-*message* cost
        charged as resource occupancy (NIC message processing): unlike
        ``extra_latency`` it serializes across messages sharing a
        resource, which is what makes many small messages slower than
        one aggregated message of the same total payload.  For a single
        uncontended transfer the two are equivalent.

        ``fault_site``/``initiator`` key this transfer for the world's
        :class:`~repro.faults.FaultPlan` (site defaults to
        ``fabric.transfer``).  The returned future carries an ``eta``
        attribute — the expected completion time — which the hybrid
        fence uses to block on the earliest-completing event.
        """
        if nbytes < 0:
            raise CommunicationError(f"negative transfer size: {nbytes}")
        if extra_latency < 0:
            raise CommunicationError(f"negative extra latency: {extra_latency}")
        if occupancy_overhead < 0:
            raise CommunicationError(
                f"negative occupancy overhead: {occupancy_overhead}"
            )
        if not (0.0 < bandwidth_factor <= 1.0):
            raise CommunicationError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        action = None
        if self.faults is not None:
            action = self.faults.draw(
                fault_site or "fabric.transfer", rank=initiator, op=operation
            )
            if action is not None:
                self.faults_injected += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "fabric",
                        "fault",
                        kind=action.kind,
                        site=action.site,
                        op=operation,
                    )
                if action.kind in ("latency", "stall"):
                    # Stalls drawn at transfer level degrade to latency
                    # (the initiator may not be in task context here).
                    extra_latency += action.latency
        path = self.topology.path(
            src,
            dst,
            operation=operation,
            gpu_memory=gpu_memory,
            rails=rails,
            force_network=force_network,
        )
        now = self.sim.now
        wire_time = nbytes / (path.bandwidth * bandwidth_factor)
        occupied = wire_time + occupancy_overhead
        # Each resource serializes independently (packets from distinct
        # flows interleave at the switch, so a busy egress on one hop
        # does not idle the ingress of another); the transfer completes
        # when its slowest resource finishes.
        earliest = now + extra_latency
        finish = earliest + occupied
        for key in path.resources:
            start_r = max(earliest, self._busy_until.get(key, 0.0))
            end_r = start_r + occupied
            self._busy_until[key] = end_r
            finish = max(finish, end_r)
        end = finish + path.latency
        if action is not None and action.kind == "late":
            # The data lands on time; only the completion event is late
            # (no extra resource occupancy).
            end += action.latency
        record = TransferRecord(src, dst, nbytes, operation, now, end, path)
        self.total_transfers += 1
        self.total_bytes += nbytes
        if self.tracer is not None:
            self.tracer.emit(
                "fabric",
                "transfer",
                src=str(src),
                dst=str(dst),
                nbytes=nbytes,
                op=operation,
                kind=path.kind.value,
                end=end,
            )
        fut = Future(self.sim, description=f"xfer {src}->{dst} {nbytes}B")
        fut.eta = end  # type: ignore[attr-defined]
        if action is not None and action.is_failure:
            if action.kind == "drop":
                # Lost entirely: no data arrival, no completion event.
                # Only a retry policy with op_timeout can rescue this;
                # otherwise the waiter shows up in DeadlockError.
                return fut
            err_cls = FatalError if action.fatal else TransientError
            self.sim.call_later(
                end - now,
                lambda: fut.fail(
                    err_cls(
                        f"injected {operation} failure {src}->{dst} "
                        f"({nbytes} bytes at {action.site})"
                    )
                ),
            )
            return fut

        def _complete() -> None:
            if on_complete is not None:
                on_complete()
            fut.fire(record)

        self.sim.call_later(end - now, _complete)
        return fut

    # -- queries ------------------------------------------------------------

    def resource_busy_until(self, key: str) -> float:
        """When a physical link becomes free (0.0 if never used)."""
        return self._busy_until.get(key, 0.0)

    def unloaded_time(
        self,
        src: DeviceId,
        dst: DeviceId,
        nbytes: int,
        operation: str = "put",
        gpu_memory: bool = True,
    ) -> float:
        """The contention-free transfer time (for analytic models)."""
        path = self.topology.path(src, dst, operation=operation, gpu_memory=gpu_memory)
        return path.transfer_time(nbytes)
