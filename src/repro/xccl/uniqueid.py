"""NCCL-style UniqueId bootstrap tokens.

``ncclGetUniqueId`` produces an opaque token on one rank; every
participant passes the same token to ``ncclCommInitRank``.  The token
must travel out-of-band (the paper broadcasts it over the CPU-side
network during DiOMP init).  We reproduce the semantics: ids are
opaque, unforgeable (created only through :meth:`create`), and
single-communicator.
"""

from __future__ import annotations

import itertools

from repro.util.errors import CommunicationError

_counter = itertools.count(1)


class UniqueId:
    """An opaque communicator rendezvous token."""

    __slots__ = ("_value",)

    def __init__(self, _value: int) -> None:
        if _value <= 0:
            raise CommunicationError("UniqueId must come from UniqueId.create()")
        self._value = _value

    @classmethod
    def create(cls) -> "UniqueId":
        """``ncclGetUniqueId``: mint a fresh token."""
        return cls(next(_counter))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, UniqueId) and other._value == self._value

    def __hash__(self) -> int:
        return hash(("xccl-uid", self._value))

    def __repr__(self) -> str:
        return f"<UniqueId {self._value:#010x}>"
