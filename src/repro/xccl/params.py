"""Calibration constants for NCCL and RCCL.

The absolute values land in commonly reported ranges (NCCL collective
launch ~20–40 µs; ring algorithms sustaining ~90% of the bottleneck
link; RCCL measurably behind NCCL in both).  The *relationships* are
what Fig. 6 depends on:

* both libraries pay a large per-operation launch cost → MPI wins at
  small message sizes,
* NCCL's channelized rings aggregate all node NICs → big large-message
  wins on platforms A and C,
* RCCL has lower protocol efficiency and higher launch overhead →
  parity-ish with MPI for large AllReduce on platform B, with the
  broadcast advantage concentrated at medium sizes.
"""

from __future__ import annotations

import dataclasses

from repro.util.errors import ConfigurationError
from repro.util.units import KiB, MiB, US


@dataclasses.dataclass(frozen=True)
class XcclParams:
    """Cost model for one vendor collective library."""

    name: str
    #: per-collective launch cost (kernel launch + proxy kickoff)
    launch_overhead: float
    #: added latency per ring step (per log2 round for tree ops)
    step_latency: float
    #: fraction of the bottleneck link the ring protocol sustains
    efficiency: float
    #: broadcast-specific efficiency (ring bcast pipelines better)
    bcast_efficiency: float
    #: concurrent channels (rings); bounds NIC aggregation
    max_channels: int
    #: one-time communicator init cost (topology detection, transport
    #: setup) — the "OMPCCL initialization overhead" of §4.3
    init_overhead: float
    #: largest message the binomial/double tree is considered for (the
    #: latency-bound regime; NCCL_TREE_THRESHOLD analogue)
    tree_max_bytes: int = 64 * KiB
    #: smallest message the two-level hierarchical decomposition is
    #: considered for (below this the extra phases cost more latency
    #: than the intra/inter split saves)
    hier_min_bytes: int = 4 * MiB

    def __post_init__(self) -> None:
        if not (0.0 < self.efficiency <= 1.0 and 0.0 < self.bcast_efficiency <= 1.0):
            raise ConfigurationError(f"{self.name}: efficiency out of range")
        if self.max_channels <= 0:
            raise ConfigurationError(f"{self.name}: max_channels must be positive")
        if self.tree_max_bytes < 0 or self.hier_min_bytes < 0:
            raise ConfigurationError(f"{self.name}: algorithm thresholds must be >= 0")


NCCL_PARAMS = XcclParams(
    name="nccl",
    launch_overhead=22.0 * US,
    step_latency=1.3 * US,
    efficiency=0.92,
    bcast_efficiency=0.95,
    max_channels=16,
    init_overhead=900.0 * US,
)

RCCL_PARAMS = XcclParams(
    name="rccl",
    launch_overhead=34.0 * US,
    step_latency=2.2 * US,
    efficiency=0.34,
    bcast_efficiency=0.80,
    max_channels=16,
    init_overhead=1300.0 * US,
)


def params_for(ccl: str) -> XcclParams:
    """Look up the library a platform pairs with ("nccl" | "rccl")."""
    try:
        return {"nccl": NCCL_PARAMS, "rccl": RCCL_PARAMS}[ccl]
    except KeyError:
        raise ConfigurationError(f"unknown collective library {ccl!r}") from None
