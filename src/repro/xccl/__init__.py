"""XCCL: the vendor collective-communication libraries (NCCL / RCCL).

OMPCCL (paper §3.3) is a portability layer *over* NCCL and RCCL; this
package is the thing it wraps.  It reproduces the architecture that
matters for the evaluation:

* **UniqueId bootstrap** (:mod:`repro.xccl.uniqueid`) — communicators
  rendezvous on an out-of-band identifier broadcast over the CPU
  network,
* **topology detection** (:mod:`repro.xccl.topo`) — rings are built
  over the member devices; inter-node crossings aggregate the node's
  NICs across channels (the optimization that lets NCCL beat MPI's
  single-ring collectives at large sizes, Fig. 6),
* **communicators and collectives**
  (:mod:`repro.xccl.communicator`) — per-*device* (not per-rank)
  membership, so a single process can drive several GPUs, with
  analytic ring-pipeline completion models and real numpy data
  application,
* **algorithms** (:mod:`repro.xccl.algorithms`) — per-algorithm
  analytic cost models (flat ring, binomial tree, two-level
  hierarchical ring) and the topology/size-driven auto-selector,
* **calibration** (:mod:`repro.xccl.params`) — NCCL vs RCCL constants;
  the RCCL numbers are deliberately weaker, matching the paper's
  observation that "RCCL still has room for further optimization".
"""

from repro.xccl.params import XcclParams, NCCL_PARAMS, RCCL_PARAMS, params_for
from repro.xccl.uniqueid import UniqueId
from repro.xccl.topo import (
    CommTopology,
    analyze,
    build_ring,
    ring_bandwidth,
    ring_hop_latency,
)
from repro.xccl.algorithms import (
    ALGORITHMS,
    Phase,
    Selection,
    plan,
    select_algorithm,
)
from repro.xccl.communicator import XcclContext, XcclComm

__all__ = [
    "XcclParams",
    "NCCL_PARAMS",
    "RCCL_PARAMS",
    "params_for",
    "UniqueId",
    "CommTopology",
    "analyze",
    "build_ring",
    "ring_bandwidth",
    "ring_hop_latency",
    "ALGORITHMS",
    "Phase",
    "Selection",
    "plan",
    "select_algorithm",
    "XcclContext",
    "XcclComm",
]
