"""XCCL communicators and collective operations.

Membership is per *device slot* — ``ncclCommInitRank(uid, i, n)``
joins device slot ``i`` of ``n`` — so one process may hold several
communicator handles, one per GPU it drives (the deployment model
DiOMP's single-process multi-GPU mode depends on, §3.3).

Completion times come from the per-algorithm cost models of
:mod:`repro.xccl.algorithms`: the flat pipelined ring (the historical
single model), a binomial tree for the latency-bound regime, and the
two-level hierarchical decomposition for multi-node large messages —
auto-selected per launch from the communicator's
:class:`~repro.xccl.topo.CommTopology` and the message size, or forced
via ``algo=`` for ablations.  Data application is real numpy
arithmetic for real buffers at the completion instant, identical for
every algorithm (contributions are always combined in slot order, so
results are bit-identical across algorithms).

A collective call blocks until every member has arrived (matching
launch order per communicator), then all members complete together at
the modelled time — the same externally observable semantics as a
stream-synchronized NCCL call.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.memref import MemRef
from repro.cluster.world import World
from repro.device.driver import Device
from repro.hardware.topology import DeviceId
from repro.sim import Future
from repro.util.errors import CommunicationError
from repro.xccl.algorithms import Selection, select_algorithm
from repro.xccl.params import XcclParams
from repro.xccl.topo import CommTopology, analyze, build_ring
from repro.xccl.uniqueid import UniqueId


@dataclasses.dataclass
class _PendingCollective:
    """Rendezvous state for one in-flight collective.

    All members share one completion future — arrival bookkeeping is
    O(1) per member (a dict insert and a shared-future wait), so the
    whole rendezvous costs O(P) rather than O(P) future allocations
    plus per-member scheduling state.
    """

    op: str
    #: message size the first arriver declared (members must agree)
    nbytes: int
    #: forced algorithm of the first arriver (None = auto-select)
    algo: Optional[str]
    #: completion future every member waits on (created by the first
    #: arriver, fired once by the completion callback)
    done: Future
    arrivals: Dict[int, dict] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class _CommState:
    """Shared state of one communicator (all device slots)."""

    uid: UniqueId
    ndev: int
    devices: Dict[int, DeviceId] = dataclasses.field(default_factory=dict)
    ring: Optional[List[DeviceId]] = None
    ctopo: Optional[CommTopology] = None
    bottleneck_bw: float = 0.0
    hop_latency: float = 0.0
    init_barrier_waiters: List[Future] = dataclasses.field(default_factory=list)
    pending: Dict[int, _PendingCollective] = dataclasses.field(default_factory=dict)
    #: (op, nbytes, forced-algo) -> Selection.  The topology and params
    #: are frozen after init, so pricing is a pure function of the key;
    #: caching makes the per-member selection preview O(1) instead of
    #: re-running the cost models for every launch of a repeated shape.
    sel_cache: Dict[tuple, Selection] = dataclasses.field(default_factory=dict)


class XcclContext:
    """The loaded library instance for one world ("libnccl.so")."""

    def __init__(self, world: World, params: XcclParams) -> None:
        self.world = world
        self.params = params
        self._comms: Dict[UniqueId, _CommState] = {}
        # -- metrics (device-slot collective launches; repro.obs) --
        obs = getattr(world, "obs", None)
        if obs is not None:
            self._m_launches = obs.counter(
                "xccl.launches", "device-slot collective launches by op"
            )
            self._m_wire = obs.counter(
                "xccl.wire_bytes", "modeled per-rank wire bytes by op/algorithm"
            )
            self._m_algo = obs.counter(
                "xccl.algo", "completed collectives by selected algorithm"
            )
        else:
            self._m_launches = self._m_wire = self._m_algo = None

    def _state(self, uid: UniqueId, ndev: int) -> _CommState:
        state = self._comms.get(uid)
        if state is None:
            state = _CommState(uid=uid, ndev=ndev)
            self._comms[uid] = state
        elif state.ndev != ndev:
            raise CommunicationError(
                f"inconsistent communicator size for {uid}: "
                f"{state.ndev} vs {ndev}"
            )
        return state


class XcclComm:
    """One device slot's communicator handle (``ncclComm_t``)."""

    def __init__(self, ctx: XcclContext, state: _CommState, dev_rank: int, device: Device) -> None:
        self.ctx = ctx
        self._state = state
        self.dev_rank = dev_rank
        self.device = device
        self._op_seq = 0

    # -- initialization --------------------------------------------------------

    @classmethod
    def init_rank(
        cls,
        ctx: XcclContext,
        uid: UniqueId,
        dev_rank: int,
        ndev: int,
        device: Device,
    ) -> "XcclComm":
        """``ncclCommInitRank``: collective; blocks until all ``ndev``
        slots have joined, then runs topology detection once.

        Must be called from a simulated task.
        """
        if not 0 <= dev_rank < ndev:
            raise CommunicationError(f"device rank {dev_rank} out of range 0..{ndev - 1}")
        state = ctx._state(uid, ndev)
        if dev_rank in state.devices:
            raise CommunicationError(f"device rank {dev_rank} already joined {uid}")
        state.devices[dev_rank] = device.device_id
        sim = ctx.world.sim
        if len(state.devices) < ndev:
            fut = Future(sim, description=f"xccl-init:{uid}")
            state.init_barrier_waiters.append(fut)
            fut.wait()
        else:
            # Last joiner: detect topology, charge init, release everyone.
            ring = build_ring([state.devices[i] for i in range(ndev)])
            state.ring = ring
            state.ctopo = analyze(ctx.world.topology, ring, ctx.params)
            state.bottleneck_bw = state.ctopo.flat_bw
            state.hop_latency = state.ctopo.flat_hop_latency
            sim.sleep(ctx.params.init_overhead)
            waiters, state.init_barrier_waiters = state.init_barrier_waiters, []
            for fut in waiters:
                fut.fire()
        return cls(ctx, state, dev_rank, device)

    @property
    def ndev(self) -> int:
        return self._state.ndev

    # -- completion-time model -----------------------------------------------------

    def select(self, op: str, nbytes: int, algo: Optional[str] = None) -> Selection:
        """The algorithm (and modeled time) one launch would use.

        Pure preview — prices the candidates against the communicator's
        :class:`CommTopology` without arriving at any rendezvous.
        """
        state = self._state
        if state.ctopo is None:
            raise CommunicationError("communicator is not initialized")
        key = (op, nbytes, algo)
        sel = state.sel_cache.get(key)
        if sel is None:
            sel = select_algorithm(op, nbytes, state.ctopo, self.ctx.params, force=algo)
            state.sel_cache[key] = sel
        return sel

    def _record_phases(self, sel: Selection, start: float) -> None:
        """Emit per-phase spans so traces attribute intra vs inter time."""
        obs = getattr(self.ctx.world, "obs", None)
        if obs is None or not obs.profiler.enabled:
            return
        params = self.ctx.params
        eff = (
            params.bcast_efficiency if sel.op == "broadcast" else params.efficiency
        )
        t = start + params.launch_overhead
        for ph in sel.phases:
            dt = ph.time(params, eff)
            obs.profiler.record(
                f"xccl.{sel.algo}.{ph.name}",
                t,
                t + dt,
                track=f"xccl.{params.name}",
                scope=ph.scope,
                op=sel.op,
                algo=sel.algo,
                bytes=sel.nbytes,
                ndev=self._state.ndev,
            )
            t += dt

    # -- rendezvous machinery ------------------------------------------------------

    def _collective(
        self,
        op: str,
        nbytes: int,
        arrival: dict,
        apply_fn: Callable[[Dict[int, dict]], None],
        algo: Optional[str] = None,
    ) -> None:
        """Arrive at collective #seq; last arrival schedules completion."""
        state = self._state
        sim = self.ctx.world.sim
        seq = self._op_seq
        self._op_seq += 1
        pending = state.pending.get(seq)
        if pending is None:
            pending = _PendingCollective(
                op=op,
                nbytes=nbytes,
                algo=algo,
                done=Future(sim, description=f"xccl:{op}#{seq}"),
            )
            state.pending[seq] = pending
        if pending.op != op:
            raise CommunicationError(
                f"collective mismatch at sequence {seq}: "
                f"{pending.op} vs {op} (all members must call the same op "
                "in the same order)"
            )
        if pending.nbytes != nbytes:
            raise CommunicationError(
                f"collective size mismatch at sequence {seq}: device rank "
                f"{self.dev_rank} passed {nbytes} bytes for {op} but earlier "
                f"members passed {pending.nbytes} (all members must agree)"
            )
        if pending.algo != algo:
            raise CommunicationError(
                f"collective algorithm mismatch at sequence {seq}: device rank "
                f"{self.dev_rank} forced {algo!r} but earlier members forced "
                f"{pending.algo!r}"
            )
        if self.dev_rank in pending.arrivals:
            raise CommunicationError(f"device rank {self.dev_rank} arrived twice")
        pending.arrivals[self.dev_rank] = arrival
        fut = pending.done
        if self.ctx._m_launches is not None:
            self.ctx._m_launches.inc(
                op=op, library=self.ctx.params.name, ndev=state.ndev
            )
        if len(pending.arrivals) == state.ndev:
            del state.pending[seq]
            sel = self.select(op, nbytes, algo=algo)
            duration = sel.seconds
            if self.ctx._m_algo is not None:
                labels = dict(
                    op=op, algo=sel.algo, library=self.ctx.params.name, ndev=state.ndev
                )
                self.ctx._m_algo.inc(**labels)
                self.ctx._m_wire.inc(
                    state.ndev * sum(ph.wire_bytes for ph in sel.phases), **labels
                )
            self._record_phases(sel, sim.now)
            arrivals = pending.arrivals
            done = pending.done

            def complete() -> None:
                apply_fn(arrivals)
                done.fire()

            sim.call_later(duration, complete)
        fut.wait()

    @staticmethod
    def _all_real(arrivals: Dict[int, dict], *keys: str) -> bool:
        refs = [a[k] for a in arrivals.values() for k in keys if a.get(k) is not None]
        return all(not r.is_virtual for r in refs)

    # -- collectives -------------------------------------------------------------

    def all_reduce(
        self,
        send: MemRef,
        recv: MemRef,
        dtype: np.dtype = np.float64,
        op: Callable = np.add,
        algo: Optional[str] = None,
    ) -> None:
        """AllReduce over all member devices (auto-selected algorithm)."""
        if send.nbytes != recv.nbytes:
            raise CommunicationError("all_reduce buffers must match in size")
        dtype = np.dtype(dtype)

        def apply(arrivals: Dict[int, dict]) -> None:
            if not self._all_real(arrivals, "send", "recv"):
                return
            total = None
            for i in range(self.ndev):
                contrib = arrivals[i]["send"].typed(dtype)
                total = contrib.copy() if total is None else op(total, contrib)
            for i in range(self.ndev):
                arrivals[i]["recv"].typed(dtype)[:] = total

        self._collective(
            "all_reduce", send.nbytes, {"send": send, "recv": recv}, apply, algo=algo
        )

    def broadcast(
        self,
        buf: MemRef,
        root: int,
        dtype: np.dtype = np.uint8,
        algo: Optional[str] = None,
    ) -> None:
        """Broadcast from device slot ``root``."""
        if not 0 <= root < self.ndev:
            raise CommunicationError(f"broadcast root {root} out of range")

        def apply(arrivals: Dict[int, dict]) -> None:
            if not self._all_real(arrivals, "buf"):
                return
            src = arrivals[root]["buf"]
            for i in range(self.ndev):
                if i != root:
                    arrivals[i]["buf"].copy_from(src)

        self._collective("broadcast", buf.nbytes, {"buf": buf}, apply, algo=algo)

    def reduce(
        self,
        send: MemRef,
        recv: Optional[MemRef],
        root: int,
        dtype: np.dtype = np.float64,
        op: Callable = np.add,
        algo: Optional[str] = None,
    ) -> None:
        """Reduce to device slot ``root``."""
        if not 0 <= root < self.ndev:
            raise CommunicationError(f"reduce root {root} out of range")
        if self.dev_rank == root and recv is None:
            raise CommunicationError("reduce root needs a receive buffer")
        dtype = np.dtype(dtype)

        def apply(arrivals: Dict[int, dict]) -> None:
            if not self._all_real(arrivals, "send"):
                return
            root_recv = arrivals[root].get("recv")
            if root_recv is None or root_recv.is_virtual:
                return
            total = None
            for i in range(self.ndev):
                contrib = arrivals[i]["send"].typed(dtype)
                total = contrib.copy() if total is None else op(total, contrib)
            root_recv.typed(dtype)[:] = total

        self._collective(
            "reduce", send.nbytes, {"send": send, "recv": recv}, apply, algo=algo
        )

    def all_gather(
        self, send: MemRef, recv: MemRef, algo: Optional[str] = None
    ) -> None:
        """AllGather: ``recv`` holds ndev blocks in slot order."""
        if recv.nbytes != send.nbytes * self.ndev:
            raise CommunicationError(
                "all_gather recv must hold ndev*send bytes "
                f"({send.nbytes * self.ndev}), got {recv.nbytes}"
            )

        def apply(arrivals: Dict[int, dict]) -> None:
            if not self._all_real(arrivals, "send", "recv"):
                return
            block = send.nbytes
            for i in range(self.ndev):
                src = arrivals[i]["send"]
                for j in range(self.ndev):
                    arrivals[j]["recv"].slice(i * block, block).copy_from(src)

        self._collective(
            "all_gather", send.nbytes, {"send": send, "recv": recv}, apply, algo=algo
        )

    def reduce_scatter(
        self,
        send: MemRef,
        recv: MemRef,
        dtype: np.dtype = np.float64,
        op: Callable = np.add,
        algo: Optional[str] = None,
    ) -> None:
        """ReduceScatter: each slot receives its reduced block."""
        if send.nbytes != recv.nbytes * self.ndev:
            raise CommunicationError(
                "reduce_scatter send must hold ndev*recv bytes "
                f"({recv.nbytes * self.ndev}), got {send.nbytes}"
            )
        dtype = np.dtype(dtype)

        def apply(arrivals: Dict[int, dict]) -> None:
            if not self._all_real(arrivals, "send", "recv"):
                return
            block = recv.nbytes
            for j in range(self.ndev):
                total = None
                for i in range(self.ndev):
                    contrib = arrivals[i]["send"].slice(j * block, block).typed(dtype)
                    total = contrib.copy() if total is None else op(total, contrib)
                arrivals[j]["recv"].typed(dtype)[:] = total

        self._collective(
            "reduce_scatter",
            recv.nbytes * self.ndev,
            {"send": send, "recv": recv},
            apply,
            algo=algo,
        )

    def alltoall(self, send: MemRef, recv: MemRef, algo: Optional[str] = None) -> None:
        """Pairwise AllToAll: block ``j`` of slot ``i``'s send buffer
        lands as block ``i`` of slot ``j``'s receive buffer."""
        if send.nbytes != recv.nbytes:
            raise CommunicationError("alltoall buffers must match in size")
        if send.nbytes % self.ndev:
            raise CommunicationError(
                f"alltoall buffer of {send.nbytes} bytes does not divide "
                f"into {self.ndev} blocks"
            )

        def apply(arrivals: Dict[int, dict]) -> None:
            if not self._all_real(arrivals, "send", "recv"):
                return
            block = send.nbytes // self.ndev
            for i in range(self.ndev):
                src = arrivals[i]["send"]
                for j in range(self.ndev):
                    arrivals[j]["recv"].slice(i * block, block).copy_from(
                        src.slice(j * block, block)
                    )

        self._collective(
            "alltoall", send.nbytes, {"send": send, "recv": recv}, apply, algo=algo
        )
