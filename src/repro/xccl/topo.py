"""Topology detection: ring construction and bottleneck analysis.

NCCL/RCCL build their rings from the detected hardware graph.  We
reproduce the properties the evaluation depends on:

* **node-major ring order** — consecutive ranks on a node are joined
  by NVLink/xGMI; the ring crosses the network once per node pair,
* **NIC channel aggregation** — every inter-node crossing may be
  striped over up to ``min(max_channels, nics, local member GPUs)``
  NICs, which is the large-message advantage over a single MPI ring,
* **two-level decomposition** (:class:`CommTopology`) — the intra-node
  and inter-node tiers are characterized separately so the
  hierarchical algorithms of :mod:`repro.xccl.algorithms` can price an
  intra-node reduce-scatter/allgather over NVLink/xGMI and an
  inter-node ring over the fabric with one leader per node.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.hardware.topology import ClusterTopology, DeviceId, PathKind
from repro.util.errors import ConfigurationError
from repro.xccl.params import XcclParams


def build_ring(devices: Sequence[DeviceId]) -> List[DeviceId]:
    """Order member devices node-major (NCCL's intra-node-first rings)."""
    if not devices:
        raise ConfigurationError("cannot build a ring over zero devices")
    if len(set(devices)) != len(devices):
        raise ConfigurationError("duplicate devices in communicator")
    return sorted(devices, key=lambda d: (d.node, d.index))


def _crossing_bandwidth(
    topology: ClusterTopology,
    src: DeviceId,
    dst: DeviceId,
    members_on_src_node: int,
    params: XcclParams,
) -> float:
    """Effective bandwidth of one ring hop."""
    path = topology.path(src, dst, operation="ccl", gpu_memory=True)
    if path.kind is PathKind.INTER_NODE:
        channels = min(
            params.max_channels,
            topology.node_spec.nics_per_node,
            max(1, members_on_src_node),
        )
        return path.bandwidth * channels
    return path.bandwidth


def ring_bandwidth(
    topology: ClusterTopology, ring: Sequence[DeviceId], params: XcclParams
) -> float:
    """The bottleneck hop bandwidth of the ring (before efficiency)."""
    if len(ring) < 2:
        # Degenerate single-member ring: bounded by device memory.
        return topology.node_spec.gpu.mem_bandwidth
    per_node = {}
    for dev in ring:
        per_node[dev.node] = per_node.get(dev.node, 0) + 1
    bws = []
    for i, src in enumerate(ring):
        dst = ring[(i + 1) % len(ring)]
        bws.append(
            _crossing_bandwidth(topology, src, dst, per_node[src.node], params)
        )
    return min(bws)


def ring_hop_latency(topology: ClusterTopology, ring: Sequence[DeviceId]) -> float:
    """The worst single-hop latency in the ring (used in the small-
    message term of the completion model)."""
    if len(ring) < 2:
        return 0.0
    lats = []
    for i, src in enumerate(ring):
        dst = ring[(i + 1) % len(ring)]
        lats.append(topology.path(src, dst).latency)
    return max(lats)


@dataclasses.dataclass(frozen=True)
class CommTopology:
    """The two-level structure of one communicator's member set.

    Computed once at init (NCCL's topology-detection phase) and
    consumed by the per-algorithm cost models: the flat ring sees only
    ``flat_bw``/``flat_hop_latency``; the hierarchical algorithms see
    the intra-node tier (NVLink/xGMI bottleneck among co-located
    members) and the inter-node tier (the leader-per-node fabric
    crossing with NIC channel aggregation) separately.
    """

    #: node-major member ring
    ring: tuple
    ndev: int
    #: distinct nodes hosting members
    nnodes: int
    #: members per node when uniform, else None (hierarchy disabled)
    per_node: Optional[int]
    #: bottleneck ring-hop bandwidth / worst hop latency (flat model)
    flat_bw: float
    flat_hop_latency: float
    #: bottleneck intra-node hop among co-located members
    intra_bw: float
    intra_hop_latency: float
    #: leader-per-node fabric crossing (NIC channels aggregated)
    inter_bw: float
    inter_hop_latency: float

    @property
    def multi_node(self) -> bool:
        return self.nnodes > 1

    @property
    def hierarchical(self) -> bool:
        """Whether a two-level decomposition exists at all."""
        return self.multi_node and self.per_node is not None and self.per_node > 1

    def rounds(self, n: int) -> int:
        """Latency rounds of a log2 schedule over ``n`` participants."""
        return max(1, int(math.ceil(math.log2(max(n, 2)))))


def analyze(
    topology: ClusterTopology, ring: Sequence[DeviceId], params: XcclParams
) -> CommTopology:
    """Characterize both tiers of a member ring.

    The intra tier is the bottleneck hop over consecutive co-located
    members (what the node-major ring uses inside a node); the inter
    tier is the worst node-to-node crossing with channel aggregation
    (what one leader per node drives during the inter-node phase).
    """
    ring = list(ring)
    per_node_counts = {}
    for dev in ring:
        per_node_counts[dev.node] = per_node_counts.get(dev.node, 0) + 1
    nnodes = len(per_node_counts)
    counts = set(per_node_counts.values())
    per_node = counts.pop() if len(counts) == 1 else None
    flat_bw = ring_bandwidth(topology, ring, params)
    flat_hop = ring_hop_latency(topology, ring)
    # -- intra tier: consecutive co-located members ---------------------------
    intra_bws: List[float] = []
    intra_lats: List[float] = []
    inter_bws: List[float] = []
    inter_lats: List[float] = []
    for i, src in enumerate(ring[:-1] if len(ring) > 1 else []):
        dst = ring[i + 1]
        if src.node == dst.node:
            path = topology.path(src, dst, operation="ccl", gpu_memory=True)
            intra_bws.append(path.bandwidth)
            intra_lats.append(path.latency)
    # -- inter tier: adjacent node pairs in ring order ------------------------
    if nnodes > 1:
        for i, src in enumerate(ring):
            dst = ring[(i + 1) % len(ring)]
            if src.node != dst.node:
                inter_bws.append(
                    _crossing_bandwidth(
                        topology, src, dst, per_node_counts[src.node], params
                    )
                )
                inter_lats.append(topology.path(src, dst).latency)
    gpu_mem_bw = topology.node_spec.gpu.mem_bandwidth
    return CommTopology(
        ring=tuple(ring),
        ndev=len(ring),
        nnodes=nnodes,
        per_node=per_node,
        flat_bw=flat_bw,
        flat_hop_latency=flat_hop,
        intra_bw=min(intra_bws) if intra_bws else gpu_mem_bw,
        intra_hop_latency=max(intra_lats) if intra_lats else 0.0,
        inter_bw=min(inter_bws) if inter_bws else flat_bw,
        inter_hop_latency=max(inter_lats) if inter_lats else flat_hop,
    )
