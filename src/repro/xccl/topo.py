"""Topology detection: ring construction and bottleneck analysis.

NCCL/RCCL build their rings from the detected hardware graph.  We
reproduce the two properties the evaluation depends on:

* **node-major ring order** — consecutive ranks on a node are joined
  by NVLink/xGMI; the ring crosses the network once per node pair,
* **NIC channel aggregation** — every inter-node crossing may be
  striped over up to ``min(max_channels, nics, local member GPUs)``
  NICs, which is the large-message advantage over a single MPI ring.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.hardware.topology import ClusterTopology, DeviceId, PathKind
from repro.util.errors import ConfigurationError
from repro.xccl.params import XcclParams


def build_ring(devices: Sequence[DeviceId]) -> List[DeviceId]:
    """Order member devices node-major (NCCL's intra-node-first rings)."""
    if not devices:
        raise ConfigurationError("cannot build a ring over zero devices")
    if len(set(devices)) != len(devices):
        raise ConfigurationError("duplicate devices in communicator")
    return sorted(devices, key=lambda d: (d.node, d.index))


def _crossing_bandwidth(
    topology: ClusterTopology,
    src: DeviceId,
    dst: DeviceId,
    members_on_src_node: int,
    params: XcclParams,
) -> float:
    """Effective bandwidth of one ring hop."""
    path = topology.path(src, dst, operation="ccl", gpu_memory=True)
    if path.kind is PathKind.INTER_NODE:
        channels = min(
            params.max_channels,
            topology.node_spec.nics_per_node,
            max(1, members_on_src_node),
        )
        return path.bandwidth * channels
    return path.bandwidth


def ring_bandwidth(
    topology: ClusterTopology, ring: Sequence[DeviceId], params: XcclParams
) -> float:
    """The bottleneck hop bandwidth of the ring (before efficiency)."""
    if len(ring) < 2:
        # Degenerate single-member ring: bounded by device memory.
        return topology.node_spec.gpu.mem_bandwidth
    per_node = {}
    for dev in ring:
        per_node[dev.node] = per_node.get(dev.node, 0) + 1
    bws = []
    for i, src in enumerate(ring):
        dst = ring[(i + 1) % len(ring)]
        bws.append(
            _crossing_bandwidth(topology, src, dst, per_node[src.node], params)
        )
    return min(bws)


def ring_hop_latency(topology: ClusterTopology, ring: Sequence[DeviceId]) -> float:
    """The worst single-hop latency in the ring (used in the small-
    message term of the completion model)."""
    if len(ring) < 2:
        return 0.0
    lats = []
    for i, src in enumerate(ring):
        dst = ring[(i + 1) % len(ring)]
        lats.append(topology.path(src, dst).latency)
    return max(lats)
