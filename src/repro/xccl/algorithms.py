"""Collective algorithms and the topology-aware auto-selector.

The paper's §3.2/§4 headline is topology-aware path selection; for
collectives that means the library does not price every operation as
one flat ring.  Three algorithm families are modelled, each with an
analytic cost built from :class:`~repro.xccl.topo.CommTopology`:

* ``ring`` — the flat node-major pipelined ring (the historical
  ``_model_time`` path).  Always eligible; optimal for single-node
  communicators and bandwidth-bound operations whose wire volume
  cannot be reduced by hierarchy (broadcast, allgather).
* ``tree`` — a binomial/double tree for the latency-bound regime:
  ``O(log n)`` steps instead of ``O(n)``, at the price of sending the
  whole message every round.  Considered for rooted/vector ops up to
  ``params.tree_max_bytes``.
* ``hier_ring`` — the two-level decomposition (cf. the PGAS-based
  distributed OpenMP precursor and Intel SHMEM): an intra-node phase
  over NVLink/xGMI, an inter-node ring among one leader per node whose
  crossing aggregates the node's NICs, and a mirrored intra-node
  phase.  For AllReduce this is reduce-scatter → inter-node ring
  allreduce on the ``1/p`` shard → allgather, which divides the
  fabric traffic by the number of co-located members ``p``.
  Considered for multi-node communicators with a uniform ``p >= 2``
  from ``params.hier_min_bytes`` up.

The selector evaluates every eligible candidate's cost model and picks
the cheapest, so "tree for small, flat ring for single-node,
hierarchical ring for multi-node large" emerges from the topology and
message size rather than from hard-coded op tables.  A caller may
force an algorithm (the ablation hook); forcing one the communicator
is structurally unable to run raises ``CommunicationError``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from repro.util.errors import CommunicationError
from repro.xccl.params import XcclParams
from repro.xccl.topo import CommTopology

#: every modelled collective operation
OPS = (
    "all_reduce",
    "broadcast",
    "reduce",
    "reduce_scatter",
    "all_gather",
    "alltoall",
)

#: algorithm names, in preference order for cost ties
ALGORITHMS = ("ring", "tree", "hier_ring")

#: operations the binomial tree applies to (rooted or whole-vector)
_TREE_OPS = frozenset({"all_reduce", "broadcast", "reduce"})

#: operations with a two-level decomposition
_HIER_OPS = frozenset({"all_reduce", "broadcast", "reduce_scatter", "all_gather"})


@dataclasses.dataclass(frozen=True)
class Phase:
    """One timed stage of an algorithm (the unit of span attribution)."""

    #: stage name, e.g. "reduce-scatter"
    name: str
    #: "intra" | "inter" | "flat" — which tier the stage occupies
    scope: str
    #: pipelined steps (each charges ``params.step_latency``)
    steps: int
    #: latency rounds (each charges ``hop_latency``)
    rounds: int
    hop_latency: float
    #: per-member wire volume of the stage
    wire_bytes: float
    #: raw tier bandwidth (efficiency applied at pricing time)
    bandwidth: float

    def time(self, params: XcclParams, efficiency: float) -> float:
        bw = self.bandwidth * efficiency
        return (
            self.steps * params.step_latency
            + self.rounds * self.hop_latency
            + (self.wire_bytes / bw if self.wire_bytes else 0.0)
        )


@dataclasses.dataclass(frozen=True)
class Selection:
    """The selector's verdict for one collective launch."""

    algo: str
    op: str
    nbytes: int
    #: modelled completion time (includes launch overhead)
    seconds: float
    phases: Tuple[Phase, ...]

    def phase_times(self, params: XcclParams, efficiency: float) -> List[float]:
        return [ph.time(params, efficiency) for ph in self.phases]


def ring_wire_bytes(op: str, nbytes: int, n: int) -> float:
    """Per-member wire volume of the flat pipelined ring.

    Conventions (``nbytes`` is what the collective entry point passes):
    AllReduce/broadcast/reduce take the full vector size; reduce-
    scatter takes the total send size (``n`` blocks); allgather takes
    the per-member send block; alltoall takes the full local buffer.
    """
    if n <= 1:
        return 0.0
    if op == "all_reduce":
        return 2.0 * nbytes * (n - 1) / n
    if op in ("broadcast", "reduce"):
        return float(nbytes)
    if op == "reduce_scatter":
        return nbytes * (n - 1) / n
    if op == "all_gather":
        # n-1 forwarding steps of the member's whole block.
        return float(nbytes) * (n - 1)
    if op == "alltoall":
        return nbytes * (n - 1) / n
    raise CommunicationError(f"unknown collective {op!r}")


def _efficiency(op: str, params: XcclParams) -> float:
    return params.bcast_efficiency if op == "broadcast" else params.efficiency


def _ring_phases(op: str, nbytes: int, ctopo: CommTopology) -> List[Phase]:
    n = ctopo.ndev
    if op == "all_reduce":
        steps = 2 * (n - 1)
    elif op == "alltoall":
        steps = n - 1
    else:
        steps = n - 1
    return [
        Phase(
            name="pairwise" if op == "alltoall" else "ring",
            scope="flat",
            steps=steps,
            rounds=ctopo.rounds(n),
            hop_latency=ctopo.flat_hop_latency,
            wire_bytes=ring_wire_bytes(op, nbytes, n),
            bandwidth=ctopo.flat_bw,
        )
    ]


def _tree_phases(op: str, nbytes: int, ctopo: CommTopology) -> List[Phase]:
    n = ctopo.ndev
    rounds = ctopo.rounds(n)
    # AllReduce = reduce up the tree + broadcast down; rooted ops are
    # one traversal.  Every round moves the whole vector.
    factor = 2 if op == "all_reduce" else 1
    return [
        Phase(
            name="tree",
            scope="flat",
            steps=factor * rounds,
            rounds=factor * rounds,
            hop_latency=ctopo.flat_hop_latency,
            wire_bytes=float(factor * rounds * nbytes),
            bandwidth=ctopo.flat_bw,
        )
    ]


def _hier_phases(op: str, nbytes: int, ctopo: CommTopology) -> List[Phase]:
    p = ctopo.per_node or 1
    nnodes = ctopo.nnodes
    n = ctopo.ndev

    def intra(name: str, steps: int, wire: float) -> Phase:
        return Phase(
            name=name,
            scope="intra",
            steps=steps,
            rounds=ctopo.rounds(p),
            hop_latency=ctopo.intra_hop_latency,
            wire_bytes=wire,
            bandwidth=ctopo.intra_bw,
        )

    def inter(name: str, steps: int, wire: float) -> Phase:
        return Phase(
            name=name,
            scope="inter",
            steps=steps,
            rounds=ctopo.rounds(nnodes),
            hop_latency=ctopo.inter_hop_latency,
            wire_bytes=wire,
            bandwidth=ctopo.inter_bw,
        )

    if op == "all_reduce":
        # reduce-scatter within the node, ring-allreduce the 1/p shard
        # across leaders, allgather within the node.
        shard = nbytes / p
        return [
            intra("reduce-scatter", p - 1, nbytes * (p - 1) / p),
            inter("ring-allreduce", 2 * (nnodes - 1), 2.0 * shard * (nnodes - 1) / nnodes),
            intra("all-gather", p - 1, nbytes * (p - 1) / p),
        ]
    if op == "reduce_scatter":
        # nbytes is the total send size; the node-local phase reduces
        # it to a 1/p shard per member, the leader phase scatters the
        # shard across nodes.
        return [
            intra("reduce-scatter", p - 1, nbytes * (p - 1) / p),
            inter("reduce-scatter", nnodes - 1, (nbytes / p) * (nnodes - 1) / nnodes),
        ]
    if op == "all_gather":
        # nbytes is the per-member block: gather blocks within the
        # node, exchange node aggregates across leaders, fan the
        # remote aggregates out within the node.
        node_block = float(p * nbytes)
        remote = node_block * (nnodes - 1)
        return [
            intra("all-gather", p - 1, float(nbytes) * (p - 1)),
            inter("ring-allgather", nnodes - 1, node_block * (nnodes - 1)),
            intra("fanout", p - 1, remote * (p - 1) / p),
        ]
    if op == "broadcast":
        return [
            inter("broadcast", nnodes - 1, float(nbytes)),
            intra("broadcast", p - 1, float(nbytes)),
        ]
    raise CommunicationError(f"no hierarchical decomposition for {op!r}")


def eligible(algo: str, op: str, ctopo: CommTopology) -> bool:
    """Whether the communicator can structurally run ``algo`` for ``op``
    (size thresholds are *policy*, applied only to auto-selection)."""
    if algo == "ring":
        return True
    if algo == "tree":
        return op in _TREE_OPS and ctopo.ndev >= 2
    if algo == "hier_ring":
        return op in _HIER_OPS and ctopo.hierarchical
    return False


def plan(
    algo: str, op: str, nbytes: int, ctopo: CommTopology, params: XcclParams
) -> Selection:
    """Price one algorithm for one launch; raises if ineligible."""
    if op not in OPS:
        raise CommunicationError(f"unknown collective {op!r}")
    if not eligible(algo, op, ctopo):
        raise CommunicationError(
            f"algorithm {algo!r} is not runnable for {op} on this "
            f"communicator ({ctopo.ndev} devices over {ctopo.nnodes} node(s))"
        )
    if ctopo.ndev <= 1:
        phases: List[Phase] = []
    elif algo == "ring":
        phases = _ring_phases(op, nbytes, ctopo)
    elif algo == "tree":
        phases = _tree_phases(op, nbytes, ctopo)
    else:
        phases = _hier_phases(op, nbytes, ctopo)
    eff = _efficiency(op, params)
    seconds = params.launch_overhead + sum(ph.time(params, eff) for ph in phases)
    return Selection(algo=algo, op=op, nbytes=nbytes, seconds=seconds, phases=tuple(phases))


def select_algorithm(
    op: str,
    nbytes: int,
    ctopo: CommTopology,
    params: XcclParams,
    force: Optional[str] = None,
) -> Selection:
    """Pick the cheapest eligible algorithm for one launch.

    Candidates are policy-gated: the tree only competes below
    ``tree_max_bytes``, the hierarchy only competes at or above
    ``hier_min_bytes`` on multi-node communicators; the flat ring
    always competes.  ``force`` bypasses the policy gates (but not
    structural eligibility) — the ablation hook.
    """
    if force is not None:
        if force not in ALGORITHMS:
            raise CommunicationError(
                f"unknown algorithm {force!r}; available: {ALGORITHMS}"
            )
        return plan(force, op, nbytes, ctopo, params)
    candidates = ["ring"]
    if nbytes <= params.tree_max_bytes and eligible("tree", op, ctopo):
        candidates.append("tree")
    if nbytes >= params.hier_min_bytes and eligible("hier_ring", op, ctopo):
        candidates.append("hier_ring")
    plans = [plan(c, op, nbytes, ctopo, params) for c in candidates]
    return min(plans, key=lambda s: (s.seconds, ALGORITHMS.index(s.algo)))


# ---------------------------------------------------------------------------
# Vectorized sweep pricing
# ---------------------------------------------------------------------------
#
# Every phase's wire volume is linear in ``nbytes`` with zero
# intercept, and the step/round counts depend only on the topology, so
# one algorithm's modelled time is an affine function of the message
# size: ``seconds(nbytes) = fixed + slope * nbytes``.  That lets a
# whole size sweep — or an extrapolation to sizes too large to
# simulate — be priced in a handful of numpy operations instead of one
# ``plan()`` per (algorithm, size) pair.


#: third probe size for the affinity check: far from the 0/1-byte fit
#: points, so curvature in a phase model cannot hide between them
_AFFINE_PROBE_BYTES = 1 << 20

#: relative tolerance for the affine check (float association slack)
_AFFINE_RTOL = 1e-6


def linear_cost(
    algo: str, op: str, ctopo: CommTopology, params: XcclParams
) -> Tuple[float, float]:
    """``(fixed_seconds, seconds_per_byte)`` of one algorithm.

    ``plan(algo, op, n).seconds == fixed + slope * n`` for every size
    ``n`` (up to floating-point association).  Raises if the algorithm
    is structurally ineligible, exactly like :func:`plan`.

    The affine assumption is *verified*, not trusted: a third size is
    probed and :class:`~repro.util.errors.CommunicationError` is raised
    when the phase model is not affine in ``nbytes`` — otherwise a
    future cost-model change could make the sweep/extrapolation path
    (:func:`select_sweep`, and the plan IR's collective pre-selection
    pass built on it) silently disagree with the per-launch
    :func:`select_algorithm`.
    """
    fixed = plan(algo, op, 0, ctopo, params).seconds
    slope = plan(algo, op, 1, ctopo, params).seconds - fixed
    probe = plan(algo, op, _AFFINE_PROBE_BYTES, ctopo, params).seconds
    predicted = fixed + slope * _AFFINE_PROBE_BYTES
    if abs(probe - predicted) > _AFFINE_RTOL * max(abs(probe), abs(predicted), 1e-30):
        raise CommunicationError(
            f"algorithm {algo!r} ({op}) has a non-affine cost model: "
            f"fit from 0/1 bytes predicts {predicted:.6e} s at "
            f"{_AFFINE_PROBE_BYTES} bytes but plan() gives {probe:.6e} s; "
            "linear_cost/select_sweep can no longer stand in for "
            "select_algorithm"
        )
    return fixed, slope


def price_sweep(
    algo: str, op: str, sizes, ctopo: CommTopology, params: XcclParams
) -> np.ndarray:
    """Modelled seconds of one algorithm across a whole size sweep."""
    fixed, slope = linear_cost(algo, op, ctopo, params)
    return fixed + slope * np.asarray(sizes, dtype=np.float64)


def select_sweep(
    op: str, sizes, ctopo: CommTopology, params: XcclParams
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized auto-selection across a size sweep.

    Returns ``(algos, seconds)`` — the algorithm name and modelled time
    per size — applying the same policy gates and preference-order
    tie-breaking as :func:`select_algorithm`, in O(#algorithms) numpy
    operations regardless of how many sizes are priced.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    costs = np.full((len(ALGORITHMS), sizes.size), np.inf)
    for i, algo in enumerate(ALGORITHMS):
        if not eligible(algo, op, ctopo):
            continue
        priced = price_sweep(algo, op, sizes, ctopo, params)
        if algo == "tree":
            priced = np.where(sizes <= params.tree_max_bytes, priced, np.inf)
        elif algo == "hier_ring":
            priced = np.where(sizes >= params.hier_min_bytes, priced, np.inf)
        costs[i] = priced
    # argmin returns the first minimum, and ALGORITHMS is already in
    # preference order — the same tie-break as select_algorithm.
    winner = np.argmin(costs, axis=0)
    picked = np.take_along_axis(costs, winner[None, :], axis=0)[0]
    return np.asarray(ALGORITHMS, dtype=object)[winner], picked
