"""GASPI-flavoured conduit implementation.

Structure mirrors :mod:`repro.gasnet.conduit`; the differences are the
queue abstraction (writes are posted to numbered queues and
``wait_queue`` drains one queue, GASPI's actual completion model) and
notifications (``notify`` posts a small flag the target can wait on,
GASPI's replacement for target-side events).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.memref import MemRef
from repro.cluster.world import World
from repro.faults import RetryingOp, RetryPolicy
from repro.gasnet.conduit import GasnetEvent, Segment
from repro.obs import size_class
from repro.sim import Future
from repro.util.errors import CommunicationError, ConfigurationError
from repro.util.units import MiB, US


@dataclasses.dataclass(frozen=True)
class Gpi2Params:
    """Calibration constants for the GPI-2 software stack."""

    #: initiator cost of gaspi_write (lower than GASNet's put path)
    write_overhead: float = 0.30 * US
    #: initiator cost of gaspi_read
    read_overhead: float = 0.65 * US
    am_overhead: float = 0.70 * US
    #: efficiency below the pipeline threshold (better than GASNet here)
    bw_efficiency_small: float = 0.94
    #: efficiency at/above the threshold (slightly worse than GASNet)
    bw_efficiency_large: float = 0.93
    pipeline_threshold: int = 4 * MiB
    #: cost of posting/waiting one notification
    notify_overhead: float = 0.15 * US
    #: number of communication queues per rank
    num_queues: int = 8
    #: messages at/above this size stripe across all node NICs
    multirail_threshold: int = 4 * MiB
    #: recovery policy applied when a fault plan is installed
    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)

    def bw_efficiency(self, nbytes: int) -> float:
        if nbytes >= self.pipeline_threshold:
            return self.bw_efficiency_large
        return self.bw_efficiency_small

    def rails_for(self, nbytes: int, nics_per_node: int) -> int:
        return nics_per_node if nbytes >= self.multirail_threshold else 1


class Notification:
    """A GASPI notification slot: a remotely settable flag + value."""

    def __init__(self, sim, notification_id: int) -> None:
        self.notification_id = notification_id
        self._future = Future(sim, description=f"notify:{notification_id}")

    def post(self, value: int) -> None:
        # Idempotent: a retried notify may deliver twice; GASPI flag
        # semantics (set, not increment) make the duplicate harmless.
        if self._future.fired:
            return
        self._future.fire(value)

    def fail(self, error: BaseException) -> None:
        """Surface an unrecoverable notify to waiters of this slot."""
        if self._future.fired:
            return
        self._future.fail(error)

    def test(self) -> bool:
        return self._future.poll()

    def wait(self) -> int:
        """Block until the notification arrives; returns its value."""
        return self._future.wait()


class Gpi2Conduit:
    """GPI-2 conduit shared by all ranks (InfiniBand fabrics only)."""

    def __init__(self, world: World, params: Optional[Gpi2Params] = None) -> None:
        if world.platform.interconnect != "infiniband":
            raise ConfigurationError(
                "the GPI-2 backend currently supports only InfiniBand "
                f"environments (platform {world.platform.name} uses "
                f"{world.platform.interconnect}); use GASNet-EX instead"
            )
        self.world = world
        self.params = params or Gpi2Params()
        self.clients: List[Gpi2Client] = [
            Gpi2Client(self, rank) for rank in range(world.nranks)
        ]

    def client(self, rank: int) -> "Gpi2Client":
        if not 0 <= rank < len(self.clients):
            raise CommunicationError(f"rank {rank} out of range")
        return self.clients[rank]


class Gpi2Client:
    """One rank's GASPI endpoint (same interface as GasnetClient)."""

    def __init__(self, conduit: Gpi2Conduit, rank: int) -> None:
        self.conduit = conduit
        self.rank = rank
        self.segments: List[Segment] = []
        self._queues: List[List[GasnetEvent]] = [
            [] for _ in range(conduit.params.num_queues)
        ]
        self._notifications: Dict[int, Notification] = {}
        self._am_handlers: Dict[str, Callable[[int, Any], Any]] = {}
        self.puts_issued = 0
        self.gets_issued = 0
        self.ams_sent = 0
        # -- metrics (message counts/bytes by size class; repro.obs) --
        obs = getattr(conduit.world, "obs", None)
        if obs is not None:
            self._m_msgs = obs.counter(
                "conduit.messages", "conduit messages by op and size class"
            )
            self._m_bytes = obs.counter(
                "conduit.bytes", "conduit payload bytes by op and size class"
            )
        else:
            self._m_msgs = self._m_bytes = None
        self._obs = obs

    def _trace_delivery(
        self, name: str, peer_rank: int, on_complete: Callable[[], Any]
    ) -> Callable[[], Any]:
        """Causal delivery wrapper (see GasnetClient._trace_delivery)."""
        obs = self._obs
        if obs is None or not obs.enabled:
            return on_complete
        ctx = obs.capture(track=f"rank{self.rank}")
        if ctx is None:
            return on_complete
        world = self.conduit.world

        def wrapped() -> None:
            on_complete()
            obs.deliver(name, ctx, world.sim.now, rank=peer_rank)

        return wrapped

    def _count_message(self, op: str, nbytes: int) -> None:
        if self._m_msgs is None:
            return
        cls = size_class(nbytes)
        labels = dict(conduit="gpi2", op=op, size_class=cls, rank=self.rank)
        self._m_msgs.inc(**labels)
        self._m_bytes.inc(nbytes, **labels)

    # -- segments (GASPI numbers them; addresses still resolve) --------------

    def attach_segment(self, memref: MemRef) -> Segment:
        """Register a segment (``gaspi_segment_register`` analogue)."""
        if hasattr(memref.storage, "address"):
            base = memref.storage.address + memref.offset
        else:
            base = 0x2000_0000 + sum(s.size for s in self.segments)
        seg = Segment(self.rank, memref, base)
        for existing in self.segments:
            if seg.base_address < existing.end_address and existing.base_address < seg.end_address:
                raise CommunicationError("overlapping GASPI segments")
        self.segments.append(seg)
        return seg

    def attach_space_segment(self, space, base_address: int, size: int):
        """Register a reserved device range (see GasnetClient)."""
        from repro.gasnet.conduit import SpaceSegment

        seg = SpaceSegment(self.rank, space, base_address, size)
        for existing in self.segments:
            if seg.base_address < existing.end_address and existing.base_address < seg.end_address:
                raise CommunicationError("overlapping GASPI segments")
        self.segments.append(seg)
        return seg

    def _resolve_remote(self, rank: int, address: int, nbytes: int) -> MemRef:
        target = self.conduit.client(rank)
        for seg in target.segments:
            if seg.contains(address, nbytes):
                return seg.resolve(address, nbytes)
        raise CommunicationError(
            f"rank {rank} has no GASPI segment covering [{address:#x}, +{nbytes})"
        )

    # -- one-sided write/read ---------------------------------------------------

    def _launch(self, issue: Callable[[], Future], op: str) -> Future:
        """Issue one operation, with recovery when a fault plan is on
        (see :meth:`repro.gasnet.conduit.GasnetClient._launch`)."""
        world = self.conduit.world
        plan = getattr(world, "fault_plan", None)
        if plan is None:
            return issue()
        stall = plan.draw("rank.stall", rank=self.rank, op=op)
        if stall is not None and stall.latency > 0:
            world.sim.sleep(stall.latency)
        return RetryingOp(
            world.sim,
            issue,
            self.conduit.params.retry,
            obs=getattr(world, "obs", None),
            labels=dict(conduit="gpi2", op=op, rank=self.rank),
            description=f"gaspi-{op}-r{self.rank}",
        ).future

    def put_nb(
        self, dst_rank: int, dst_address: int, src: MemRef, queue: int = 0
    ) -> GasnetEvent:
        """``gaspi_write``: one-sided put posted to a queue."""
        self._check_queue(queue)
        dst = self._resolve_remote(dst_rank, dst_address, src.nbytes)
        params = self.conduit.params
        world = self.conduit.world
        nic_overhead = world.platform.node.nic.message_overhead
        complete = self._trace_delivery(
            "conduit.deliver", dst_rank, lambda: dst.copy_from(src)
        )

        def issue() -> Future:
            return world.fabric.transfer(
                src.endpoint,
                dst.endpoint,
                src.nbytes,
                operation="put",
                gpu_memory=src.is_device or dst.is_device,
                on_complete=complete,
                extra_latency=params.write_overhead,
                occupancy_overhead=nic_overhead,
                bandwidth_factor=params.bw_efficiency(src.nbytes),
                rails=params.rails_for(
                    src.nbytes, world.platform.node.nics_per_node
                ),
                force_network=src.endpoint != dst.endpoint
                and src.endpoint.node == dst.endpoint.node,
                fault_site="conduit.put",
                initiator=self.rank,
            )

        fut = self._launch(issue, "put")
        self.puts_issued += 1
        self._count_message("put", src.nbytes)
        event = GasnetEvent(fut)
        self._queues[queue].append(event)
        return event

    def get_nb(
        self, src_rank: int, src_address: int, dst: MemRef, queue: int = 0
    ) -> GasnetEvent:
        """``gaspi_read``: one-sided get posted to a queue."""
        self._check_queue(queue)
        src = self._resolve_remote(src_rank, src_address, dst.nbytes)
        params = self.conduit.params
        world = self.conduit.world
        nic_overhead = world.platform.node.nic.message_overhead
        complete = self._trace_delivery(
            "conduit.deliver", src_rank, lambda: dst.copy_from(src)
        )

        def issue() -> Future:
            return world.fabric.transfer(
                src.endpoint,
                dst.endpoint,
                dst.nbytes,
                operation="get",
                gpu_memory=src.is_device or dst.is_device,
                on_complete=complete,
                extra_latency=params.read_overhead,
                occupancy_overhead=nic_overhead,
                bandwidth_factor=params.bw_efficiency(dst.nbytes),
                rails=params.rails_for(
                    dst.nbytes, world.platform.node.nics_per_node
                ),
                force_network=src.endpoint != dst.endpoint
                and src.endpoint.node == dst.endpoint.node,
                fault_site="conduit.get",
                initiator=self.rank,
            )

        fut = self._launch(issue, "get")
        self.gets_issued += 1
        self._count_message("get", dst.nbytes)
        event = GasnetEvent(fut)
        self._queues[queue].append(event)
        return event

    def put_batch_nb(
        self, dst_rank: int, ops: Sequence[Tuple[int, MemRef]], queue: int = 0
    ) -> GasnetEvent:
        """Aggregated ``gaspi_write_list``: ``(dst_address, src_memref)``
        pairs coalesced into one conduit message posted to one queue —
        one write overhead, one NIC message overhead, summed payload.
        All pairs must share the same endpoints (the RMA aggregation
        layer guarantees this); a transient retries the whole batch.
        """
        return self._batch_nb("put", dst_rank, ops, queue)

    def get_batch_nb(
        self, src_rank: int, ops: Sequence[Tuple[int, MemRef]], queue: int = 0
    ) -> GasnetEvent:
        """Aggregated ``gaspi_read_list`` (see :meth:`put_batch_nb`)."""
        return self._batch_nb("get", src_rank, ops, queue)

    def _batch_nb(
        self, op: str, peer_rank: int, ops: Sequence[Tuple[int, MemRef]], queue: int
    ) -> GasnetEvent:
        self._check_queue(queue)
        if not ops:
            raise CommunicationError(f"empty {op} batch for rank {peer_rank}")
        resolved = [
            (self._resolve_remote(peer_rank, address, local.nbytes), local)
            for address, local in ops
        ]
        remote0, local0 = resolved[0]
        for remote, local in resolved[1:]:
            if (
                remote.endpoint != remote0.endpoint
                or local.endpoint != local0.endpoint
            ):
                raise CommunicationError(
                    f"{op} batch mixes endpoints: "
                    f"{local.endpoint}->{remote.endpoint} vs "
                    f"{local0.endpoint}->{remote0.endpoint}"
                )
        total = sum(local.nbytes for _remote, local in resolved)
        params = self.conduit.params
        world = self.conduit.world
        nic_overhead = world.platform.node.nic.message_overhead
        if op == "put":
            src_ep, dst_ep = local0.endpoint, remote0.endpoint
            overhead = params.write_overhead
        else:
            src_ep, dst_ep = remote0.endpoint, local0.endpoint
            overhead = params.read_overhead

        def apply_batch() -> None:
            for remote, local in resolved:
                if op == "put":
                    remote.copy_from(local)
                else:
                    local.copy_from(remote)

        complete = self._trace_delivery("conduit.deliver", peer_rank, apply_batch)

        def issue() -> Future:
            return world.fabric.transfer(
                src_ep,
                dst_ep,
                total,
                operation=op,
                gpu_memory=any(
                    rem.is_device or loc.is_device for rem, loc in resolved
                ),
                on_complete=complete,
                extra_latency=overhead,
                occupancy_overhead=nic_overhead,
                bandwidth_factor=params.bw_efficiency(total),
                rails=params.rails_for(total, world.platform.node.nics_per_node),
                force_network=src_ep != dst_ep and src_ep.node == dst_ep.node,
                fault_site=f"conduit.{op}",
                initiator=self.rank,
            )

        fut = self._launch(issue, op)
        if op == "put":
            self.puts_issued += 1
        else:
            self.gets_issued += 1
        self._count_message(op, total)
        event = GasnetEvent(fut)
        self._queues[queue].append(event)
        return event

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.conduit.params.num_queues:
            raise CommunicationError(
                f"queue {queue} out of range (GPI-2 has "
                f"{self.conduit.params.num_queues} queues)"
            )

    # -- completion ------------------------------------------------------------

    def wait_queue(self, queue: int) -> None:
        """``gaspi_wait``: drain all operations posted to one queue."""
        self._check_queue(queue)
        pending, self._queues[queue] = self._queues[queue], []
        for event in pending:
            if not event.test():
                event.wait()

    def sync_all(self) -> None:
        """Drain every queue (conduit-interface compatibility)."""
        for queue in range(self.conduit.params.num_queues):
            self.wait_queue(queue)

    @property
    def pending_count(self) -> int:
        total = 0
        for q in range(self.conduit.params.num_queues):
            self._queues[q] = [e for e in self._queues[q] if not e.test()]
            total += len(self._queues[q])
        return total

    def poll(self) -> None:
        self.conduit.world.sim.sleep(self.conduit.params.notify_overhead)

    # -- notifications -----------------------------------------------------------

    def notification(self, notification_id: int) -> Notification:
        """The local notification slot with the given id (created lazily)."""
        if notification_id not in self._notifications:
            self._notifications[notification_id] = Notification(
                self.conduit.world.sim, notification_id
            )
        return self._notifications[notification_id]

    def notify(self, dst_rank: int, notification_id: int, value: int = 1) -> None:
        """``gaspi_notify``: post a flag on the target rank.

        Under a fault plan the notify is retried like any one-sided op
        (``Notification.post`` is idempotent, so a duplicate delivery
        from a rescued-then-completed attempt is harmless); exhausted
        retries *fail the target's notification slot* so its waiter
        observes the FatalError instead of deadlocking.
        """
        world = self.conduit.world
        src_host = world.topology.host(world.ranks[self.rank].node)
        dst_host = world.topology.host(world.ranks[dst_rank].node)
        target = self.conduit.client(dst_rank)
        complete = self._trace_delivery(
            "conduit.notify.deliver",
            dst_rank,
            lambda: target.notification(notification_id).post(value),
        )

        def issue() -> Future:
            return world.fabric.transfer(
                src_host,
                dst_host,
                8,
                operation="put",
                gpu_memory=False,
                on_complete=complete,
                extra_latency=self.conduit.params.notify_overhead,
                fault_site="conduit.notify",
                initiator=self.rank,
            )

        fut = self._launch(issue, "notify")

        def surface(done: Future) -> None:
            if done.error is not None:
                target.notification(notification_id).fail(done.error)

        fut.add_done_callback(surface)

    # -- active messages (control plane parity with GasnetClient) -------------

    def register_handler(self, name: str, fn: Callable[[int, Any], Any]) -> None:
        if name in self._am_handlers:
            raise CommunicationError(f"AM handler {name!r} already registered")
        self._am_handlers[name] = fn

    def am_request(self, dst_rank: int, handler: str, payload: Any, payload_bytes: int = 64) -> Future:
        """Control-plane request/reply built on GASPI passive messages."""
        world = self.conduit.world
        params = self.conduit.params
        target = self.conduit.client(dst_rank)
        src_host = world.topology.host(world.ranks[self.rank].node)
        dst_host = world.topology.host(world.ranks[dst_rank].node)
        self.ams_sent += 1
        self._count_message("am", payload_bytes)
        obs = self._obs
        send_ctx = obs.capture(track=f"rank{self.rank}") if obs is not None else None

        def issue() -> Future:
            attempt = Future(world.sim, description=f"gaspi-am:{handler}->r{dst_rank}")

            def propagate(fut: Future) -> None:
                if fut.error is not None and not attempt.fired:
                    attempt.fail(fut.error)

            def deliver() -> None:
                try:
                    handler_fn = target._am_handlers[handler]
                except KeyError:
                    raise CommunicationError(
                        f"rank {dst_rank} has no AM handler {handler!r}"
                    ) from None
                reply = handler_fn(self.rank, payload)
                handler_ctx = (
                    obs.deliver(
                        "conduit.am.deliver", send_ctx, world.sim.now, rank=dst_rank
                    )
                    if obs is not None
                    else None
                )

                def reply_done() -> None:
                    attempt.fire(reply)
                    if obs is not None:
                        obs.deliver(
                            "conduit.am.reply",
                            handler_ctx,
                            world.sim.now,
                            rank=self.rank,
                        )

                rep = world.fabric.transfer(
                    dst_host,
                    src_host,
                    payload_bytes,
                    operation="put",
                    gpu_memory=False,
                    on_complete=reply_done,
                    extra_latency=params.am_overhead,
                    fault_site="conduit.am",
                    initiator=dst_rank,
                )
                attempt.eta = getattr(rep, "eta", None)  # type: ignore[attr-defined]
                rep.add_done_callback(propagate)

            req = world.fabric.transfer(
                src_host,
                dst_host,
                payload_bytes,
                operation="put",
                gpu_memory=False,
                on_complete=deliver,
                extra_latency=params.am_overhead,
                fault_site="conduit.am",
                initiator=self.rank,
            )
            attempt.eta = getattr(req, "eta", None)  # type: ignore[attr-defined]
            req.add_done_callback(propagate)
            return attempt

        return self._launch(issue, "am")
