"""GPI-2 (GASPI) communication conduit.

The paper provides a GPI-2 backend as an alternative to GASNet-EX,
valid only on InfiniBand fabrics (§4.1).  The GASPI model differs from
GASNet in flavour — numbered segments, write/read posted to *queues*,
and lightweight *notifications* for remote completion signalling — but
exposes the same capability set the DiOMP runtime needs, so
:class:`~repro.gpi2.gaspi.Gpi2Client` implements the identical
``put_nb``/``get_nb``/``sync_all``/AM interface as
:class:`~repro.gasnet.GasnetClient` and can be swapped in via the
runtime's ``conduit=`` option.

Calibration (Fig. 5): GPI-2's write path has a lower per-op overhead
and slightly better mid-size efficiency than GASNet-EX, while
GASNet-EX pipelines very large transfers marginally better — producing
the crossover the paper measures.
"""

from repro.gpi2.gaspi import Gpi2Conduit, Gpi2Client, Gpi2Params, Notification

__all__ = ["Gpi2Conduit", "Gpi2Client", "Gpi2Params", "Notification"]
