"""Small shared utilities: the exception hierarchy and unit helpers.

Everything in :mod:`repro` that is not domain logic lives here so the
domain packages stay focused.  The module deliberately has no
dependencies on the simulation kernel.
"""

from repro.util.errors import (
    ReproError,
    SimulationError,
    DeadlockError,
    AllocationError,
    CommunicationError,
    ConfigurationError,
    DeviceError,
)
from repro.util.units import (
    KiB,
    MiB,
    GiB,
    US,
    MS,
    SEC,
    GB,
    format_bytes,
    format_time,
    format_bandwidth,
    parse_size,
)

__all__ = [
    "ReproError",
    "SimulationError",
    "DeadlockError",
    "AllocationError",
    "CommunicationError",
    "ConfigurationError",
    "DeviceError",
    "KiB",
    "MiB",
    "GiB",
    "US",
    "MS",
    "SEC",
    "GB",
    "format_bytes",
    "format_time",
    "format_bandwidth",
    "parse_size",
]
