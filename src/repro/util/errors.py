"""Exception hierarchy for the repro package.

All library exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause
while still distinguishing subsystems by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Raised for violations of the discrete-event simulation protocol.

    Examples: calling a blocking primitive from outside a simulated
    task, resuming a finished task, or running a simulator twice.
    """


class DeadlockError(SimulationError):
    """Raised when the event queue drains while tasks are still blocked.

    The message lists the blocked tasks and what each is waiting on,
    which is usually enough to diagnose a missing notify/put/fence.
    """


class AllocationError(ReproError):
    """Raised when a memory allocation cannot be satisfied.

    Covers device-memory exhaustion, global-segment exhaustion, invalid
    frees (double free, unknown pointer), and allocator misuse.
    """


class CommunicationError(ReproError):
    """Raised for invalid communication requests.

    Examples: put/get outside a registered segment, rank out of range,
    size mismatch between send and receive buffers, or operating on a
    torn-down communicator.
    """


class FaultError(CommunicationError):
    """Base of the fault/recovery taxonomy (see :mod:`repro.faults`).

    Everything the fault-injection layer produces and the retry layer
    surfaces derives from this class, so callers can separate injected
    degradation from ordinary misuse errors.
    """


class TransientError(FaultError):
    """A recoverable communication failure.

    The conduit retry layer treats these as retryable: the operation is
    reissued with exponential backoff until it succeeds or the policy's
    attempt budget is exhausted.
    """


class TimeoutError(FaultError):
    """An operation exceeded its per-attempt timeout.

    Produced by the retry layer when a completion event never arrives
    (e.g. a dropped event injected by a fault plan).  Counts as a failed
    attempt; retried like :class:`TransientError`.
    """


class FatalError(FaultError):
    """An unrecoverable communication failure.

    Raised when retries are exhausted (``__cause__`` holds the last
    underlying error) or when a fault plan injects a non-retryable
    failure.  Surfaced to the application at the next ``ompx_fence``.
    """


class ConfigurationError(ReproError):
    """Raised when a platform/cluster/runtime configuration is invalid."""


class PercentileError(ConfigurationError, ValueError):
    """An invalid percentile rank ``q`` (outside ``[0, 1]``).

    The unified taxonomy for every percentile surface: historically
    :func:`repro.obs.rollup.exact_percentile` raised
    :class:`ConfigurationError` while
    ``ServiceResult.queue_wait_percentile`` raised :class:`ValueError`
    for the same misuse.  Both now raise this class, which inherits
    from *both* bases so existing ``except`` clauses keep working.
    """


class PlanVerificationError(ConfigurationError):
    """A communication plan failed verification (see :mod:`repro.plan`).

    The message lists every issue the verifier found — dangling buffer
    references, cyclic or unknown dependencies, out-of-range accesses,
    cross-rank peer mismatches, unfenced RMA, or one-sided visibility
    hazards.
    """


class DeviceError(ReproError):
    """Raised by the simulated device runtime.

    Covers invalid stream/event handles, out-of-bounds device copies,
    IPC handle misuse, and peer-access violations.
    """
