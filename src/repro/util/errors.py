"""Exception hierarchy for the repro package.

All library exceptions derive from :class:`ReproError` so callers can
catch everything the library raises with a single ``except`` clause
while still distinguishing subsystems by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class SimulationError(ReproError):
    """Raised for violations of the discrete-event simulation protocol.

    Examples: calling a blocking primitive from outside a simulated
    task, resuming a finished task, or running a simulator twice.
    """


class DeadlockError(SimulationError):
    """Raised when the event queue drains while tasks are still blocked.

    The message lists the blocked tasks and what each is waiting on,
    which is usually enough to diagnose a missing notify/put/fence.
    """


class AllocationError(ReproError):
    """Raised when a memory allocation cannot be satisfied.

    Covers device-memory exhaustion, global-segment exhaustion, invalid
    frees (double free, unknown pointer), and allocator misuse.
    """


class CommunicationError(ReproError):
    """Raised for invalid communication requests.

    Examples: put/get outside a registered segment, rank out of range,
    size mismatch between send and receive buffers, or operating on a
    torn-down communicator.
    """


class ConfigurationError(ReproError):
    """Raised when a platform/cluster/runtime configuration is invalid."""


class DeviceError(ReproError):
    """Raised by the simulated device runtime.

    Covers invalid stream/event handles, out-of-bounds device copies,
    IPC handle misuse, and peer-access violations.
    """
