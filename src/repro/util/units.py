"""Unit constants and human-readable formatting helpers.

Conventions used throughout the library:

* **time** is in seconds (floats on the simulated clock),
* **sizes** are in bytes (ints),
* **bandwidth** is in bytes/second.

The formatting helpers are used by the benchmark report printers so the
reproduced figures read like the paper's axes (µs, GB/s, MiB...).
"""

from __future__ import annotations

# -- size units (binary, as used for message sizes) -----------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# -- decimal bandwidth unit (vendor spec sheets use GB = 1e9) --------------
GB = 1_000_000_000

# -- time units ------------------------------------------------------------
US = 1e-6
MS = 1e-3
SEC = 1.0

_SIZE_SUFFIXES = ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB"))


def format_bytes(n: int) -> str:
    """Render a byte count like ``8 B``, ``128 KiB`` or ``64 MiB``.

    Exact multiples render without a decimal point (matching the tick
    labels in the paper's figures); everything else keeps one decimal.
    """
    if n < 0:
        raise ValueError(f"negative byte count: {n}")
    for unit, suffix in _SIZE_SUFFIXES:
        if n >= unit:
            value = n / unit
            if n % unit == 0:
                return f"{n // unit} {suffix}"
            return f"{value:.1f} {suffix}"
    return f"{n} B"


def format_time(seconds: float) -> str:
    """Render a duration with the most natural unit (ns/µs/ms/s)."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds == 0:
        return "0 s"
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth in MB/s or GB/s (decimal, as in the figures)."""
    if bytes_per_second < 0:
        raise ValueError(f"negative bandwidth: {bytes_per_second}")
    if bytes_per_second >= 1e9:
        return f"{bytes_per_second / 1e9:.2f} GB/s"
    return f"{bytes_per_second / 1e6:.2f} MB/s"


_PARSE_UNITS = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}


def parse_size(text: str) -> int:
    """Parse ``"8K"``, ``"64MiB"``, ``"128 kb"`` ... into a byte count.

    Binary units are assumed (``KB`` == ``KiB``), which matches how the
    paper quotes message sizes.
    """
    s = text.strip().lower()
    idx = len(s)
    while idx > 0 and not s[idx - 1].isdigit():
        idx -= 1
    digits, unit = s[:idx].strip(), s[idx:].strip()
    if not digits:
        raise ValueError(f"cannot parse size: {text!r}")
    try:
        factor = _PARSE_UNITS[unit]
    except KeyError:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}") from None
    return int(digits) * factor
