"""The GASNet-EX conduit: segments, one-sided RMA, active messages.

API shape follows GASNet-EX:

* every rank *attaches* segments (registered memory regions a remote
  peer may target by address),
* ``put_nb`` / ``get_nb`` are fully one-sided — the target rank's CPU
  does not participate; the conduit resolves the remote address against
  the target's registered segments,
* operations return :class:`GasnetEvent` handles supporting ``test``
  (non-blocking, used by DiOMP's hybrid polling loop) and ``wait``,
* active messages carry small control payloads and run a registered
  handler on the target at delivery time (used for allocation
  coordination and OMPCCL UniqueID exchange).

Timing: per-op initiator overhead + NIC message overhead are added as
extra latency on the fabric transfer; protocol efficiency scales the
achievable fraction of link bandwidth, with large messages pipelining
slightly better (matching measured GASNet-EX behaviour).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.memref import MemRef
from repro.cluster.world import World
from repro.faults import RetryingOp, RetryPolicy
from repro.network.fabric import TransferRecord
from repro.obs import size_class
from repro.sim import Future
from repro.util.errors import CommunicationError
from repro.util.units import MiB, US


@dataclasses.dataclass(frozen=True)
class GasnetParams:
    """Calibration constants for the conduit's software stack."""

    #: initiator-side software cost of issuing one put
    put_overhead: float = 0.40 * US
    #: initiator-side software cost of issuing one get (slightly higher:
    #: the response must be matched to the request)
    get_overhead: float = 0.55 * US
    #: cost of one AM (short control message) above the wire time
    am_overhead: float = 0.60 * US
    #: fraction of link bandwidth sustained below the pipeline threshold
    bw_efficiency_small: float = 0.90
    #: fraction sustained at/above the pipeline threshold
    bw_efficiency_large: float = 0.95
    #: message size where the conduit switches to pipelined transfers
    pipeline_threshold: int = 4 * MiB
    #: cost of one explicit poll call (gasnet_AMPoll)
    poll_cost: float = 0.05 * US
    #: messages at/above this size stripe across all node NICs
    #: (GASNet-EX multirail support on multi-NIC nodes)
    multirail_threshold: int = 4 * MiB
    #: recovery policy applied when a fault plan is installed
    retry: RetryPolicy = dataclasses.field(default_factory=RetryPolicy)

    def bw_efficiency(self, nbytes: int) -> float:
        if nbytes >= self.pipeline_threshold:
            return self.bw_efficiency_large
        return self.bw_efficiency_small

    def rails_for(self, nbytes: int, nics_per_node: int) -> int:
        return nics_per_node if nbytes >= self.multirail_threshold else 1


class GasnetEvent:
    """A non-blocking operation handle (``gex_Event_t``)."""

    def __init__(self, future: Future) -> None:
        self._future = future

    def test(self) -> bool:
        """Non-blocking completion probe.

        True once the operation reached a terminal state — including
        terminal *failure* (retries exhausted); check :attr:`failure`.
        """
        return self._future.poll()

    def wait(self) -> TransferRecord:
        """Block the calling task until the operation completes.

        Raises the operation's :class:`~repro.util.errors.FatalError`
        if recovery was exhausted.
        """
        return self._future.wait()

    @property
    def failure(self) -> Optional[BaseException]:
        """The terminal error, if the operation failed unrecoverably."""
        return self._future.error

    @property
    def eta(self) -> Optional[float]:
        """Expected completion time of the current attempt (hybrid
        polling hint; None when unknown)."""
        return getattr(self._future, "eta", None)

    @property
    def record(self) -> Optional[TransferRecord]:
        """The transfer record, once complete."""
        return self._future.value if self._future.fired else None


class Segment:
    """A registered memory region remote peers may target by address."""

    def __init__(self, owner_rank: int, memref: MemRef, base_address: int) -> None:
        self.owner_rank = owner_rank
        self.memref = memref
        self.base_address = base_address
        self.size = memref.nbytes

    @property
    def end_address(self) -> int:
        return self.base_address + self.size

    def contains(self, address: int, nbytes: int) -> bool:
        return self.base_address <= address and address + nbytes <= self.end_address

    def resolve(self, address: int, nbytes: int) -> MemRef:
        """The MemRef slice for an in-segment address range."""
        if not self.contains(address, nbytes):
            raise CommunicationError(
                f"address range [{address:#x}, +{nbytes}) outside segment "
                f"[{self.base_address:#x}, +{self.size})"
            )
        return self.memref.slice(address - self.base_address, nbytes)


class SpaceSegment(Segment):
    """A segment backed by a whole reserved device address range.

    Instead of one fixed buffer, the segment resolves addresses through
    the device memory space, so allocations *placed later inside the
    reservation* are remotely accessible without re-registration — the
    DiOMP property of Fig. 1b (register once, allocate many).
    """

    def __init__(self, owner_rank: int, space, base_address: int, size: int) -> None:
        self.owner_rank = owner_rank
        self.space = space
        self.base_address = base_address
        self.size = size

    def resolve(self, address: int, nbytes: int) -> MemRef:
        if not self.contains(address, nbytes):
            raise CommunicationError(
                f"address range [{address:#x}, +{nbytes}) outside segment "
                f"[{self.base_address:#x}, +{self.size})"
            )
        buffer, offset = self.space.resolve(address)
        if offset + nbytes > buffer.size:
            raise CommunicationError(
                f"range [{address:#x}, +{nbytes}) spans beyond one live "
                "allocation in the segment"
            )
        return MemRef.device(buffer, offset, nbytes)


class GasnetConduit:
    """Conduit state shared by all ranks of a world."""

    def __init__(self, world: World, params: Optional[GasnetParams] = None) -> None:
        self.world = world
        self.params = params or GasnetParams()
        self.clients: List[GasnetClient] = [
            GasnetClient(self, rank) for rank in range(world.nranks)
        ]

    def client(self, rank: int) -> "GasnetClient":
        if not 0 <= rank < len(self.clients):
            raise CommunicationError(f"rank {rank} out of range")
        return self.clients[rank]


class GasnetClient:
    """One rank's endpoint into the conduit."""

    def __init__(self, conduit: GasnetConduit, rank: int) -> None:
        self.conduit = conduit
        self.rank = rank
        self.segments: List[Segment] = []
        self._am_handlers: Dict[str, Callable[[int, Any], Any]] = {}
        #: events issued and not yet known-complete (drained by sync_all)
        self._pending: List[GasnetEvent] = []
        self.puts_issued = 0
        self.gets_issued = 0
        self.ams_sent = 0
        # -- metrics (message counts/bytes by size class; repro.obs) --
        obs = getattr(conduit.world, "obs", None)
        if obs is not None:
            self._m_msgs = obs.counter(
                "conduit.messages", "conduit messages by op and size class"
            )
            self._m_bytes = obs.counter(
                "conduit.bytes", "conduit payload bytes by op and size class"
            )
        else:
            self._m_msgs = self._m_bytes = None
        self._obs = obs

    def _trace_delivery(
        self, name: str, peer_rank: int, on_complete: Callable[[], Any]
    ) -> Callable[[], Any]:
        """Wrap a completion callback with causal delivery recording.

        Captures the initiating rank's innermost open span *now* (task
        context, span still open) and, when the transfer lands, links
        it into the peer rank's track — either into a span open there
        (a fence/barrier genuinely waiting) or as a standalone
        zero-duration delivery span.
        """
        obs = self._obs
        if obs is None or not obs.enabled:
            return on_complete
        ctx = obs.capture(track=f"rank{self.rank}")
        if ctx is None:
            return on_complete
        world = self.conduit.world

        def wrapped() -> None:
            on_complete()
            obs.deliver(name, ctx, world.sim.now, rank=peer_rank)

        return wrapped

    def _count_message(self, op: str, nbytes: int) -> None:
        if self._m_msgs is None:
            return
        cls = size_class(nbytes)
        labels = dict(conduit="gasnet", op=op, size_class=cls, rank=self.rank)
        self._m_msgs.inc(**labels)
        self._m_bytes.inc(nbytes, **labels)

    # -- segment management ---------------------------------------------------

    def attach_segment(self, memref: MemRef) -> Segment:
        """Register a memory region for remote access.

        For device memory the segment's base address is the device
        address (pointer identity with libomptarget, which is what lets
        DiOMP share one registration — Fig. 1b).  Host segments get a
        synthetic address space per rank.
        """
        if hasattr(memref.storage, "address"):
            base = memref.storage.address + memref.offset
        else:
            base = 0x1000_0000 + sum(s.size for s in self.segments)
        seg = Segment(self.rank, memref, base)
        for existing in self.segments:
            if seg.base_address < existing.end_address and existing.base_address < seg.end_address:
                raise CommunicationError(
                    f"segment [{seg.base_address:#x}, +{seg.size}) overlaps an "
                    "already attached segment"
                )
        self.segments.append(seg)
        return seg

    def attach_space_segment(self, space, base_address: int, size: int) -> SpaceSegment:
        """Register a reserved device address range as a segment.

        Used by DiOMP: the whole global-segment reservation is
        registered once; later placements inside it are remotely
        addressable with no further registration.
        """
        seg = SpaceSegment(self.rank, space, base_address, size)
        for existing in self.segments:
            if seg.base_address < existing.end_address and existing.base_address < seg.end_address:
                raise CommunicationError("segment overlaps an attached segment")
        self.segments.append(seg)
        return seg

    def _resolve_remote(self, rank: int, address: int, nbytes: int) -> MemRef:
        target = self.conduit.client(rank)
        for seg in target.segments:
            if seg.contains(address, nbytes):
                return seg.resolve(address, nbytes)
        raise CommunicationError(
            f"rank {rank} has no attached segment covering "
            f"[{address:#x}, +{nbytes})"
        )

    # -- one-sided RMA -------------------------------------------------------

    def _launch(self, issue: Callable[[], Future], op: str) -> Future:
        """Issue one operation, with recovery when a fault plan is on.

        Without a plan the attempt future is returned as-is (the
        fault-free hot path is unchanged).  With one, the initiating
        rank first draws the ``rank.stall`` site (we are in task
        context here, so a stall really blocks the issuing rank), then
        the attempt is driven by a :class:`~repro.faults.RetryingOp`
        under the conduit's :class:`~repro.faults.RetryPolicy`.
        """
        world = self.conduit.world
        plan = getattr(world, "fault_plan", None)
        if plan is None:
            return issue()
        stall = plan.draw("rank.stall", rank=self.rank, op=op)
        if stall is not None and stall.latency > 0:
            world.sim.sleep(stall.latency)
        return RetryingOp(
            world.sim,
            issue,
            self.conduit.params.retry,
            obs=getattr(world, "obs", None),
            labels=dict(conduit="gasnet", op=op, rank=self.rank),
            description=f"gasnet-{op}-r{self.rank}",
        ).future

    def put_nb(self, dst_rank: int, dst_address: int, src: MemRef) -> GasnetEvent:
        """Non-blocking one-sided put of ``src`` to a remote address."""
        dst = self._resolve_remote(dst_rank, dst_address, src.nbytes)
        params = self.conduit.params
        world = self.conduit.world
        nic_overhead = world.platform.node.nic.message_overhead
        complete = self._trace_delivery(
            "conduit.deliver", dst_rank, lambda: dst.copy_from(src)
        )

        def issue() -> Future:
            return world.fabric.transfer(
                src.endpoint,
                dst.endpoint,
                src.nbytes,
                operation="put",
                gpu_memory=src.is_device or dst.is_device,
                on_complete=complete,
                extra_latency=params.put_overhead,
                occupancy_overhead=nic_overhead,
                bandwidth_factor=params.bw_efficiency(src.nbytes),
                rails=params.rails_for(
                    src.nbytes, world.platform.node.nics_per_node
                ),
                force_network=src.endpoint != dst.endpoint
                and src.endpoint.node == dst.endpoint.node,
                fault_site="conduit.put",
                initiator=self.rank,
            )

        fut = self._launch(issue, "put")
        self.puts_issued += 1
        self._count_message("put", src.nbytes)
        event = GasnetEvent(fut)
        self._pending.append(event)
        return event

    def get_nb(self, src_rank: int, src_address: int, dst: MemRef) -> GasnetEvent:
        """Non-blocking one-sided get from a remote address into ``dst``."""
        src = self._resolve_remote(src_rank, src_address, dst.nbytes)
        params = self.conduit.params
        world = self.conduit.world
        nic_overhead = world.platform.node.nic.message_overhead
        complete = self._trace_delivery(
            "conduit.deliver", src_rank, lambda: dst.copy_from(src)
        )

        def issue() -> Future:
            return world.fabric.transfer(
                src.endpoint,
                dst.endpoint,
                dst.nbytes,
                operation="get",
                gpu_memory=src.is_device or dst.is_device,
                on_complete=complete,
                extra_latency=params.get_overhead,
                occupancy_overhead=nic_overhead,
                bandwidth_factor=params.bw_efficiency(dst.nbytes),
                rails=params.rails_for(
                    dst.nbytes, world.platform.node.nics_per_node
                ),
                force_network=src.endpoint != dst.endpoint
                and src.endpoint.node == dst.endpoint.node,
                fault_site="conduit.get",
                initiator=self.rank,
            )

        fut = self._launch(issue, "get")
        self.gets_issued += 1
        self._count_message("get", dst.nbytes)
        event = GasnetEvent(fut)
        self._pending.append(event)
        return event

    def put_batch_nb(
        self, dst_rank: int, ops: Sequence[Tuple[int, MemRef]]
    ) -> GasnetEvent:
        """Aggregated one-sided puts (GASNet-EX access-region batching).

        ``ops`` is a sequence of ``(dst_address, src_memref)`` pairs
        coalesced into **one** conduit message: one initiator software
        overhead, one NIC message overhead, summed payload.  All pairs
        must share the same (source, destination) endpoints — the RMA
        aggregation layer keys its queues to guarantee this.  Under a
        fault plan a transient failure retries the whole batch (the
        member puts are idempotent).
        """
        return self._batch_nb("put", dst_rank, ops)

    def get_batch_nb(
        self, src_rank: int, ops: Sequence[Tuple[int, MemRef]]
    ) -> GasnetEvent:
        """Aggregated one-sided gets: ``(src_address, dst_memref)``
        pairs as one conduit message (see :meth:`put_batch_nb`)."""
        return self._batch_nb("get", src_rank, ops)

    def _batch_nb(
        self, op: str, peer_rank: int, ops: Sequence[Tuple[int, MemRef]]
    ) -> GasnetEvent:
        if not ops:
            raise CommunicationError(f"empty {op} batch for rank {peer_rank}")
        resolved = [
            (self._resolve_remote(peer_rank, address, local.nbytes), local)
            for address, local in ops
        ]
        remote0, local0 = resolved[0]
        for remote, local in resolved[1:]:
            if (
                remote.endpoint != remote0.endpoint
                or local.endpoint != local0.endpoint
            ):
                raise CommunicationError(
                    f"{op} batch mixes endpoints: "
                    f"{local.endpoint}->{remote.endpoint} vs "
                    f"{local0.endpoint}->{remote0.endpoint}"
                )
        total = sum(local.nbytes for _remote, local in resolved)
        params = self.conduit.params
        world = self.conduit.world
        nic_overhead = world.platform.node.nic.message_overhead
        if op == "put":
            src_ep, dst_ep = local0.endpoint, remote0.endpoint
            overhead = params.put_overhead
        else:
            src_ep, dst_ep = remote0.endpoint, local0.endpoint
            overhead = params.get_overhead

        def apply_batch() -> None:
            for remote, local in resolved:
                if op == "put":
                    remote.copy_from(local)
                else:
                    local.copy_from(remote)

        complete = self._trace_delivery("conduit.deliver", peer_rank, apply_batch)

        def issue() -> Future:
            return world.fabric.transfer(
                src_ep,
                dst_ep,
                total,
                operation=op,
                gpu_memory=any(
                    rem.is_device or loc.is_device for rem, loc in resolved
                ),
                on_complete=complete,
                extra_latency=overhead,
                occupancy_overhead=nic_overhead,
                bandwidth_factor=params.bw_efficiency(total),
                rails=params.rails_for(total, world.platform.node.nics_per_node),
                force_network=src_ep != dst_ep and src_ep.node == dst_ep.node,
                fault_site=f"conduit.{op}",
                initiator=self.rank,
            )

        fut = self._launch(issue, op)
        if op == "put":
            self.puts_issued += 1
        else:
            self.gets_issued += 1
        self._count_message(op, total)
        event = GasnetEvent(fut)
        self._pending.append(event)
        return event

    def sync_all(self) -> None:
        """Wait for every operation this client has issued (``gex_NBI``-
        style flush; the building block of the DiOMP fence)."""
        pending, self._pending = self._pending, []
        for event in pending:
            if not event.test():
                event.wait()

    @property
    def pending_count(self) -> int:
        self._pending = [e for e in self._pending if not e.test()]
        return len(self._pending)

    def poll(self) -> None:
        """Advance the simulated cost of one explicit poll call."""
        self.conduit.world.sim.sleep(self.conduit.params.poll_cost)

    # -- active messages -----------------------------------------------------

    def register_handler(self, name: str, fn: Callable[[int, Any], Any]) -> None:
        """Install an AM handler ``fn(src_rank, payload) -> reply``."""
        if name in self._am_handlers:
            raise CommunicationError(f"AM handler {name!r} already registered")
        self._am_handlers[name] = fn

    def am_request(self, dst_rank: int, handler: str, payload: Any, payload_bytes: int = 64) -> Future:
        """Send an active message; returns a future for the reply.

        The handler runs on the target at delivery time (target CPU
        involvement is the defining difference from put/get).  The
        reply travels back with the same wire cost.
        """
        world = self.conduit.world
        params = self.conduit.params
        target = self.conduit.client(dst_rank)
        src_host = world.topology.host(world.ranks[self.rank].node)
        dst_host = world.topology.host(world.ranks[dst_rank].node)
        self.ams_sent += 1
        self._count_message("am", payload_bytes)
        obs = self._obs
        send_ctx = obs.capture(track=f"rank{self.rank}") if obs is not None else None

        def issue() -> Future:
            # One attempt = request leg + handler + reply leg.  A
            # failure on either leg fails the attempt; a retried
            # attempt re-runs the handler (at-least-once semantics,
            # like real AM-based control protocols).
            attempt = Future(world.sim, description=f"am:{handler}->r{dst_rank}")

            def propagate(fut: Future) -> None:
                if fut.error is not None and not attempt.fired:
                    attempt.fail(fut.error)

            def deliver() -> None:
                try:
                    handler_fn = target._am_handlers[handler]
                except KeyError:
                    raise CommunicationError(
                        f"rank {dst_rank} has no AM handler {handler!r}"
                    ) from None
                reply = handler_fn(self.rank, payload)
                handler_ctx = (
                    obs.deliver(
                        "conduit.am.deliver", send_ctx, world.sim.now, rank=dst_rank
                    )
                    if obs is not None
                    else None
                )

                def reply_done() -> None:
                    attempt.fire(reply)
                    if obs is not None:
                        obs.deliver(
                            "conduit.am.reply",
                            handler_ctx,
                            world.sim.now,
                            rank=self.rank,
                        )

                rep = world.fabric.transfer(
                    dst_host,
                    src_host,
                    payload_bytes,
                    operation="put",
                    gpu_memory=False,
                    on_complete=reply_done,
                    extra_latency=params.am_overhead,
                    fault_site="conduit.am",
                    initiator=dst_rank,
                )
                attempt.eta = getattr(rep, "eta", None)  # type: ignore[attr-defined]
                rep.add_done_callback(propagate)

            req = world.fabric.transfer(
                src_host,
                dst_host,
                payload_bytes,
                operation="put",
                gpu_memory=False,
                on_complete=deliver,
                extra_latency=params.am_overhead,
                fault_site="conduit.am",
                initiator=self.rank,
            )
            attempt.eta = getattr(req, "eta", None)  # type: ignore[attr-defined]
            req.add_done_callback(propagate)
            return attempt

        return self._launch(issue, "am")
