"""GASNet-EX-like communication conduit.

This is the paper's primary communication substrate: segments
registered into a global address space, non-blocking one-sided ``put``
/ ``get`` returning events, explicit polling, and active messages for
control-plane bootstrap.  Per-operation software overheads and
protocol bandwidth efficiency are calibration parameters
(:class:`~repro.gasnet.conduit.GasnetParams`), which is how the
GASNet-vs-GPI-2 comparison of Fig. 5 is modelled.
"""

from repro.gasnet.conduit import (
    GasnetConduit,
    GasnetClient,
    GasnetEvent,
    GasnetParams,
    Segment,
)

__all__ = [
    "GasnetConduit",
    "GasnetClient",
    "GasnetEvent",
    "GasnetParams",
    "Segment",
]
