"""Per-tenant chargeback: usage rows, cost rates, report totals."""

import pytest

from repro.obs.accounting import (
    GiB,
    ChargebackReport,
    CostRates,
    TenantUsage,
    chargeback_report,
    report_from_dict,
    usage_from_dict,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ConfigurationError


def usage(tenant="acme", **kw):
    defaults = dict(
        jobs_completed=3,
        jobs_failed=1,
        jobs_rejected=2,
        gpu_seconds=10.0,
        network_bytes=2.0 * GiB,
        queue_wait_seconds=5.0,
        leaked_bytes=0.5 * GiB,
    )
    defaults.update(kw)
    return TenantUsage(tenant=tenant, **defaults)


class TestCostRates:
    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            CostRates(gpu_second=-1.0)
        with pytest.raises(ConfigurationError):
            CostRates(leaked_gib=-0.1)

    def test_cost_math(self):
        rates = CostRates(
            gpu_second=2.0, network_gib=0.1, queue_second=0.5, leaked_gib=4.0
        )
        # 10 gpu-s * 2 + 2 GiB * 0.1 + 5 s * 0.5 + 0.5 GiB * 4
        assert usage().cost(rates) == pytest.approx(20.0 + 0.2 + 2.5 + 2.0)

    def test_free_tier(self):
        assert usage().cost(CostRates(0.0, 0.0, 0.0, 0.0)) == 0.0


class TestReport:
    def test_rows_sorted_and_totals(self):
        report = ChargebackReport(
            rows=(usage("zeta"), usage("acme", jobs_completed=5)), rates=CostRates()
        )
        assert [r.tenant for r in report.rows] == ["acme", "zeta"]
        total = report.total
        assert total.tenant == "TOTAL"
        assert total.jobs_completed == 8
        assert total.gpu_seconds == pytest.approx(20.0)
        assert total.cost(report.rates) == pytest.approx(
            sum(r.cost(report.rates) for r in report.rows)
        )

    def test_row_lookup_and_render(self):
        report = ChargebackReport(rows=(usage(),), rates=CostRates())
        assert report.row_for("acme").jobs_rejected == 2
        assert report.row_for("ghost") is None
        text = report.render()
        assert "acme" in text and "TOTAL" in text

    def test_roundtrip_through_dict(self):
        report = ChargebackReport(
            rows=(usage(), usage("globex", leaked_bytes=0.0)),
            rates=CostRates(gpu_second=3.0),
        )
        rebuilt = report_from_dict(report.to_dict())
        assert rebuilt.rows == report.rows
        assert rebuilt.rates == report.rates
        assert usage_from_dict(usage().to_dict()) == usage()


class TestFromRegistry:
    def make_registry(self):
        reg = MetricsRegistry()
        jobs = reg.counter("service.jobs")
        gpu = reg.counter("service.gpu_seconds")
        net = reg.counter("service.net_bytes")
        waits = reg.histogram("service.queue_wait_seconds")
        leaked = reg.counter("service.leaked_bytes")
        jobs.inc(2, tenant="acme", outcome="completed")
        jobs.inc(1, tenant="acme", outcome="rejected")
        jobs.inc(1, tenant="globex", outcome="failed")
        gpu.inc(4.0, tenant="acme", kind="cannon")
        gpu.inc(1.5, tenant="globex", kind="minimod")
        net.inc(1024.0, tenant="acme")
        waits.observe(2e-3, tenant="acme")
        waits.observe(3e-3, tenant="acme")
        leaked.inc(512.0, tenant="globex")
        return reg

    def test_reads_live_counters(self):
        report = chargeback_report(self.make_registry())
        acme = report.row_for("acme")
        assert acme.jobs_completed == 2
        assert acme.jobs_rejected == 1
        assert acme.gpu_seconds == pytest.approx(4.0)
        assert acme.network_bytes == pytest.approx(1024.0)
        assert acme.queue_wait_seconds == pytest.approx(5e-3)
        assert acme.leaked_bytes == 0.0
        globex = report.row_for("globex")
        assert globex.jobs_failed == 1
        assert globex.leaked_bytes == pytest.approx(512.0)
        assert globex.queue_wait_seconds == 0.0

    def test_custom_rates_flow_through(self):
        rates = CostRates(gpu_second=10.0, network_gib=0.0, queue_second=0.0, leaked_gib=0.0)
        report = chargeback_report(self.make_registry(), rates)
        assert report.row_for("acme").cost(rates) == pytest.approx(40.0)

    def test_empty_registry_is_empty_report(self):
        report = chargeback_report(MetricsRegistry())
        assert len(report.rows) == 0
        assert report.total.jobs_completed == 0
