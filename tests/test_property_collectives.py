"""Property-based tests: collective results must match numpy oracles
for arbitrary payloads, dtypes, roots and reduction operators."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a
from repro.mpi import MpiWorld
from repro.mpi import collectives as coll
from repro.xccl import NCCL_PARAMS, UniqueId, XcclComm, XcclContext

_DTYPES = [np.float64, np.float32, np.int64, np.int32]
_OPS = [np.add, np.maximum, np.minimum]


def _payloads(nranks, count, dtype, seed):
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return [rng.integers(-50, 50, size=count).astype(dtype) for _ in range(nranks)]
    return [rng.uniform(-1, 1, size=count).astype(dtype) for _ in range(nranks)]


def _reduce_oracle(payloads, op):
    acc = payloads[0].copy()
    for p in payloads[1:]:
        acc = op(acc, p)
    return acc


class TestMpiCollectiveProperties:
    @given(
        count=st.integers(1, 300),
        dtype=st.sampled_from(_DTYPES),
        op=st.sampled_from(_OPS),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_allreduce_matches_oracle(self, count, dtype, op, seed):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        mpi = MpiWorld(w)
        payloads = _payloads(w.nranks, count, dtype, seed)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = payloads[ctx.rank].copy()
            recv = np.zeros(count, dtype=dtype)
            coll.allreduce(
                comm, MemRef.host(ctx.node, send), MemRef.host(ctx.node, recv), dtype, op
            )
            out[ctx.rank] = recv

        run_spmd(w, prog)
        oracle = _reduce_oracle(payloads, op)
        # Reduction trees associate differently than the sequential
        # oracle; float32 sums may differ in the last bits.
        rtol = 1e-4 if np.dtype(dtype) == np.float32 else 1e-9
        for r in range(w.nranks):
            np.testing.assert_allclose(out[r], oracle, rtol=rtol, atol=1e-6)

    @given(
        count=st.integers(1, 500),
        dtype=st.sampled_from(_DTYPES),
        root=st.integers(0, 7),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_bcast_matches_root(self, count, dtype, root, seed):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        mpi = MpiWorld(w)
        payload = _payloads(1, count, dtype, seed)[0]
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            data = payload.copy() if ctx.rank == root else np.zeros(count, dtype=dtype)
            coll.bcast(comm, MemRef.host(ctx.node, data), root=root)
            out[ctx.rank] = data

        run_spmd(w, prog)
        for r in range(w.nranks):
            np.testing.assert_array_equal(out[r], payload)

    @given(
        count=st.integers(1, 200),
        root=st.integers(0, 7),
        op=st.sampled_from(_OPS),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=15, deadline=None)
    def test_reduce_matches_oracle(self, count, root, op, seed):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        mpi = MpiWorld(w)
        payloads = _payloads(w.nranks, count, np.float64, seed)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            send = payloads[ctx.rank].copy()
            recv = np.zeros(count) if ctx.rank == root else None
            coll.reduce(
                comm,
                MemRef.host(ctx.node, send),
                None if recv is None else MemRef.host(ctx.node, recv),
                np.float64,
                op=op,
                root=root,
            )
            if ctx.rank == root:
                out["v"] = recv

        run_spmd(w, prog)
        np.testing.assert_allclose(out["v"], _reduce_oracle(payloads, op), rtol=1e-9)

    @given(count=st.integers(1, 128), seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_allgather_matches_concatenation(self, count, seed):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        mpi = MpiWorld(w)
        payloads = _payloads(w.nranks, count, np.float64, seed)
        out = {}

        def prog(ctx):
            comm = mpi.comm_world(ctx.rank)
            recv = np.zeros(count * comm.size)
            coll.allgather(
                comm,
                MemRef.host(ctx.node, payloads[ctx.rank].copy()),
                MemRef.host(ctx.node, recv),
            )
            out[ctx.rank] = recv

        run_spmd(w, prog)
        oracle = np.concatenate(payloads)
        for r in range(w.nranks):
            np.testing.assert_array_equal(out[r], oracle)


class TestXcclCollectiveProperties:
    @given(
        count=st.integers(1, 200),
        dtype=st.sampled_from([np.float64, np.float32]),
        op=st.sampled_from(_OPS),
        seed=st.integers(0, 10**6),
    )
    @settings(max_examples=10, deadline=None)
    def test_xccl_allreduce_matches_oracle(self, count, dtype, op, seed):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        ctx_x = XcclContext(w, NCCL_PARAMS)
        uid = UniqueId.create()
        itemsize = np.dtype(dtype).itemsize
        payloads = _payloads(w.nranks, count, dtype, seed)
        out = {}

        def prog(rc):
            comm = XcclComm.init_rank(ctx_x, uid, rc.rank, w.nranks, rc.device)
            send = rc.device.malloc(count * itemsize)
            recv = rc.device.malloc(count * itemsize)
            send.as_array(dtype)[:] = payloads[rc.rank]
            comm.all_reduce(MemRef.device(send), MemRef.device(recv), dtype=dtype, op=op)
            out[rc.rank] = recv.as_array(dtype).copy()

        run_spmd(w, prog)
        oracle = _reduce_oracle(payloads, op)
        for r in range(w.nranks):
            np.testing.assert_allclose(out[r], oracle, rtol=1e-6)


class TestGroupCollectiveProperties:
    @given(split_at=st.integers(1, 7), seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_group_allreduce_partitions_correctly(self, split_at, seed):
        """Splitting the world at an arbitrary boundary: each group's
        allreduce sums exactly its members' contributions."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        rng = np.random.default_rng(seed)
        values = rng.integers(1, 100, size=w.nranks).astype(np.float64)
        out = {}

        def prog(ctx):
            color = 0 if ctx.rank < split_at else 1
            sub = ctx.diomp.group_split(ctx.diomp.world_group, color)
            send = ctx.diomp.alloc(8)
            recv = ctx.diomp.alloc(8)
            send.typed(np.float64)[:] = values[ctx.rank]
            ctx.diomp.barrier()
            ctx.diomp.allreduce(send, recv, group=sub)
            out[ctx.rank] = recv.typed(np.float64)[0]

        run_spmd(w, prog)
        low = values[:split_at].sum()
        high = values[split_at:].sum()
        for r in range(w.nranks):
            assert out[r] == (low if r < split_at else high)
