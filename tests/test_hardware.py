"""Tests for hardware specs, nodes, topology and platform factories."""

import dataclasses

import pytest

from repro.hardware import (
    A100,
    MI250X_GCD,
    GH200,
    NVLINK3,
    PCIE4_X16,
    SLINGSHOT_11,
    DeviceId,
    GPUSpec,
    NICQuirk,
    NodeSpec,
    PathKind,
    get_platform,
    platform_a,
    platform_b,
    platform_c,
)
from repro.hardware.node import all_to_all, mi250x_wiring, no_direct_link
from repro.hardware.catalog import EPYC_7763
from repro.util.errors import ConfigurationError
from repro.util.units import MiB


class TestSpecs:
    def test_gpu_flops_properties(self):
        assert A100.fp64_flops == pytest.approx(9.7e12)
        assert A100.gemm_flops == pytest.approx(19.5e12)

    def test_invalid_gpu_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUSpec(
                name="bad",
                vendor="nvidia",
                memory_bytes=0,
                mem_bandwidth=1.0,
                fp64_tflops=1.0,
                gemm_tflops=1.0,
                kernel_launch_overhead=0.0,
                ipc_open_overhead=0.0,
            )

    def test_quirk_validation(self):
        with pytest.raises(ConfigurationError):
            NICQuirk(name="q", operation="put", bandwidth_factor=0.0)
        with pytest.raises(ConfigurationError):
            NICQuirk(name="q", operation="frobnicate", bandwidth_factor=0.5)

    def test_quirk_applies(self):
        q = NICQuirk(name="q", operation="put", bandwidth_factor=0.3)
        assert q.applies("put", gpu_memory=True)
        assert not q.applies("get", gpu_memory=True)
        assert not q.applies("put", gpu_memory=False)

    def test_nic_effective_bandwidth_with_quirk(self):
        q = NICQuirk(name="q", operation="put", bandwidth_factor=0.5)
        nic = dataclasses.replace(SLINGSHOT_11, quirk=q)
        assert nic.effective_bandwidth("put", True) == pytest.approx(
            nic.bandwidth * 0.5
        )
        assert nic.effective_bandwidth("get", True) == nic.bandwidth
        assert nic.effective_bandwidth("put", False) == nic.bandwidth


class TestNodeWiring:
    def _node(self, wiring, gpus=4):
        return NodeSpec(
            name="n",
            cpu=EPYC_7763,
            gpu=A100,
            gpus_per_node=gpus,
            nic=SLINGSHOT_11,
            nics_per_node=4,
            gpu_link=wiring,
            host_link=PCIE4_X16,
        )

    def test_all_to_all(self):
        node = self._node(all_to_all(NVLINK3))
        assert node.link_between(0, 3) is NVLINK3
        assert node.link_between(1, 2) is NVLINK3

    def test_mi250x_two_tier(self):
        from repro.hardware.catalog import XGMI_INTER_MODULE, XGMI_INTRA_MODULE

        node = self._node(mi250x_wiring(XGMI_INTRA_MODULE, XGMI_INTER_MODULE), gpus=8)
        assert node.link_between(0, 1) is XGMI_INTRA_MODULE  # same module
        assert node.link_between(6, 7) is XGMI_INTRA_MODULE
        assert node.link_between(0, 2) is XGMI_INTER_MODULE  # across modules
        assert node.link_between(1, 7) is XGMI_INTER_MODULE

    def test_no_direct_link(self):
        node = self._node(no_direct_link())
        assert node.link_between(0, 1) is None

    def test_bad_indices_rejected(self):
        node = self._node(all_to_all(NVLINK3))
        with pytest.raises(ConfigurationError):
            node.link_between(0, 0)
        with pytest.raises(ConfigurationError):
            node.link_between(0, 9)


class TestTopologyPaths:
    @pytest.fixture
    def topo(self):
        return platform_a(with_quirk=False).cluster(2)

    def test_total_gpus(self, topo):
        assert topo.total_gpus == 8
        assert len(topo.all_gpus()) == 8

    def test_same_device_path(self, topo):
        g = topo.gpu(0, 0)
        p = topo.path(g, g)
        assert p.kind is PathKind.SAME_DEVICE
        assert p.bandwidth == A100.mem_bandwidth

    def test_peer_direct_path(self, topo):
        p = topo.path(topo.gpu(0, 0), topo.gpu(0, 1))
        assert p.kind is PathKind.PEER_DIRECT
        assert p.bandwidth == NVLINK3.bandwidth
        assert p.peer_capable

    def test_inter_node_path(self, topo):
        p = topo.path(topo.gpu(0, 0), topo.gpu(1, 2))
        assert p.kind is PathKind.INTER_NODE
        assert p.bandwidth == SLINGSHOT_11.bandwidth
        assert len(p.resources) == 2  # src NIC + dst NIC

    def test_host_gpu_path(self, topo):
        p = topo.path(topo.host(0), topo.gpu(0, 1))
        assert p.kind is PathKind.HOST_STAGED
        assert p.bandwidth == PCIE4_X16.bandwidth

    def test_nic_striping(self, topo):
        assert topo.nic_for(topo.gpu(0, 0)) == 0
        assert topo.nic_for(topo.gpu(0, 3)) == 3

    def test_quirk_degrades_put_only(self):
        topo = platform_a(with_quirk=True).cluster(2)
        put = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), operation="put")
        get = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), operation="get")
        assert put.bandwidth < get.bandwidth
        assert put.bandwidth == pytest.approx(SLINGSHOT_11.bandwidth * 0.30)

    def test_transfer_time_alpha_beta(self, topo):
        p = topo.path(topo.gpu(0, 0), topo.gpu(1, 0), operation="get")
        t_small = p.transfer_time(8)
        t_large = p.transfer_time(8 * MiB)
        assert t_small == pytest.approx(p.latency + 8 / p.bandwidth)
        assert t_large > 100 * t_small

    def test_bad_lookups_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.gpu(5, 0)
        with pytest.raises(ConfigurationError):
            topo.gpu(0, 99)
        with pytest.raises(ConfigurationError):
            topo.path(topo.gpu(0, 0), DeviceId("gpu", 7, 0))

    def test_invalid_cluster_size(self):
        with pytest.raises(ConfigurationError):
            platform_a().cluster(0)


class TestPlatforms:
    def test_platform_a_shape(self):
        spec = platform_a()
        assert spec.gpus_per_node == 4
        assert spec.ccl == "nccl"
        assert spec.interconnect == "slingshot"
        assert spec.node.nic.quirk is not None

    def test_platform_a_quirk_optional(self):
        assert platform_a(with_quirk=False).node.nic.quirk is None

    def test_platform_b_shape(self):
        spec = platform_b()
        assert spec.gpus_per_node == 8  # 4 MI250X = 8 GCDs
        assert spec.ccl == "rccl"
        assert spec.node.gpu is MI250X_GCD

    def test_platform_c_shape(self):
        spec = platform_c()
        assert spec.gpus_per_node == 1
        assert spec.node.gpu is GH200
        assert spec.interconnect == "infiniband"
        assert spec.mpi_name == "openmpi"

    def test_get_platform(self):
        assert get_platform("a").name == "A"
        assert get_platform("B").name == "B"
        with pytest.raises(ConfigurationError):
            get_platform("Z")

    def test_paper_scale_clusters(self):
        # Fig. 6 configurations: A 16 nodes x 4, B 8 x 8 GCD, C 16 x 1.
        assert platform_a().cluster(16).total_gpus == 64
        assert platform_b().cluster(8).total_gpus == 64
        assert platform_c().cluster(16).total_gpus == 16
