"""Stress and property tests for the simulation kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Barrier, Channel, Future, Lock, Semaphore, Simulator
from repro.util.errors import DeadlockError


class TestSchedulerStress:
    def test_hundred_tasks_with_random_sleeps_deterministic(self):
        def run(seed):
            sim = Simulator()
            rng = np.random.default_rng(seed)
            order = []

            def worker(i, delays):
                for d in delays:
                    sim.sleep(float(d))
                order.append(i)

            for i in range(100):
                sim.spawn(worker, i, rng.uniform(0, 1e-3, size=3), name=f"w{i}")
            sim.run()
            return order

        assert run(7) == run(7)

    def test_deep_spawn_chain(self):
        sim = Simulator()
        hits = []

        def chain(depth):
            hits.append(depth)
            if depth < 50:
                sim.spawn(chain, depth + 1, name=f"c{depth+1}").join()

        sim.spawn(chain, 0, name="c0")
        sim.run()
        assert hits == list(range(51))

    def test_producer_consumer_pipeline(self):
        """Three-stage pipeline over channels carries every item in
        order and terminates cleanly."""
        sim = Simulator()
        a, b = Channel(sim, capacity=4), Channel(sim, capacity=4)
        sink = []

        def producer():
            for i in range(50):
                sim.sleep(1e-5)
                a.put(i)
            a.put(None)

        def transform():
            while True:
                item = a.get()
                if item is None:
                    b.put(None)
                    return
                sim.sleep(2e-5)  # slower stage: back-pressure builds
                b.put(item * 2)

        def consumer():
            while True:
                item = b.get()
                if item is None:
                    return
                sink.append(item)

        sim.spawn(producer)
        sim.spawn(transform)
        sim.spawn(consumer)
        sim.run()
        assert sink == [2 * i for i in range(50)]

    def test_mixed_primitive_storm_no_deadlock(self):
        """Locks, semaphores and barriers interleaved across 16 tasks
        complete without deadlock, and the critical sections exclude."""
        sim = Simulator()
        lock = Lock(sim)
        sem = Semaphore(sim, 3)
        bar = Barrier(sim, 16)
        in_crit = []
        max_crit = []

        def worker(i):
            sim.sleep(1e-6 * (i % 5))
            sem.acquire()
            with lock:
                in_crit.append(i)
                max_crit.append(len(in_crit))
                sim.sleep(1e-6)
                in_crit.remove(i)
            sem.release()
            bar.wait()

        for i in range(16):
            sim.spawn(worker, i)
        sim.run()
        assert max(max_crit) == 1

    @given(
        n_tasks=st.integers(2, 12),
        n_rounds=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_barrier_rounds_never_mix(self, n_tasks, n_rounds):
        sim = Simulator()
        bar = Barrier(sim, n_tasks)
        log = []

        def worker(i):
            for phase in range(n_rounds):
                sim.sleep(1e-6 * ((i * 7 + phase * 3) % 5))
                bar.wait()
                log.append(phase)

        for i in range(n_tasks):
            sim.spawn(worker, i)
        sim.run()
        assert log == sorted(log)

    def test_deadlock_message_names_all_blocked_tasks(self):
        sim = Simulator()
        ch = Channel(sim, name="stuckchan")

        def waiter(i):
            ch.get()

        sim.spawn(waiter, 0, name="alpha")
        sim.spawn(waiter, 1, name="beta")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        assert "alpha" in str(err.value) and "beta" in str(err.value)

    def test_futures_fired_from_nested_callbacks(self):
        """call_later callbacks may fire futures that wake tasks that
        schedule more callbacks — the event loop must stay consistent."""
        sim = Simulator()
        hops = []

        def relay(depth):
            if depth >= 10:
                return
            fut = Future(sim, description=f"hop{depth}")
            sim.call_later(1e-6, lambda: fut.fire(depth))
            hops.append(fut.wait())
            relay(depth + 1)

        sim.spawn(relay, 0)
        sim.run()
        assert hops == list(range(10))
        assert sim.now == pytest.approx(10e-6)

    def test_many_simulators_sequentially_no_thread_leak(self):
        import threading

        baseline = threading.active_count()
        for _ in range(30):
            sim = Simulator()
            sim.spawn(lambda: sim.sleep(1e-6))
            sim.run()
        # All task threads joined at close().
        assert threading.active_count() <= baseline + 2
