"""Engine self-profiling: wall-clock accounting of the event loop."""

import pytest

from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.selfprof import EngineProfiler
from repro.sim.core import Simulator


def drive(sim):
    """A tiny workload: two tasks sleeping, plus one callback."""

    def worker(n):
        for _ in range(n):
            sim.sleep(1e-6)
        return n

    fired = []
    sim.call_later(2e-6, lambda: fired.append(1))
    tasks = [sim.spawn(worker, 3, name="a"), sim.spawn(worker, 2, name="b")]
    sim.run()
    assert [t.result for t in tasks] == [3, 2]
    assert fired == [1]


class TestEngineProfiler:
    def test_counts_and_phases(self):
        prof = EngineProfiler()
        sim = Simulator(profiler=prof)
        drive(sim)
        # Every resume and callback dispatched is one retired event.
        assert prof.events == prof.task_events + prof.callback_events
        assert prof.task_events > 0
        assert prof.callback_events == 1
        assert prof.runs == 1
        # Wall-clock accounting: phases sum to the run wall exactly.
        assert prof.run_wall > 0
        assert prof.task_wall >= 0 and prof.callback_wall >= 0
        assert prof.scheduler_wall == pytest.approx(
            prof.run_wall - prof.task_wall - prof.callback_wall
        )
        assert prof.events_per_sec == pytest.approx(prof.events / prof.run_wall)
        assert prof.sim_elapsed == pytest.approx(sim.now)
        assert prof.wall_per_simsec == pytest.approx(prof.run_wall / sim.now)

    def test_accumulates_across_run_slices(self):
        prof = EngineProfiler()
        sim = Simulator(profiler=prof)

        def worker():
            sim.sleep(5e-6)

        sim.spawn(worker)
        sim.run(until=2e-6)
        first = prof.events
        assert prof.runs == 1
        sim.run()
        assert prof.runs == 2
        assert prof.events > first

    def test_disabled_profiler_not_installed(self):
        sim = Simulator(profiler=EngineProfiler(enabled=False))
        assert sim.profiler is None
        drive(sim)

    def test_no_profiler_default(self):
        sim = Simulator()
        assert sim.profiler is None
        drive(sim)

    def test_to_dict_keys(self):
        prof = EngineProfiler()
        sim = Simulator(profiler=prof)
        drive(sim)
        doc = prof.to_dict()
        for key in (
            "events",
            "events_per_sec",
            "wall_per_simsec",
            "task_wall_seconds",
            "scheduler_wall_seconds",
        ):
            assert key in doc

    def test_zero_division_guards(self):
        prof = EngineProfiler()
        assert prof.events_per_sec == 0.0
        assert prof.wall_per_simsec == 0.0
        assert prof.scheduler_wall == 0.0


class TestPublish:
    def test_gauges_published(self):
        prof = EngineProfiler()
        sim = Simulator(profiler=prof)
        drive(sim)
        reg = MetricsRegistry()
        prof.publish(reg)
        assert reg.value("sim.events") == prof.events
        assert reg.value("sim.events_per_sec") == pytest.approx(prof.events_per_sec)
        assert reg.value("sim.wall_per_simsec") == pytest.approx(prof.wall_per_simsec)
        assert reg.value("sim.wall_seconds", phase="task") == pytest.approx(
            prof.task_wall
        )
        assert reg.value("sim.wall_seconds", phase="scheduler") == pytest.approx(
            prof.scheduler_wall
        )

    def test_publish_noop_when_disabled(self):
        prof = EngineProfiler(enabled=False)
        reg = MetricsRegistry()
        prof.publish(reg)
        assert "sim.events" not in reg
        enabled_prof = EngineProfiler()
        disabled_reg = MetricsRegistry(enabled=False)
        enabled_prof.publish(disabled_reg)
        assert "sim.events" not in disabled_reg


class TestWorldIntegration:
    def test_world_installs_engine_profiler(self):
        from repro.cluster import World, run_spmd
        from repro.hardware import platform_a

        w = World(platform_a(), num_nodes=1)
        assert w.sim.profiler is w.obs.engine

        def prog(ctx):
            ctx.sim.sleep(1e-6)
            return ctx.rank

        run_spmd(w, prog)
        # run_spmd publishes the engine numbers as sim.* gauges.
        assert w.obs.engine.events > 0
        assert w.obs.value("sim.events") == w.obs.engine.events
        assert w.obs.value("sim.events_per_sec") > 0

    def test_disabled_obs_skips_engine_profiling(self):
        from repro.cluster import World, run_spmd
        from repro.hardware import platform_a

        w = World(platform_a(), num_nodes=1, obs=Observability(enabled=False))
        assert w.sim.profiler is None

        def prog(ctx):
            return ctx.rank

        res = run_spmd(w, prog)
        assert res.metrics is None
        assert w.obs.engine.events == 0
