"""Integration tests for fault injection + recovery: seeded plans over
the DiOMP runtime, both conduits, Cannon, and an RMA shadow model."""

import numpy as np
import pytest

from repro.apps import CannonConfig, cannon_reference, run_cannon
from repro.cluster import MemRef, SpmdConfig, World, run_spmd
from repro.core import DiompRuntime
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.gasnet import GasnetConduit, GasnetParams
from repro.hardware import platform_a, platform_c
from repro.util.errors import FatalError
from repro.util.units import KiB


def two_rank_world(**kw):
    """Two ranks on two nodes: every put/get crosses the conduit."""
    return World(platform_a(with_quirk=False), num_nodes=2, ranks_per_node=1, **kw)


def four_rank_world(**kw):
    """Four ranks over two nodes: both conduit and intra-node paths."""
    return World(platform_a(with_quirk=False), num_nodes=2, ranks_per_node=2, **kw)


class TestRecoveryToSuccess:
    def test_transient_per_op_retried_to_success(self):
        """One injected transient per conduit op class (put/get/am);
        every operation recovers, data is exact, nothing gives up."""
        w = two_rank_world()
        DiompRuntime(w)
        plan = FaultPlan.transient_per_op(
            sites=("conduit.put", "conduit.get", "conduit.am"), seed=0
        )
        checks = {}

        def prog(ctx):
            ctx.diomp.client.register_handler(
                "echo", lambda src, payload: ("echo", src, payload)
            )
            g = ctx.diomp.alloc(64)
            view = g.typed(np.uint8)
            view[:] = np.full(64, ctx.rank + 1, dtype=np.uint8)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src = np.full(64, 9, dtype=np.uint8)
                ctx.diomp.put(1, g, MemRef.host(ctx.node, src))
                ctx.diomp.fence()
                dst = np.zeros(64, dtype=np.uint8)
                ctx.diomp.get(1, g, MemRef.host(ctx.node, dst))
                ctx.diomp.fence()
                checks["roundtrip"] = dst.copy()
                checks["reply"] = ctx.diomp.client.am_request(1, "echo", "ping").wait()
            ctx.diomp.barrier()

        run_spmd(w, prog, config=SpmdConfig(faults=plan))
        np.testing.assert_array_equal(checks["roundtrip"], np.full(64, 9, np.uint8))
        assert checks["reply"] == ("echo", 0, "ping")
        # Exactly one transient per op class was injected and retried.
        assert plan.injected == 3
        assert w.obs.value("faults.injected") == 3
        assert w.obs.value("conduit.retries") == 3
        assert w.obs.value("conduit.giveups") == 0

    def test_cannon_results_bit_identical_under_faults(self):
        """The acceptance experiment: Cannon on 4 ranks with one
        transient per data-moving site — results must be bit-identical
        to the fault-free run."""
        cfg = CannonConfig(n=32, execute=True)

        def assemble(world):
            res = run_cannon(world, cfg, impl="diomp")
            ordered = sorted(res.results, key=lambda r: r["rank"])
            return np.concatenate([r["C"] for r in ordered])

        clean = assemble(four_rank_world())
        plan = FaultPlan.transient_per_op(
            sites=("conduit.put", "rma.intra"), seed=42
        )
        faulted_world = four_rank_world(faults=plan)
        faulted = assemble(faulted_world)
        assert np.array_equal(clean, faulted)  # bit-identical
        np.testing.assert_allclose(faulted, cannon_reference(cfg, 4))
        assert faulted_world.obs.value("faults.injected") >= 2
        assert faulted_world.obs.value("conduit.retries") >= 2
        assert faulted_world.obs.value("conduit.giveups") == 0

    def test_drop_rescued_by_op_timeout(self):
        """A dropped completion event is recovered by the per-attempt
        timeout; puts are idempotent so the reissue is safe."""
        w = two_rank_world()
        plan = FaultPlan([FaultSpec(site="conduit.put", kind="drop", nth=1)])
        w.install_fault_plan(plan)
        conduit = GasnetConduit(
            w, GasnetParams(retry=RetryPolicy(op_timeout=1e-3))
        )
        bufs = []
        for ctx in w.ranks:
            buf = ctx.device.malloc(1 * KiB)
            conduit.client(ctx.rank).attach_segment(MemRef.device(buf))
            bufs.append(buf)
        data = np.arange(16, dtype=np.float64)

        def prog(ctx):
            if ctx.rank == 0:
                event = conduit.client(0).put_nb(
                    1, bufs[1].address, MemRef.host(ctx.node, data)
                )
                event.wait()

        run_spmd(w, prog)
        np.testing.assert_array_equal(
            bufs[1].as_array(np.float64, count=16), data
        )
        assert plan.injected == 1
        assert w.obs.value("conduit.timeouts") == 1

    def test_rank_stall_delays_initiator(self):
        """A rank.stall draw blocks the issuing rank in task context."""
        stall = 5e-3
        plan = FaultPlan(
            [FaultSpec(site="rank.stall", kind="stall", rank=0, latency=stall, nth=1)]
        )
        w = two_rank_world(faults=plan)
        DiompRuntime(w)

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()

        res = run_spmd(w, prog)
        assert plan.injected == 1
        assert res.elapsed >= stall

    def test_stream_sync_latency_injected(self):
        """stream.sync draws add latency to device synchronization."""
        lat = 2e-3
        plan = FaultPlan(
            [FaultSpec(site="stream.sync", kind="latency", latency=lat, nth=1)]
        )
        w = World(platform_a(with_quirk=False), num_nodes=1, faults=plan)

        def prog(ctx):
            if ctx.rank != 0:
                return
            stream = ctx.device.create_stream()
            stream.enqueue(1e-6)
            stream.synchronize()

        res = run_spmd(w, prog)
        assert plan.injected == 1
        assert res.elapsed >= lat


class TestUnrecoverable:
    def test_exhausted_retries_raise_fatal_at_fence(self):
        """A permanently failing link exhausts the retry budget; the
        fence surfaces FatalError (with the last transient as cause)."""
        w = two_rank_world()
        DiompRuntime(w)
        plan = FaultPlan([FaultSpec(site="conduit.put", kind="transient")])

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                src = np.ones(64, dtype=np.uint8)
                ctx.diomp.put(1, g, MemRef.host(ctx.node, src))
                ctx.diomp.fence()

        with pytest.raises(FatalError, match="giving up"):
            run_spmd(w, prog, config=SpmdConfig(faults=plan))
        assert w.obs.value("conduit.giveups") == 1
        assert w.obs.value("conduit.retries") > 0

    def test_fatal_fault_not_retried(self):
        """fatal=True injections skip the retry budget entirely."""
        w = two_rank_world()
        DiompRuntime(w)
        plan = FaultPlan(
            [FaultSpec(site="conduit.put", kind="transient", fatal=True, nth=1)]
        )

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()

        with pytest.raises(FatalError):
            run_spmd(w, prog, config=SpmdConfig(faults=plan))
        assert w.obs.value("conduit.retries") == 0

    def test_gpi2_notify_failure_surfaces_to_waiter(self):
        """Exhausted notify retries fail the target's notification slot
        instead of deadlocking its waiter."""
        from repro.gpi2 import Gpi2Conduit

        plan = FaultPlan([FaultSpec(site="conduit.notify", kind="transient")])
        w = World(platform_c(), num_nodes=2, ranks_per_node=1, faults=plan)
        conduit = Gpi2Conduit(w)

        def prog(ctx):
            if ctx.rank == 0:
                conduit.client(0).notify(1, notification_id=7)
            else:
                conduit.client(1).notification(7).wait()

        with pytest.raises(FatalError):
            run_spmd(w, prog)
        assert w.obs.value("conduit.giveups") == 1


class TestChaos:
    """Randomized-but-seeded mixed plans: correctness must survive."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cannon_correct_under_chaos(self, seed):
        plan = FaultPlan.chaos(seed=seed)
        w = four_rank_world(faults=plan)
        cfg = CannonConfig(n=32, execute=True)
        res = run_cannon(w, cfg, impl="diomp")
        ordered = sorted(res.results, key=lambda r: r["rank"])
        c = np.concatenate([r["C"] for r in ordered])
        np.testing.assert_allclose(c, cannon_reference(cfg, 4))
        assert w.obs.value("conduit.giveups") == 0

    @pytest.mark.parametrize("seed", [5, 11])
    def test_rma_schedule_matches_shadow_under_chaos(self, seed):
        """A deterministic put/get schedule across 8 ranks must land
        exactly as the numpy shadow model predicts, chaos or not."""
        import random

        BUF = 128
        rng = random.Random(seed)
        schedule = []
        for _ in range(6):
            initiator = rng.randrange(8)
            ops = []
            for _ in range(rng.randint(1, 3)):
                kind = rng.choice(["put", "get"])
                peer = rng.randrange(8)
                size = rng.randint(1, 32)
                ops.append(
                    (
                        kind,
                        peer,
                        size,
                        rng.randint(0, BUF - size),
                        rng.randint(0, BUF - size),
                    )
                )
            schedule.append((initiator, ops))

        shadow = [
            (np.arange(BUF, dtype=np.uint8) * (r + 1) % 251).copy() for r in range(8)
        ]
        for initiator, ops in schedule:
            for kind, peer, size, lo, ro in ops:
                if kind == "put":
                    shadow[peer][ro : ro + size] = shadow[initiator][lo : lo + size]
                else:
                    shadow[initiator][lo : lo + size] = shadow[peer][ro : ro + size]

        plan = FaultPlan.chaos(seed=seed, failure_probability=0.1)
        w = World(platform_a(with_quirk=False), num_nodes=2, faults=plan)
        DiompRuntime(w)
        final = {}

        def prog(ctx):
            g = ctx.diomp.alloc(BUF)
            view = g.typed(np.uint8)
            view[:] = np.arange(BUF, dtype=np.uint8) * (ctx.rank + 1) % 251
            ctx.diomp.barrier()
            for initiator, ops in schedule:
                if ctx.rank == initiator:
                    for kind, peer, size, lo, ro in ops:
                        if kind == "put":
                            ctx.diomp.put(
                                peer, g, g.memref(lo, size), target_offset=ro
                            )
                        else:
                            ctx.diomp.get(
                                peer, g, g.memref(lo, size), target_offset=ro
                            )
                        ctx.diomp.fence()
                ctx.diomp.barrier()
            final[ctx.rank] = view.copy()

        run_spmd(w, prog)
        for r in range(8):
            np.testing.assert_array_equal(final[r], shadow[r], err_msg=f"rank {r}")
        assert w.obs.value("conduit.giveups") == 0


class TestPlanWiring:
    def test_world_kwarg_arms_all_sites(self):
        plan = FaultPlan([FaultSpec(site="*", kind="latency", latency=1e-6)])
        w = World(platform_a(with_quirk=False), num_nodes=1, faults=plan)
        assert w.fault_plan is plan
        assert w.fabric.faults is plan
        assert all(d.faults is plan for d in w.devices.values())
        assert all(d.default_stream.faults is plan for d in w.devices.values())

    def test_no_plan_means_no_recovery_metrics(self):
        """Without a plan the retry layer must stay out of the path."""
        w = two_rank_world()
        DiompRuntime(w)

        def prog(ctx):
            g = ctx.diomp.alloc(64)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()

        run_spmd(w, prog)
        assert w.obs.value("faults.injected") == 0
        assert w.obs.value("conduit.retries") == 0
