"""Tests for the linear-heap and buddy allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocator import BuddyAllocator, LinearAllocator, make_allocator
from repro.util.errors import AllocationError
from repro.util.units import KiB, MiB


class TestLinearAllocator:
    def test_sequential_allocations_disjoint(self):
        a = LinearAllocator(1 * MiB)
        offs = [a.alloc(1000) for _ in range(10)]
        spans = sorted((o, o + 1000) for o in offs)
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_alignment(self):
        a = LinearAllocator(1 * MiB)
        a.alloc(3)  # misalign the cursor
        off = a.alloc(100, align=256)
        assert off % 256 == 0

    def test_free_and_reuse(self):
        a = LinearAllocator(1 * KiB)
        off = a.alloc(1024, align=16)
        a.free(off)
        assert a.alloc(1024) == off  # whole heap again

    def test_coalescing_both_neighbours(self):
        a = LinearAllocator(3 * KiB)
        x = a.alloc(1024)
        y = a.alloc(1024)
        z = a.alloc(1024)
        a.free(x)
        a.free(z)
        a.free(y)  # merges with both
        assert a.alloc(3 * KiB) == 0

    def test_exhaustion(self):
        a = LinearAllocator(1 * KiB)
        a.alloc(1024)
        with pytest.raises(AllocationError, match="exhausted"):
            a.alloc(1)

    def test_fragmentation_blocks_large_alloc(self):
        a = LinearAllocator(4 * KiB)
        offs = [a.alloc(1024) for _ in range(4)]
        a.free(offs[0])
        a.free(offs[2])
        # 2 KiB free but fragmented into two 1 KiB holes.
        assert a.free_bytes == 2 * KiB
        with pytest.raises(AllocationError):
            a.alloc(2 * KiB)
        assert a.fragmentation > 0

    def test_double_free_rejected(self):
        a = LinearAllocator(1 * KiB)
        off = a.alloc(100)
        a.free(off)
        with pytest.raises(AllocationError, match="unknown offset"):
            a.free(off)

    def test_invalid_inputs(self):
        a = LinearAllocator(1 * KiB)
        with pytest.raises(AllocationError):
            a.alloc(0)
        with pytest.raises(AllocationError):
            a.alloc(10, align=3)
        with pytest.raises(AllocationError):
            LinearAllocator(0)

    @given(
        st.lists(
            st.tuples(st.integers(1, 2048), st.sampled_from([16, 64, 256])),
            min_size=1,
            max_size=60,
        ),
        st.randoms(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_no_overlap_and_conservation(self, requests, rng):
        """Arbitrary alloc/free interleavings: live blocks never
        overlap, and freeing everything restores the full heap."""
        a = LinearAllocator(1 * MiB)
        live = {}
        for size, align in requests:
            off = a.alloc(size, align=align)
            assert off % align == 0
            for o, s in live.items():
                assert off + size <= o or o + s <= off
            live[off] = size
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                a.free(victim)
                del live[victim]
        for off in list(live):
            a.free(off)
        assert a.free_bytes == 1 * MiB
        assert a.alloc(1 * MiB, align=16) == 0


class TestBuddyAllocator:
    def test_rounds_to_power_of_two(self):
        b = BuddyAllocator(1 * MiB)
        off = b.alloc(300)
        assert b.block_size(off) == 512

    def test_min_block_floor(self):
        b = BuddyAllocator(1 * MiB, min_block=256)
        off = b.alloc(1)
        assert b.block_size(off) == 256

    def test_blocks_naturally_aligned(self):
        b = BuddyAllocator(1 * MiB)
        for size in (256, 1024, 4096):
            off = b.alloc(size)
            assert off % b.block_size(off) == 0

    def test_buddy_coalescing_restores_heap(self):
        b = BuddyAllocator(1 * KiB, min_block=256)
        offs = [b.alloc(256) for _ in range(4)]
        for off in offs:
            b.free(off)
        assert b.alloc(1 * KiB) == 0  # fully coalesced

    def test_no_coalesce_with_non_buddy(self):
        b = BuddyAllocator(1 * KiB, min_block=256)
        offs = [b.alloc(256) for _ in range(4)]
        b.free(offs[1])
        b.free(offs[2])  # adjacent but NOT buddies (1&2 differ in parent)
        with pytest.raises(AllocationError):
            b.alloc(512)  # two free 256s exist but no free 512 block

    def test_exhaustion(self):
        b = BuddyAllocator(1 * KiB)
        b.alloc(1024)
        with pytest.raises(AllocationError, match="exhausted"):
            b.alloc(1)

    def test_oversize_request(self):
        b = BuddyAllocator(1 * KiB)
        with pytest.raises(AllocationError, match="exceeds"):
            b.alloc(4 * KiB)

    def test_double_free_rejected(self):
        b = BuddyAllocator(1 * KiB)
        off = b.alloc(256)
        b.free(off)
        with pytest.raises(AllocationError):
            b.free(off)

    @given(
        st.lists(st.integers(1, 8 * KiB), min_size=1, max_size=50),
        st.randoms(),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_no_overlap_full_recovery(self, sizes, rng):
        b = BuddyAllocator(1 * MiB)
        live = {}
        for size in sizes:
            off = b.alloc(size)
            block = b.block_size(off)
            for o, s in live.items():
                assert off + block <= o or o + s <= off
            live[off] = block
            if live and rng.random() < 0.4:
                victim = rng.choice(sorted(live))
                b.free(victim)
                del live[victim]
        for off in list(live):
            b.free(off)
        assert b.free_bytes == b.capacity
        assert b.alloc(b.capacity) == 0

    def test_determinism_across_instances(self):
        """Identical call sequences yield identical offsets — the
        property symmetric allocation rests on."""
        seq = [(300, None), (1024, None), ("free", 0), (128, None), (4096, None)]

        def run():
            b = BuddyAllocator(1 * MiB)
            offs = []
            for item, _ in seq:
                if item == "free":
                    b.free(offs[0])
                else:
                    offs.append(b.alloc(item))
            return offs

        assert run() == run()


class TestFactory:
    def test_make_allocator(self):
        assert isinstance(make_allocator("linear", 1024), LinearAllocator)
        assert isinstance(make_allocator("buddy", 1024), BuddyAllocator)
        with pytest.raises(AllocationError):
            make_allocator("slab", 1024)
