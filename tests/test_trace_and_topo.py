"""Tests for the tracer and remaining topology/xccl helpers."""

import pytest

from repro.cluster import World, run_spmd
from repro.core import DiompRuntime
from repro.hardware import platform_a, platform_b
from repro.sim import Simulator, Tracer
from repro.util.units import MiB
from repro.xccl import build_ring, ring_hop_latency


class TestTracer:
    def test_records_carry_virtual_time(self):
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)

        def prog():
            tracer.emit("cat", "start")
            sim.sleep(1.5)
            tracer.emit("cat", "end", detail=7)

        sim.spawn(prog)
        sim.run()
        assert [r.time for r in tracer] == [0.0, 1.5]
        assert tracer.last("cat", "end").payload["detail"] == 7

    def test_category_filter(self):
        tracer = Tracer()
        tracer.enabled_categories = {"keep"}
        tracer.emit("keep", "a")
        tracer.emit("drop", "b")
        assert tracer.count() == 1
        assert tracer.count("keep") == 1

    def test_select_and_count(self):
        tracer = Tracer()
        for i in range(3):
            tracer.emit("x", "tick", i=i)
        tracer.emit("x", "tock")
        assert tracer.count("x", "tick") == 3
        assert len(tracer.select("x")) == 4
        with pytest.raises(LookupError):
            tracer.last("nope")

    def test_clear(self):
        tracer = Tracer()
        tracer.emit("a", "b")
        tracer.clear()
        assert len(tracer) == 0

    def test_world_tracer_sees_runtime_activity(self):
        w = World(platform_a(with_quirk=False), num_nodes=1)
        DiompRuntime(w)

        def prog(ctx):
            g = ctx.diomp.alloc(1 * MiB, virtual=True)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                ctx.diomp.put(1, g, g.memref())
                ctx.diomp.fence()
            ctx.diomp.barrier()

        run_spmd(w, prog)
        assert w.tracer.count("fabric", "transfer") >= 1
        assert w.tracer.count("streams", "create") >= 1
        assert w.tracer.count("streams", "hybrid_fence") >= 1
        rec = w.tracer.last("fabric", "transfer")
        assert rec.payload["kind"] == "peer-direct"  # IPC path taken

    def test_record_str_renders(self):
        tracer = Tracer()
        tracer.emit("cat", "evt", a=1)
        assert "cat.evt" in str(tracer.records[0])


class TestRingHopLatency:
    def test_single_member_zero(self):
        topo = platform_a(with_quirk=False).cluster(1)
        assert ring_hop_latency(topo, [topo.gpu(0, 0)]) == 0.0

    def test_multi_node_ring_dominated_by_nic(self):
        topo = platform_a(with_quirk=False).cluster(2)
        ring = build_ring(topo.all_gpus())
        lat = ring_hop_latency(topo, ring)
        assert lat == pytest.approx(topo.node_spec.nic.latency)

    def test_intra_node_ring_uses_link_latency(self):
        topo = platform_a(with_quirk=False).cluster(1)
        ring = build_ring(topo.all_gpus())
        lat = ring_hop_latency(topo, ring)
        assert lat < topo.node_spec.nic.latency

    def test_mi250x_ring_worst_hop_is_inter_module(self):
        topo = platform_b().cluster(1)
        ring = build_ring(topo.all_gpus())
        from repro.hardware.catalog import XGMI_INTER_MODULE

        assert ring_hop_latency(topo, ring) == pytest.approx(
            XGMI_INTER_MODULE.latency
        )
