"""Multi-tenant cluster service: placement, admission, isolation."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterService,
    JobRequest,
    ServiceConfig,
    TenantView,
    World,
    poisson_jobs,
)
from repro.cluster.jobs import build_job, default_size
from repro.faults import FaultPlan, FaultSpec
from repro.hardware import platform_a
from repro.util.errors import ConfigurationError


def make_world(nodes=2, rpn=2):
    return World(platform_a(), num_nodes=nodes, ranks_per_node=rpn)


def job(job_id, **kw):
    kw.setdefault("tenant", "t")
    kw.setdefault("kind", "allreduce")
    kw.setdefault("nodes", 1)
    return JobRequest(job_id=job_id, **kw)


def noisy_plan(seed=9):
    """Deterministic latency + transient injections on every site a
    gang exercises."""
    return FaultPlan(
        [
            FaultSpec(site="rma.intra", kind="latency", probability=1.0, latency=50e-6),
            FaultSpec(site="conduit.put", kind="transient", nth=1),
            FaultSpec(site="stream.sync", kind="latency", probability=1.0, latency=50e-6),
        ],
        seed=seed,
    )


class TestTenantView:
    def test_gang_shape_validation(self):
        w = make_world()
        with pytest.raises(ConfigurationError, match="exceed"):
            TenantView(w, (0,), ranks_per_node=3, devices_per_rank=2)
        with pytest.raises(ConfigurationError, match="at least one node"):
            TenantView(w, (), ranks_per_node=1)
        with pytest.raises(ConfigurationError, match="duplicate"):
            TenantView(w, (0, 0), ranks_per_node=1)

    def test_tenant_local_ranks_on_global_nodes(self):
        w = make_world(nodes=4)
        view = TenantView(w, (2, 3), ranks_per_node=2)
        assert [ctx.rank for ctx in view.ranks] == [0, 1, 2, 3]
        assert [ctx.node for ctx in view.ranks] == [2, 2, 3, 3]
        assert view.nranks == 4
        assert view.same_node(0, 1) and not view.same_node(1, 2)

    def test_shares_hardware_owns_isolation_state(self):
        w = make_world()
        view = TenantView(w, (1,), ranks_per_node=2)
        assert view.sim is w.sim and view.topology is w.topology
        gpu = w.topology.gpu(1, 0)
        assert view.devices[gpu] is w.devices[gpu]
        assert view.obs is not w.obs
        assert view.peer_access is not w.peer_access
        assert view.global_barrier is not w.global_barrier

    def test_device_owner_scoped_to_gang(self):
        w = make_world()
        view = TenantView(w, (1,), ranks_per_node=2)
        assert view.device_owner(w.topology.gpu(1, 0)) is view.ranks[0]
        with pytest.raises(ConfigurationError, match="not bound"):
            view.device_owner(w.topology.gpu(0, 0))

    def test_fault_plan_scoped_to_gang_devices(self):
        w = make_world()
        view = TenantView(w, (1,), ranks_per_node=2)
        plan = noisy_plan()
        view.install_fault_plan(plan)
        assert w.devices[w.topology.gpu(1, 0)].faults is plan
        assert w.devices[w.topology.gpu(0, 0)].faults is None
        view.restore()
        assert w.devices[w.topology.gpu(1, 0)].faults is None


class TestAdmission:
    def test_infeasible_gang_rejected(self):
        res = ClusterService(make_world()).run([job(0, nodes=5)])
        (rec,) = res.records
        assert rec.outcome == "rejected" and rec.reason == "infeasible"

    def test_infeasible_problem_size_rejected(self):
        # cannon N must divide by the gang size
        res = ClusterService(make_world()).run(
            [job(0, kind="cannon", size=7)]
        )
        assert res.records[0].reason == "infeasible"

    def test_oversubscribed_gang_shape_rejected(self):
        res = ClusterService(make_world()).run(
            [job(0, ranks_per_node=3, devices_per_rank=2)]
        )
        assert res.records[0].reason == "infeasible"

    def test_queue_full_sheds_load(self):
        # Simultaneous arrivals are all admitted before any dispatch
        # (same virtual instant), so exactly queue_limit jobs survive.
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        jobs = [job(i) for i in range(8)]
        res = ClusterService(w, ServiceConfig(queue_limit=2)).run(jobs)
        assert len(res.completed) == 2
        assert len(res.rejected) == 6
        assert all(r.reason == "queue_full" for r in res.rejected)

    def test_duplicate_job_id_rejected(self):
        res = ClusterService(make_world()).run([job(0), job(0)])
        outcomes = sorted(r.outcome for r in res.records)
        assert outcomes == ["completed", "rejected"]
        assert res.rejected[0].reason == "duplicate job_id"

    def test_service_is_single_use(self):
        w = make_world()
        svc = ClusterService(w)
        svc.run([job(0)])
        with pytest.raises(ConfigurationError, match="single-use"):
            svc.run([job(1)])
        with pytest.raises(ConfigurationError, match="single-use"):
            ClusterService(w).run([job(1)])

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="policy"):
            ClusterService(make_world(), ServiceConfig(policy="lifo"))


class TestPlacement:
    def test_lowest_free_nodes_first(self):
        w = make_world(nodes=4)
        res = ClusterService(w).run(
            [job(0, nodes=2), job(1), job(2)]
        )
        assert res.record_of(0).nodes == (0, 1)
        assert res.record_of(1).nodes == (2,)
        assert res.record_of(2).nodes == (3,)

    def test_concurrent_gangs_never_share_nodes(self):
        w = make_world(nodes=4)
        jobs = poisson_jobs(seed=1, count=16, rate=8000.0, execute=False)
        res = ClusterService(w, ServiceConfig(queue_limit=16)).run(jobs)
        # Reconstruct intervals: no two overlapping jobs share a node.
        runs = [r for r in res.records if r.outcome == "completed"]
        for a in runs:
            for b in runs:
                if a.job_id < b.job_id and set(a.nodes) & set(b.nodes):
                    assert a.finished <= b.started or b.finished <= a.started

    def test_wide_gang_blocks_head_of_line(self):
        # FIFO is strict: a 2-node job at the head waits for both nodes
        # even while a later 1-node job could have run.
        w = make_world(nodes=2)
        jobs = [
            job(0, nodes=2),
            job(1, nodes=2, arrival=1e-6),
            job(2, nodes=1, arrival=2e-6),
        ]
        res = ClusterService(w, ServiceConfig(queue_limit=4)).run(jobs)
        assert res.record_of(2).started >= res.record_of(1).finished

    def test_priority_policy_overtakes_fifo(self):
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        jobs = [
            job(0),  # occupies the node
            job(1, arrival=1e-6, priority=0),
            job(2, arrival=2e-6, priority=5),
        ]
        fifo = ClusterService(make_world(1), ServiceConfig(policy="fifo")).run(jobs)
        prio = ClusterService(w, ServiceConfig(policy="priority")).run(jobs)
        assert fifo.record_of(1).started < fifo.record_of(2).started
        assert prio.record_of(2).started < prio.record_of(1).started

    def test_nodes_recycled_after_completion(self):
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        jobs = [job(i, kind="cannon", size=8) for i in range(6)]
        res = ClusterService(w, ServiceConfig(queue_limit=8)).run(jobs)
        assert len(res.completed) == 6
        assert all(r.nodes == (0,) for r in res.completed)

    def test_device_memory_returned_between_jobs(self):
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        jobs = [job(i) for i in range(6)]
        res = ClusterService(w, ServiceConfig(queue_limit=8)).run(jobs)
        assert len(res.completed) == 6
        # Every completed job released its segments: nothing live.
        for dev in w.devices.values():
            assert dev.memory.live_bytes == 0


class TestDeterminism:
    def run_once(self):
        w = World(platform_a(), num_nodes=4, ranks_per_node=2)
        jobs = poisson_jobs(seed=11, count=12, rate=5000.0, execute=True)
        return ClusterService(w, ServiceConfig(queue_limit=8)).run(jobs)

    @staticmethod
    def fingerprint(res):
        return [
            (r.job_id, r.outcome, r.nodes, r.submitted, r.started, r.finished)
            for r in res.records
        ]

    def test_same_seed_replays_exactly(self):
        a, b = self.run_once(), self.run_once()
        assert self.fingerprint(a) == self.fingerprint(b)
        assert a.elapsed == b.elapsed

    def test_seed_changes_the_schedule(self):
        a = self.run_once()
        w = World(platform_a(), num_nodes=4, ranks_per_node=2)
        jobs = poisson_jobs(seed=12, count=12, rate=5000.0, execute=True)
        b = ClusterService(w, ServiceConfig(queue_limit=8)).run(jobs)
        assert self.fingerprint(a) != self.fingerprint(b)


class TestIsolation:
    def run_pair(self, co_tenant_faults):
        w = make_world()
        jobs = [
            JobRequest(job_id=0, tenant="victim", kind="cannon", nodes=1, size=8),
            JobRequest(
                job_id=1,
                tenant="chaotic",
                kind="cannon",
                nodes=1,
                size=8,
                faults=co_tenant_faults,
            ),
        ]
        return ClusterService(w).run(jobs)

    def test_co_tenant_faults_do_not_perturb_victim(self):
        clean = self.run_pair(None)
        noisy = self.run_pair(noisy_plan())
        v0, v1 = clean.record_of(0), noisy.record_of(0)
        # Bit-identical timing...
        assert (v0.started, v0.finished, v0.service_time, v0.queue_wait) == (
            v1.started,
            v1.finished,
            v1.service_time,
            v1.queue_wait,
        )
        # ...bit-identical results...
        for a, b in zip(v0.results, v1.results):
            assert a["elapsed"] == b["elapsed"]
            assert np.array_equal(a["C"], b["C"])
        # ...and a bit-identical tenant metrics registry.
        assert (
            clean.tenant_obs["victim"].snapshot()
            == noisy.tenant_obs["victim"].snapshot()
        )

    def test_faults_do_perturb_their_own_tenant(self):
        clean = self.run_pair(None)
        noisy = self.run_pair(noisy_plan())
        assert (
            noisy.record_of(1).service_time > clean.record_of(1).service_time
        )
        assert noisy.tenant_obs["chaotic"].value("faults.injected") > 0
        # Recovery still yields correct numerics under transients.
        for a, b in zip(clean.record_of(1).results, noisy.record_of(1).results):
            assert np.array_equal(a["C"], b["C"])

    def test_fault_scope_removed_at_teardown(self):
        res = self.run_pair(noisy_plan())
        assert all(dev.faults is None for dev in res.world.devices.values())
        assert res.world.fabric.faults is None


class TestFailureContainment:
    def crashing_build(self, req, nranks):
        if req.kind == "cannon":

            def crashing(ctx):
                ctx.diomp.barrier()
                if ctx.rank == 1:
                    raise RuntimeError("boom at rank 1")
                ctx.world.global_barrier.wait()  # must be killed

            return crashing, (), 1 << 20
        return build_job(req, nranks)

    def test_failed_job_is_contained(self, monkeypatch):
        import repro.cluster.service as service_mod

        monkeypatch.setattr(service_mod, "build_job", self.crashing_build)
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        jobs = [
            job(0, kind="cannon"),
            job(1, arrival=1e-4),
        ]
        res = ClusterService(w).run(jobs)
        failed = res.record_of(0)
        assert failed.outcome == "failed"
        assert "boom" in failed.error
        assert failed.results is None
        # The node came back and the next job ran to completion.
        assert res.record_of(1).outcome == "completed"

    def test_failed_job_leaks_are_metered(self, monkeypatch):
        import repro.cluster.service as service_mod

        monkeypatch.setattr(service_mod, "build_job", self.crashing_build)
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        res = ClusterService(w).run([job(0, kind="cannon", tenant="t")])
        assert res.world.obs.value("service.leaked_bytes", tenant="t") > 0


class TestTelemetry:
    def run_mixed(self):
        w = World(platform_a(), num_nodes=4, ranks_per_node=2)
        jobs = poisson_jobs(seed=21, count=12, rate=4000.0, execute=False)
        return ClusterService(w, ServiceConfig(queue_limit=8)).run(jobs)

    def test_per_tenant_registries_are_private(self):
        res = self.run_mixed()
        assert set(res.tenant_obs) == {"acme", "globex", "initech"}
        for obs in res.tenant_obs.values():
            counters = obs.snapshot()["counters"]
            # Subsystem metrics land in the tenant registry...
            assert any(name.startswith("conduit.") for name in counters)
            # ...never the service's own accounting.
            assert not any(name.startswith("service.") for name in counters)
        # And the world registry holds only the service's accounting.
        world_counters = res.world.obs.snapshot()["counters"]
        assert all(name.startswith("service.") for name in world_counters)

    def test_service_metrics_roll_up_by_tenant(self):
        res = self.run_mixed()
        jobs = res.tenant_rollups()["service.jobs"]
        # Groups are keyed by the residual (kind, outcome) labels with
        # cross-tenant stats; the grand total covers every record.
        assert all(g["ranks"] >= 1 for g in jobs["groups"])
        assert sum(g["sum"] for g in jobs["groups"]) == len(res.records)

    def test_queue_metrics_published(self):
        res = self.run_mixed()
        obs = res.world.obs
        assert obs.value("service.queue_depth") == 0
        assert obs.value("service.nodes_busy") == 0
        assert res.queue_wait_percentile(1.0) >= res.queue_wait_percentile(0.5)

    def test_record_lookup(self):
        res = self.run_mixed()
        assert res.record_of(0).job_id == 0
        with pytest.raises(KeyError):
            res.record_of(999)


class TestResultEdges:
    def test_percentile_validates_q(self):
        res = ClusterService(make_world()).run([job(0)])
        for bad_q in (-0.01, 1.5, 2.0):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                res.queue_wait_percentile(bad_q)

    def test_all_rejected_run_has_defined_edges(self):
        # Every job infeasible: no waits, no completions, zero elapsed.
        res = ClusterService(make_world()).run(
            [job(0, nodes=5), job(1, nodes=5)]
        )
        assert len(res.rejected) == 2
        assert res.queue_wait_percentile(0.99) == 0.0
        assert res.throughput == 0.0

    def test_empty_stream(self):
        res = ClusterService(make_world()).run([])
        assert res.records == []
        assert res.throughput == 0.0
        assert res.queue_wait_percentile(0.5) == 0.0


class TestChargeback:
    def test_zero_job_tenant_gets_explicit_zero_row(self):
        # A tenant whose only submission is shed still appears in the
        # chargeback with an all-zero usage row — billing shows the
        # tenant existed, not silence.
        res = ClusterService(make_world()).run(
            [job(0, tenant="busy"), job(1, tenant="idle", nodes=5)]
        )
        report = res.chargeback()
        idle = report.row_for("idle")
        assert idle is not None
        assert idle.jobs_rejected == 1 and idle.jobs_completed == 0
        assert idle.gpu_seconds == 0.0
        assert idle.network_bytes == 0.0
        assert idle.queue_wait_seconds == 0.0
        assert idle.cost(report.rates) == 0.0
        busy = report.row_for("busy")
        assert busy.jobs_completed == 1 and busy.gpu_seconds > 0.0

    def test_all_failed_tenant_attribution(self, monkeypatch):
        # A tenant whose every job crashes is still billed: the leaked
        # bytes and the GPU time burned before the crash land on *their*
        # row, and nothing bleeds onto other tenants.
        import repro.cluster.service as service_mod

        def crashing_build(req, nranks):
            def program(ctx):
                ctx.diomp.barrier()
                if ctx.rank == 1:
                    raise RuntimeError("boom at rank 1")
                ctx.world.global_barrier.wait()

            return program, (), 1 << 20

        monkeypatch.setattr(service_mod, "build_job", crashing_build)
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        jobs = [
            job(0, kind="cannon", tenant="chaotic"),
            job(1, kind="cannon", tenant="chaotic", arrival=1e-4),
        ]
        res = ClusterService(w).run(jobs)
        assert len(res.failed) == 2
        report = res.chargeback()
        row = report.row_for("chaotic")
        assert row.jobs_failed == 2 and row.jobs_completed == 0
        assert row.leaked_bytes > 0
        assert row.gpu_seconds > 0
        # Sole tenant: their row carries the whole-service totals.
        assert row.leaked_bytes == report.total.leaked_bytes
        assert row.cost(report.rates) == pytest.approx(
            report.total.cost(report.rates)
        )

    def test_rows_sum_to_totals(self):
        w = World(platform_a(), num_nodes=4, ranks_per_node=2)
        jobs = poisson_jobs(seed=21, count=12, rate=4000.0, execute=False)
        res = ClusterService(w, ServiceConfig(queue_limit=8)).run(jobs)
        report = res.chargeback()
        total = report.total
        for field in ("jobs_completed", "gpu_seconds", "queue_wait_seconds"):
            assert sum(getattr(r, field) for r in report.rows) == pytest.approx(
                getattr(total, field)
            )
        assert total.jobs_completed == len(res.completed)


class TestServiceSlo:
    def stream(self, rate=16000.0):
        return poisson_jobs(seed=7, count=16, rate=rate, execute=False)

    def test_slos_do_not_perturb_the_schedule(self):
        # Burn-rate evaluation is pure computation on the window ring:
        # disabling it must not move a single timestamp.
        on = ClusterService(
            make_world(4), ServiceConfig(queue_limit=8)
        ).run(self.stream())
        off = ClusterService(
            make_world(4), ServiceConfig(queue_limit=8, slos=())
        ).run(self.stream())

        def fp(res):
            return [
                (r.job_id, r.outcome, r.started, r.finished)
                for r in res.records
            ]

        assert fp(on) == fp(off)
        assert off.slos == () and off.alerts == []
        assert off.windows is None

    def test_default_slos_installed(self):
        res = ClusterService(make_world()).run([job(0)])
        assert {s.name for s in res.slos} == {"queue-wait-p90", "job-success"}
        assert res.windows is not None
        assert res.slo_report  # evaluated even on a tiny clean run

    def test_custom_slo_fires_and_reports(self):
        from repro.obs.slo import BurnRateRule, availability_slo

        # 100% success required with a hair-trigger rule: the rejected
        # jobs of a saturated run must page.
        strict = availability_slo(
            "all-or-nothing",
            "service.jobs",
            good={"outcome": "completed"},
            target=0.5,
            window=1e-3,
            rules=(
                BurnRateRule(
                    long_window=2e-3, short_window=2e-3, factor=0.1
                ),
            ),
            min_events=1,
        )
        w = World(platform_a(), num_nodes=1, ranks_per_node=2)
        res = ClusterService(
            w, ServiceConfig(queue_limit=1, slos=(strict,))
        ).run([job(i) for i in range(6)])
        assert len(res.rejected) == 5
        assert res.alerts and res.alerts[0].slo == "all-or-nothing"
        (status,) = res.slo_report
        assert status.bad_fraction > 0.5

    def test_alerts_are_sim_timestamped(self):
        res = ClusterService(
            make_world(4), ServiceConfig(queue_limit=8)
        ).run(self.stream())
        for alert in res.alerts:
            assert 0.0 <= alert.fired_at <= res.elapsed
            assert alert.resolved_at is not None  # finish() closed it
        times = [e["time"] for e in res.timeline]
        assert times == sorted(times)

    def test_incidents_merge_anomaly_findings(self):
        res = ClusterService(make_world()).run([job(0)])
        merged = res.incidents(findings=[])
        assert all(e["kind"] != "anomaly" for e in merged)

    def test_export_replay_roundtrip(self, tmp_path):
        from repro.obs.report import _timeline_key, replay_service_export

        res = ClusterService(
            make_world(4), ServiceConfig(queue_limit=8)
        ).run(self.stream())
        path = tmp_path / "run.json"
        doc = res.export(str(path))
        import json

        on_disk = json.loads(path.read_text())
        tracker = replay_service_export(on_disk)
        assert _timeline_key(tracker.timeline) == _timeline_key(doc["timeline"])

    def test_slo_cli_replay(self, tmp_path, capsys):
        from repro.obs.report import main as obs_main

        res = ClusterService(
            make_world(4), ServiceConfig(queue_limit=8)
        ).run(self.stream())
        path = tmp_path / "run.json"
        res.export(str(path))
        out_json = tmp_path / "timeline.json"
        code = obs_main(["slo", str(path), "--json", str(out_json)])
        assert code == 0
        assert "replay matches the recorded timeline" in capsys.readouterr().out
        import json

        replayed = json.loads(out_json.read_text())
        assert replayed["matches_export"] is True
        # strict mode: nonzero exit when the run paged.
        expected = 1 if res.alerts else 0
        assert obs_main(["slo", str(path), "--strict"]) == expected

    def test_slo_cli_rejects_sloless_export(self, tmp_path):
        from repro.obs.report import main as obs_main

        res = ClusterService(
            make_world(), ServiceConfig(slos=())
        ).run([job(0)])
        path = tmp_path / "bare.json"
        res.export(str(path))
        assert obs_main(["slo", str(path)]) == 2

    def test_dashboard_has_service_sections(self):
        res = ClusterService(
            make_world(4), ServiceConfig(queue_limit=8)
        ).run(self.stream())
        text = res.dashboard()
        assert "SLO error budgets" in text
        assert "Windowed time series" in text
        assert "chargeback" in text.lower()


class TestJobStream:
    def test_poisson_stream_is_seeded(self):
        a = poisson_jobs(seed=3, count=10, rate=100.0)
        b = poisson_jobs(seed=3, count=10, rate=100.0)
        assert a == b
        c = poisson_jobs(seed=4, count=10, rate=100.0)
        assert a != c

    def test_arrivals_monotone_and_tenants_rotate(self):
        jobs = poisson_jobs(seed=3, count=9, rate=100.0)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert {j.tenant for j in jobs} == {"acme", "globex", "initech"}

    def test_default_sizes_are_valid(self):
        for kind in ("cannon", "minimod", "allreduce"):
            for nranks in (2, 4, 8):
                req = JobRequest(
                    job_id=0,
                    tenant="t",
                    kind=kind,
                    size=default_size(kind, nranks),
                )
                program, args, seg = build_job(req, nranks)
                assert callable(program) and seg > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            build_job(job(0, kind="sorting"), 2)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            poisson_jobs(seed=1, count=1, rate=0.0)
