"""Tests for virtual-time coordination primitives."""

import pytest

from repro.sim import Barrier, Channel, Future, Lock, Semaphore, Simulator
from repro.util.errors import SimulationError


class TestFuture:
    def test_wait_then_fire(self):
        sim = Simulator()
        fut = Future(sim, description="f")
        got = []

        def waiter():
            got.append(fut.wait())

        def firer():
            sim.sleep(1.0)
            fut.fire("value")

        sim.spawn(waiter)
        sim.spawn(firer)
        sim.run()
        assert got == ["value"]
        assert sim.now == 1.0

    def test_fire_before_wait_returns_immediately(self):
        sim = Simulator()
        fut = Future(sim)
        got = []

        def prog():
            fut.fire(99)
            got.append(fut.wait())

        sim.spawn(prog)
        sim.run()
        assert got == [99]

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        fut = Future(sim)
        got = []

        def waiter(i):
            got.append((i, fut.wait()))

        for i in range(3):
            sim.spawn(waiter, i)
        sim.spawn(lambda: fut.fire("x"))
        sim.run()
        assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]

    def test_delayed_fire(self):
        sim = Simulator()
        fut = Future(sim)
        times = []

        def waiter():
            fut.wait()
            times.append(sim.now)

        sim.spawn(waiter)
        sim.spawn(lambda: fut.fire(delay=2.5))
        sim.run()
        assert times == [2.5]

    def test_double_fire_rejected(self):
        sim = Simulator()
        fut = Future(sim)

        def prog():
            fut.fire()
            fut.fire()

        sim.spawn(prog)
        with pytest.raises(SimulationError, match="twice"):
            sim.run()

    def test_poll(self):
        sim = Simulator()
        fut = Future(sim)
        observed = []

        def prog():
            observed.append(fut.poll())
            fut.fire()
            observed.append(fut.poll())

        sim.spawn(prog)
        sim.run()
        assert observed == [False, True]

    def test_fire_from_scheduler_callback(self):
        sim = Simulator()
        fut = Future(sim)
        times = []

        def waiter():
            fut.wait()
            times.append(sim.now)

        sim.spawn(waiter)
        sim.call_later(3.0, fut.fire)
        sim.run()
        assert times == [3.0]


class TestChannel:
    def test_fifo_order(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def producer():
            for i in range(5):
                ch.put(i)

        def consumer():
            for _ in range(5):
                got.append(ch.get())

        sim.spawn(producer)
        sim.spawn(consumer)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def consumer():
            got.append((ch.get(), sim.now))

        def producer():
            sim.sleep(2.0)
            ch.put("late")

        sim.spawn(consumer)
        sim.spawn(producer)
        sim.run()
        assert got == [("late", 2.0)]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)
        log = []

        def producer():
            ch.put(1)
            log.append(("put1", sim.now))
            ch.put(2)  # blocks until consumer takes item 1
            log.append(("put2", sim.now))

        def consumer():
            sim.sleep(5.0)
            log.append(("got", ch.get(), sim.now))
            log.append(("got", ch.get(), sim.now))

        sim.spawn(producer)
        sim.spawn(consumer)
        sim.run()
        assert ("put1", 0.0) in log
        assert ("put2", 5.0) in log

    def test_try_put_try_get(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)
        results = []

        def prog():
            results.append(ch.try_put("a"))
            results.append(ch.try_put("b"))  # full
            results.append(ch.try_get())
            results.append(ch.try_get())  # empty

        sim.spawn(prog)
        sim.run()
        assert results == [True, False, (True, "a"), (False, None)]

    def test_invalid_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Channel(sim, capacity=0)


class TestSemaphore:
    def test_acquire_release(self):
        sim = Simulator()
        sem = Semaphore(sim, 2)
        active = []
        peak = []

        def worker(i):
            sem.acquire()
            active.append(i)
            peak.append(len(active))
            sim.sleep(1.0)
            active.remove(i)
            sem.release()

        for i in range(5):
            sim.spawn(worker, i)
        sim.run()
        assert max(peak) <= 2

    def test_try_acquire(self):
        sim = Simulator()
        sem = Semaphore(sim, 1)
        results = []

        def prog():
            results.append(sem.try_acquire())
            results.append(sem.try_acquire())
            sem.release()
            results.append(sem.try_acquire())

        sim.spawn(prog)
        sim.run()
        assert results == [True, False, True]

    def test_negative_value_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Semaphore(sim, -1)


class TestLock:
    def test_mutual_exclusion(self):
        sim = Simulator()
        lock = Lock(sim)
        log = []

        def worker(i):
            with lock:
                log.append(("enter", i, sim.now))
                sim.sleep(1.0)
                log.append(("exit", i, sim.now))

        sim.spawn(worker, 0)
        sim.spawn(worker, 1)
        sim.run()
        # Sections must not overlap: exit of 0 precedes enter of 1.
        assert log == [
            ("enter", 0, 0.0),
            ("exit", 0, 1.0),
            ("enter", 1, 1.0),
            ("exit", 1, 2.0),
        ]

    def test_release_by_non_owner_rejected(self):
        sim = Simulator()
        lock = Lock(sim)

        def owner():
            lock.acquire()
            sim.sleep(10.0)

        def thief():
            sim.sleep(1.0)
            lock.release()

        sim.spawn(owner)
        sim.spawn(thief)
        with pytest.raises(SimulationError, match="non-owner"):
            sim.run()

    def test_reacquire_rejected(self):
        sim = Simulator()
        lock = Lock(sim)

        def prog():
            lock.acquire()
            lock.acquire()

        sim.spawn(prog)
        with pytest.raises(SimulationError, match="re-acquired"):
            sim.run()


class TestBarrier:
    def test_all_parties_released_together(self):
        sim = Simulator()
        bar = Barrier(sim, 3)
        release_times = []

        def worker(i):
            sim.sleep(float(i))
            bar.wait()
            release_times.append(sim.now)

        for i in range(3):
            sim.spawn(worker, i)
        sim.run()
        assert release_times == [2.0, 2.0, 2.0]

    def test_reusable_generations(self):
        sim = Simulator()
        bar = Barrier(sim, 2)
        log = []

        def worker(i):
            for phase in range(3):
                sim.sleep(0.1 * (i + 1))
                bar.wait()
                log.append((phase, i, sim.now))

        sim.spawn(worker, 0)
        sim.spawn(worker, 1)
        sim.run()
        phases = [p for p, _, _ in log]
        assert phases == sorted(phases)  # no phase mixing

    def test_arrival_indices_unique(self):
        sim = Simulator()
        bar = Barrier(sim, 4)
        indices = []

        def worker(i):
            sim.sleep(float(i))
            indices.append(bar.wait())

        for i in range(4):
            sim.spawn(worker, i)
        sim.run()
        assert sorted(indices) == [0, 1, 2, 3]

    def test_invalid_parties(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Barrier(sim, 0)


class TestDeferredCompletion:
    def test_delayed_fire_suppressed_after_fail(self):
        # Regression: a delayed fire landing on an already-failed
        # future used to raise "fired twice" inside the scheduler.
        sim = Simulator()
        fut = Future(sim, description="rendezvous")
        caught = []

        def proposer():
            fut.fire("late", delay=2.0)

        def canceller():
            sim.sleep(1.0)
            fut.fail(RuntimeError("timeout"))

        def waiter():
            try:
                fut.wait()
            except RuntimeError as exc:
                caught.append((sim.now, str(exc)))

        sim.spawn(proposer)
        sim.spawn(canceller)
        sim.spawn(waiter)
        sim.run()  # reaches t=2.0 without the double-completion error
        assert caught == [(1.0, "timeout")]
        assert sim.suppressed_completions == 1

    def test_delayed_fail_suppressed_after_fire(self):
        sim = Simulator()
        fut = Future(sim)
        seen = []

        def watchdog():
            fut.fail(RuntimeError("timeout"), delay=2.0)

        def producer():
            sim.sleep(1.0)
            fut.fire("fast")

        sim.spawn(watchdog)
        sim.spawn(producer)
        sim.spawn(lambda: seen.append(fut.wait()))
        sim.run()
        assert seen == ["fast"]
        assert sim.suppressed_completions == 1

    def test_slower_delayed_completion_suppressed(self):
        sim = Simulator()
        fut = Future(sim)
        seen = []
        fut.fire("first", delay=1.0)
        fut.fail(RuntimeError("second"), delay=2.0)
        sim.spawn(lambda: seen.append(fut.wait()))
        sim.run()
        assert seen == ["first"]
        assert sim.suppressed_completions == 1

    def test_immediate_double_completion_still_rejected(self):
        sim = Simulator()
        fut = Future(sim)
        fut.fire(1)
        with pytest.raises(SimulationError):
            fut.fail(RuntimeError("late"))
        assert sim.suppressed_completions == 0
