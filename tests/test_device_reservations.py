"""Tests for address-range reservations and fixed placements —
the mechanism under the once-registered DiOMP global segment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.device import DeviceMemorySpace
from repro.util.errors import AllocationError
from repro.util.units import KiB, MiB


class TestReserve:
    def test_reserve_charges_capacity(self):
        space = DeviceMemorySpace(1 * MiB)
        space.reserve(512 * KiB)
        assert space.live_bytes == 512 * KiB
        with pytest.raises(AllocationError):
            space.reserve(600 * KiB)

    def test_reserve_returns_disjoint_ranges(self):
        space = DeviceMemorySpace(1 * MiB)
        a = space.reserve(100 * KiB)
        b = space.reserve(100 * KiB)
        assert b >= a + 100 * KiB

    def test_invalid_reserve(self):
        space = DeviceMemorySpace(1 * MiB)
        with pytest.raises(AllocationError):
            space.reserve(0)


class TestAllocateAt:
    def test_placement_inside_reservation(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        buf = space.allocate_at(base + 1024, 4096)
        assert buf.address == base + 1024
        assert space.resolve(base + 2048) == (buf, 1024)

    def test_placement_outside_reservation_rejected(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        with pytest.raises(AllocationError, match="reserved"):
            space.allocate_at(base + 63 * KiB, 4096)  # spans past the end

    def test_placement_no_extra_capacity_charge(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(512 * KiB)
        before = space.live_bytes
        space.allocate_at(base, 256 * KiB)
        assert space.live_bytes == before

    def test_overlapping_placements_rejected(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        space.allocate_at(base, 4096)
        with pytest.raises(AllocationError, match="overlaps"):
            space.allocate_at(base + 2048, 4096)
        with pytest.raises(AllocationError, match="overlaps"):
            space.allocate_at(base, 1024)

    def test_adjacent_placements_allowed(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        a = space.allocate_at(base, 4096)
        b = space.allocate_at(base + 4096, 4096)
        assert a.end == b.address

    def test_free_placed_keeps_reservation_capacity(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        buf = space.allocate_at(base, 4096)
        live = space.live_bytes
        space.free(buf)
        assert space.live_bytes == live  # reservation still holds it
        # The address range is reusable for a new placement.
        space.allocate_at(base, 4096)

    def test_placed_buffer_real_data(self):
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        buf = space.allocate_at(base, 64)
        buf.as_array(np.float64)[:] = 7.0
        got, off = space.resolve(base + 8)
        assert got is buf and off == 8

    @given(
        placements=st.lists(
            st.tuples(st.integers(0, 60), st.integers(1, 4)), min_size=1, max_size=12
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_placement_resolution(self, placements):
        """Arbitrary non-overlapping placements resolve correctly."""
        space = DeviceMemorySpace(1 * MiB)
        base = space.reserve(64 * KiB)
        taken = []
        for slot, pages in placements:
            start = base + slot * KiB
            size = pages * KiB
            overlap = any(
                start < t_end and t_start < start + size for t_start, t_end in taken
            )
            if start + size > base + 64 * KiB:
                continue
            if overlap:
                with pytest.raises(AllocationError):
                    space.allocate_at(start, size)
            else:
                buf = space.allocate_at(start, size, virtual=True)
                taken.append((start, start + size))
                got, off = space.resolve(start + size - 1)
                assert got is buf and off == size - 1
