"""Bounded-memory span collection: budgets, sampling, spill."""

import json

import pytest

from repro.obs.sampling import (
    SPAN_COST_BYTES,
    SpanBudget,
    SpanStore,
    read_spill,
)
from repro.obs.spans import SpanProfiler, SpanRecord
from repro.util.errors import ConfigurationError


def span(i, track="rank0", name="op"):
    return SpanRecord(
        name=name,
        track=track,
        start=i * 1e-6,
        end=i * 1e-6 + 5e-7,
        depth=0,
        args={"i": i},
        span_id=i + 1,
    )


def budget(max_spans, **kw):
    return SpanBudget(max_bytes=max_spans * SPAN_COST_BYTES, **kw)


class TestBudgetValidation:
    def test_too_small_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="span budget"):
            SpanBudget(max_bytes=SPAN_COST_BYTES - 1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError, match="per_track"):
            SpanBudget(per_track_reservoir=0)
        with pytest.raises(ConfigurationError, match="per_track"):
            SpanBudget(per_track_head=-1)

    def test_max_spans_from_bytes(self):
        assert budget(10).max_spans == 10
        assert SpanBudget().max_spans == 64 * 1024 * 1024 // SPAN_COST_BYTES


class TestLosslessMode:
    def test_under_budget_keeps_everything_in_order(self):
        store = SpanStore(budget(100))
        recs = [span(i, track=f"rank{i % 4}") for i in range(50)]
        for r in recs:
            store.append(r)
        assert not store.sampling
        assert list(store) == recs  # exact append order, nothing lost
        assert len(store) == 50
        assert store.dropped == 0
        assert store.memory_bytes == 50 * SPAN_COST_BYTES

    def test_truthiness_and_clear(self):
        store = SpanStore(budget(10))
        assert not store
        store.append(span(0))
        assert store
        store.clear()
        assert not store and store.recorded == 0


class TestSamplingMode:
    def test_budget_is_a_hard_cap(self):
        store = SpanStore(budget(64, per_track_head=4, per_track_reservoir=8))
        for i in range(1000):
            store.append(span(i, track=f"rank{i % 8}"))
        assert store.sampling
        assert len(store) <= 64
        assert store.memory_bytes <= 64 * SPAN_COST_BYTES
        assert store.recorded == 1000
        assert store.dropped == 1000 - len(store)

    def test_heads_are_pinned(self):
        store = SpanStore(budget(64, per_track_head=4, per_track_reservoir=8))
        for i in range(1000):
            store.append(span(i, track=f"rank{i % 8}"))
        kept = list(store)
        # The first 4 spans of every track survive sampling.
        for rank in range(8):
            track_kept = [r for r in kept if r.track == f"rank{rank}"]
            firsts = [r for r in track_kept if r.args["i"] < 4 * 8]
            assert len(firsts) == 4

    def test_iteration_sorted_by_start(self):
        store = SpanStore(budget(32, per_track_head=2, per_track_reservoir=4))
        for i in range(500):
            store.append(span(i, track=f"rank{i % 8}"))
        starts = [r.start for r in store]
        assert starts == sorted(starts)

    def test_deterministic_given_seed(self):
        def fill(seed):
            store = SpanStore(budget(32, per_track_head=2, per_track_reservoir=4, seed=seed))
            for i in range(500):
                store.append(span(i, track=f"rank{i % 4}"))
            return [(r.track, r.args["i"]) for r in store]

        assert fill(7) == fill(7)
        assert fill(7) != fill(8)

    def test_many_tracks_tiny_budget_holds_cap(self):
        # More tracks x head than the cap: the head-trim fallback must
        # still enforce the hard budget.
        store = SpanStore(budget(10, per_track_head=4, per_track_reservoir=4))
        for i in range(400):
            store.append(span(i, track=f"rank{i % 40}"))
        assert len(store) <= 10

    def test_stats_consistency(self):
        store = SpanStore(budget(16, per_track_head=2, per_track_reservoir=4))
        for i in range(200):
            store.append(span(i, track=f"rank{i % 4}"))
        s = store.stats()
        assert s.recorded == 200
        assert s.recorded == s.kept + s.dropped
        assert s.kept == len(store)
        assert s.memory_bytes == s.kept * SPAN_COST_BYTES
        assert s.sampling
        assert s.to_dict()["kept"] == s.kept


class TestSetBudget:
    def test_shrinking_budget_readmits(self):
        store = SpanStore(budget(100))
        for i in range(80):
            store.append(span(i, track=f"rank{i % 4}"))
        store.set_budget(budget(20, per_track_head=2, per_track_reservoir=3))
        assert len(store) <= 20
        assert store.recorded == 80  # counters describe the whole run


class TestSpill:
    def test_every_span_spilled_and_readable(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        store = SpanStore(budget(8, per_track_head=1, per_track_reservoir=2, spill_path=path))
        recs = [span(i, track=f"rank{i % 4}") for i in range(50)]
        for r in recs:
            store.append(r)
        store.close()
        assert len(store) <= 8  # RAM bounded...
        assert store.spilled == 50
        back = read_spill(path)  # ...full fidelity on disk
        assert len(back) == 50
        assert back[7].name == recs[7].name
        assert back[7].start == recs[7].start
        assert back[7].track == recs[7].track

    def test_spill_lines_are_json(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        store = SpanStore(budget(8, spill_path=path))
        store.append(span(0))
        store.flush()
        doc = json.loads(open(path).read().strip())
        assert doc["name"] == "op" and doc["span_id"] == 1


class TestProfilerIntegration:
    def test_profiler_uses_budgeted_store(self):
        prof = SpanProfiler(clock=lambda: 0.0)
        assert isinstance(prof.records, SpanStore)
        with prof.span("x", rank=0):
            pass
        assert prof.count("x") == 1

    def test_set_budget_via_profiler(self):
        prof = SpanProfiler(clock=lambda: 0.0)
        for i in range(100):
            with prof.span("x", rank=i % 4):
                pass
        prof.set_budget(budget(16, per_track_head=2, per_track_reservoir=2))
        assert len(prof.records) <= 16

    def test_record_roundtrip_dict(self):
        rec = span(3)
        back = SpanRecord.from_dict(rec.to_dict())
        assert back.name == rec.name
        assert back.start == rec.start
        assert back.span_id == rec.span_id
        assert back.links == rec.links
