"""SLOs, error budgets, burn-rate alerts, and the incident timeline."""

import pytest

from repro.obs.anomaly import Finding
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLO,
    BurnRateRule,
    SloTracker,
    alert_from_dict,
    availability_slo,
    incident_timeline,
    latency_slo,
    render_slo,
    slo_from_dict,
)
from repro.obs.timeseries import TimeSeries, WindowSpec
from repro.util.errors import ConfigurationError


def make_stack(slos, width=100e-6, history=64):
    now = [0.0]
    reg = MetricsRegistry()
    ts = TimeSeries(
        clock=lambda: now[0],
        spec=WindowSpec(width=width, history=history),
        group_by=("tenant", "outcome"),
        metrics=("service.",),
    ).attach(reg)
    return now, reg, ts, SloTracker(slos, ts)


LAT_RULE = BurnRateRule(long_window=2e-3, short_window=5e-4, factor=2.0)


def lat_slo(**kw):
    defaults = dict(
        threshold=250e-6, target=0.90, window=1e-3, rules=(LAT_RULE,), min_events=4
    )
    defaults.update(kw)
    return latency_slo("queue-wait", "service.queue_wait_seconds", **defaults)


class TestDeclarations:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lat_slo(target=1.0)  # target must be < 1
        with pytest.raises(ConfigurationError):
            lat_slo(window=0.0)
        with pytest.raises(ConfigurationError):
            SLO(name="x", metric="m", target=0.9, window=1.0)  # neither kind
        with pytest.raises(ConfigurationError):
            BurnRateRule(long_window=1e-3, short_window=2e-3, factor=1.0)
        with pytest.raises(ConfigurationError):
            BurnRateRule(long_window=1e-3, short_window=1e-4, factor=1.0, severity="sms")

    def test_budget_and_kind(self):
        slo = lat_slo(target=0.99)
        assert slo.kind == "latency"
        assert slo.budget == pytest.approx(0.01)
        avail = availability_slo(
            "ok", "service.jobs", good={"outcome": "completed"}, target=0.999
        )
        assert avail.kind == "availability"
        assert avail.required_labels() == ("outcome",)

    def test_roundtrip_through_dict(self):
        for slo in (
            lat_slo(),
            availability_slo(
                "ok",
                "service.jobs",
                good={"outcome": "completed"},
                target=0.999,
                rules=(LAT_RULE,),
            ),
        ):
            assert slo_from_dict(slo.to_dict()) == slo

    def test_duplicate_names_rejected(self):
        _, _, ts, _ = make_stack([lat_slo()])
        with pytest.raises(ConfigurationError):
            SloTracker([lat_slo(), lat_slo()], ts)


class TestBurnRate:
    def test_no_data_is_not_all_good(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        slo = tracker.slos[0]
        # Nothing observed: abstain (None), never 0.0-bad.
        assert tracker.bad_fraction(slo, 0.0, 1e-3) is None
        assert tracker.burn_rate(slo, 0.0, 1e-3) is None
        # Below min_events: still abstaining.
        reg.histogram("service.queue_wait_seconds").observe(1.0, tenant="a")
        assert tracker.bad_fraction(slo, 0.0, 1e-3) is None

    def test_latency_bad_fraction(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        h = reg.histogram("service.queue_wait_seconds")
        for wait in (0.0, 0.0, 500e-6, 500e-6):
            h.observe(wait, tenant="a")
        slo = tracker.slos[0]
        assert tracker.bad_fraction(slo, 0.0, 1e-3) == pytest.approx(0.5)
        # budget = 0.10 -> burn 5x
        assert tracker.burn_rate(slo, 0.0, 1e-3) == pytest.approx(5.0)

    def test_availability_counts_by_label(self):
        avail = availability_slo(
            "ok",
            "service.jobs",
            good={"outcome": "completed"},
            target=0.9,
            rules=(),
            min_events=1,
        )
        now, reg, ts, tracker = make_stack([avail])
        jobs = reg.counter("service.jobs")
        for _ in range(3):
            jobs.inc(tenant="a", outcome="completed")
        jobs.inc(tenant="a", outcome="rejected")
        assert tracker.bad_fraction(avail, 0.0, 1e-3) == pytest.approx(0.25)


class TestAlertLifecycle:
    def test_fire_requires_both_windows(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        h = reg.histogram("service.queue_wait_seconds")
        # Old badness outside the short window must not page.
        for i in range(8):
            now[0] = i * 50e-6
            h.observe(1e-3, tenant="a")
        now[0] = 1.2e-3  # short window [0.7ms, 1.2ms) holds nothing
        assert tracker.evaluate(now[0]) == []

    def test_fire_resolve_and_finish(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        h = reg.histogram("service.queue_wait_seconds")
        for i in range(8):
            now[0] = i * 50e-6
            h.observe(1e-3, tenant="a")
            tracker.evaluate(now[0])
        assert len(tracker.alerts) == 1
        alert = tracker.alerts[0]
        assert alert.active and alert.severity == "page"
        assert alert.burn_long > 2.0 and alert.burn_short > 2.0
        # Good samples push the short window back under the factor.
        for i in range(8, 40):
            now[0] = i * 50e-6
            h.observe(0.0, tenant="a")
            tracker.evaluate(now[0])
        assert not alert.active
        assert alert.resolved_at is not None
        kinds = [e["kind"] for e in tracker.timeline]
        assert kinds == ["fire", "resolve"]
        # finish() with nothing active is a no-op.
        tracker.finish(now[0])
        assert len(tracker.timeline) == 2

    def test_finish_resolves_active_alerts(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        h = reg.histogram("service.queue_wait_seconds")
        for i in range(8):
            now[0] = i * 50e-6
            h.observe(1e-3, tenant="a")
            tracker.evaluate(now[0])
        (alert,) = tracker.alerts
        tracker.finish(2e-3)
        assert alert.resolved_at == 2e-3
        assert tracker.timeline[-1]["kind"] == "resolve"

    def test_alert_roundtrip(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        h = reg.histogram("service.queue_wait_seconds")
        for i in range(8):
            now[0] = i * 50e-6
            h.observe(1e-3, tenant="a")
            tracker.evaluate(now[0])
        (alert,) = tracker.alerts
        assert alert_from_dict(alert.to_dict()) == alert


class TestReporting:
    def test_status_and_render(self):
        now, reg, ts, tracker = make_stack([lat_slo()])
        h = reg.histogram("service.queue_wait_seconds")
        for wait in (0.0, 0.0, 0.0, 500e-6):
            h.observe(wait, tenant="a")
        (status,) = tracker.report(1e-4)
        assert status.events == 4
        assert status.bad_fraction == pytest.approx(0.25)
        assert status.budget_consumed == pytest.approx(2.5)
        assert status.met is False
        text = render_slo(tracker.report(1e-4), tracker.timeline)
        assert "queue-wait" in text and "2.50x" in text

    def test_no_data_status(self):
        _, _, _, tracker = make_stack([lat_slo()])
        (status,) = tracker.report(1e-3)
        assert status.bad_fraction is None
        assert status.budget_consumed is None
        assert status.met is None
        assert "no data" in render_slo([status])


class TestIncidentTimeline:
    def test_merges_and_orders(self):
        alerts = [
            {"time": 2e-3, "kind": "resolve", "slo": "a", "message": "ok"},
            {"time": 1e-3, "kind": "fire", "slo": "a", "message": "bad"},
        ]
        findings = [
            Finding(
                rule="barrier_skew",
                severity="warning",
                subject="rank3",
                message="rank3 late",
                value=3.5,
                threshold=3.0,
            )
        ]
        merged = incident_timeline(alerts, findings, end=3e-3)
        assert [e["kind"] for e in merged] == ["fire", "resolve", "anomaly"]
        assert merged[-1]["time"] == 3e-3
        assert merged[-1]["slo"] == "barrier_skew"
