"""Property-based tests: RMA data movement vs a shadow memory model.

A random schedule of puts and gets (random source rank, target rank,
offsets, sizes) is executed round by round — each round is one batch
of operations issued by one initiator, separated by fence+barrier so
ordering is deterministic — and the distributed state is compared
against a plain-numpy shadow model applying the same schedule."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import MemRef, World, run_spmd
from repro.core import DiompParams, DiompRuntime
from repro.hardware import platform_a

BUF = 256  # bytes per rank


@st.composite
def schedules(draw):
    """A list of rounds; each round: (initiator, [ops])."""
    n_rounds = draw(st.integers(1, 5))
    rounds = []
    for _ in range(n_rounds):
        initiator = draw(st.integers(0, 7))
        n_ops = draw(st.integers(1, 4))
        ops = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(["put", "get"]))
            peer = draw(st.integers(0, 7))
            size = draw(st.integers(1, 64))
            local_off = draw(st.integers(0, BUF - size))
            remote_off = draw(st.integers(0, BUF - size))
            ops.append((kind, peer, size, local_off, remote_off))
        rounds.append((initiator, ops))
    return rounds


def _shadow(schedule, nranks):
    """Apply the schedule to plain numpy arrays, in program order.

    Within one round all ops read the pre-round state of their remote
    *sources*?  No — ops within a round are issued sequentially by one
    initiator and complete by the fence; since only the initiator's
    local buffer and distinct remote buffers are touched, sequential
    application in issue order is the defined semantics.
    """
    mem = [np.zeros(BUF, dtype=np.uint8) for _ in range(nranks)]
    for r in range(nranks):
        mem[r][:] = np.arange(BUF, dtype=np.uint8) * (r + 1) % 251
    for initiator, ops in schedule:
        for kind, peer, size, local_off, remote_off in ops:
            if kind == "put":
                mem[peer][remote_off : remote_off + size] = mem[initiator][
                    local_off : local_off + size
                ]
            else:
                mem[initiator][local_off : local_off + size] = mem[peer][
                    remote_off : remote_off + size
                ]
    return mem


class TestRmaShadowModel:
    @given(schedule=schedules())
    @settings(max_examples=20, deadline=None)
    def test_schedule_matches_shadow(self, schedule):
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w, DiompParams())
        final = {}

        def prog(ctx):
            g = ctx.diomp.alloc(BUF)
            view = g.typed(np.uint8)
            view[:] = np.arange(BUF, dtype=np.uint8) * (ctx.rank + 1) % 251
            ctx.diomp.barrier()
            for initiator, ops in schedule:
                if ctx.rank == initiator:
                    for kind, peer, size, local_off, remote_off in ops:
                        if kind == "put":
                            ctx.diomp.put(
                                peer,
                                g,
                                g.memref(local_off, size),
                                target_offset=remote_off,
                            )
                            # Sequential semantics within a round: each
                            # op sees the previous op's effect.
                            ctx.diomp.fence()
                        else:
                            ctx.diomp.get(
                                peer,
                                g,
                                g.memref(local_off, size),
                                target_offset=remote_off,
                            )
                            ctx.diomp.fence()
                ctx.diomp.barrier()
            final[ctx.rank] = view.copy()

        run_spmd(w, prog)
        shadow = _shadow(schedule, w.nranks)
        for r in range(w.nranks):
            np.testing.assert_array_equal(final[r], shadow[r], err_msg=f"rank {r}")

    @given(
        offsets=st.lists(
            st.tuples(st.integers(0, BUF - 16), st.integers(1, 16)),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_scattered_puts_land_exactly(self, offsets):
        """Non-overlapping writes from many ranks must all land; bytes
        outside every written range must stay untouched."""
        w = World(platform_a(with_quirk=False), num_nodes=2)
        DiompRuntime(w)
        target_state = {}

        def prog(ctx):
            g = ctx.diomp.alloc(BUF)
            ctx.diomp.barrier()
            if ctx.rank == 0:
                for i, (off, size) in enumerate(offsets):
                    src = np.full(size, (i + 1) % 250 + 1, dtype=np.uint8)
                    ctx.diomp.put(3, g, MemRef.host(ctx.node, src), target_offset=off)
                    ctx.diomp.fence()
            ctx.diomp.barrier()
            if ctx.rank == 3:
                target_state["buf"] = g.typed(np.uint8).copy()

        run_spmd(w, prog)
        shadow = np.zeros(BUF, dtype=np.uint8)
        for i, (off, size) in enumerate(offsets):
            shadow[off : off + size] = (i + 1) % 250 + 1
        np.testing.assert_array_equal(target_state["buf"], shadow)


class TestDeterminism:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_identical_runs_identical_clocks(self, seed):
        """The same program yields bit-identical virtual end times."""

        def run_once():
            w = World(platform_a(with_quirk=False), num_nodes=2)
            DiompRuntime(w)
            rng = np.random.default_rng(seed)
            plan = [
                (int(rng.integers(0, 8)), int(rng.integers(1, 2048)))
                for _ in range(6)
            ]

            def prog(ctx):
                g = ctx.diomp.alloc(2048, virtual=True)
                ctx.diomp.barrier()
                for peer, size in plan:
                    if ctx.rank == 0 and peer != 0:
                        ctx.diomp.put(peer, g, g.memref(0, size))
                ctx.diomp.fence()
                ctx.diomp.barrier()
                return ctx.sim.now

            return tuple(run_spmd(w, prog).results)

        assert run_once() == run_once()
